"""XPath 1.0 abstract syntax tree with direct evaluation.

Every node implements ``evaluate(context) -> value`` using the value model
in :mod:`repro.xpath.datamodel`.  The XQuery package builds on these classes
(path expressions inside FLWOR bodies are exactly these nodes), so they are
written to tolerate general item sequences where that costs nothing.

Every node also implements ``to_text()`` producing parseable XPath syntax;
the XQuery serializer relies on it when rendering generated queries (the
paper's Table 8 style output).
"""

from __future__ import annotations

import math

from repro.errors import XPathEvaluationError
from repro.xmlmodel.nodes import Node, NodeKind
from repro.xpath.axes import AXES, REVERSE_AXES
from repro.xpath.datamodel import (
    sort_document_order,
    to_boolean,
    to_node_set,
    to_number,
    to_string,
    number_to_string,
)


class Expr:
    """Base class for all expression nodes."""

    def evaluate(self, context):
        raise NotImplementedError

    def to_text(self):
        raise NotImplementedError

    def child_exprs(self):
        """Direct sub-expressions, for generic analysis passes."""
        return ()

    def iter_tree(self):
        """This node and all sub-expressions, pre-order."""
        yield self
        for child in self.child_exprs():
            for node in child.iter_tree():
                yield node

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.to_text())


class Literal(Expr):
    """A string literal."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, context):
        return self.value

    def to_text(self):
        if '"' not in self.value:
            return '"%s"' % self.value
        return "'%s'" % self.value


class NumberLiteral(Expr):
    """A numeric literal (always a float, per XPath 1.0)."""

    def __init__(self, value):
        self.value = float(value)

    def evaluate(self, context):
        return self.value

    def to_text(self):
        return number_to_string(self.value)


class VariableRef(Expr):
    """A ``$name`` reference."""

    def __init__(self, name):
        self.name = name

    def evaluate(self, context):
        return context.lookup_variable(self.name)

    def to_text(self):
        return "$%s" % self.name


class ContextItem(Expr):
    """The ``.`` expression."""

    def evaluate(self, context):
        if context.node is None:
            raise XPathEvaluationError("no context item")
        return [context.node] if isinstance(context.node, Node) else context.node

    def to_text(self):
        return "."


def is_context_item(expr):
    """True for ``.`` in either representation: the :class:`ContextItem`
    node (emitted by generators) or the parsed ``self::node()`` step."""
    if isinstance(expr, ContextItem):
        return True
    return (
        isinstance(expr, PathExpr)
        and not expr.absolute
        and expr.start is None
        and len(expr.steps) == 1
        and expr.steps[0].axis == "self"
        and isinstance(expr.steps[0].test, KindTest)
        and expr.steps[0].test.kind is None
        and not expr.steps[0].predicates
    )


class FunctionCall(Expr):
    """A call into the function library (core + host registered)."""

    def __init__(self, name, args):
        self.name = name
        self.args = args

    def child_exprs(self):
        return tuple(self.args)

    def evaluate(self, context):
        entry = context.functions.get(self.name)
        if entry is None:
            from repro.xpath.functions import CORE_FUNCTIONS

            entry = CORE_FUNCTIONS.get(self.name)
        if entry is None:
            raise XPathEvaluationError("unknown function %s()" % self.name)
        min_args, max_args, impl = entry
        count = len(self.args)
        if count < min_args or (max_args is not None and count > max_args):
            raise XPathEvaluationError(
                "%s() expects %s argument(s), got %d"
                % (self.name, _arity_text(min_args, max_args), count)
            )
        values = [arg.evaluate(context) for arg in self.args]
        return impl(context, *values)

    def to_text(self):
        return "%s(%s)" % (self.name, ", ".join(a.to_text() for a in self.args))


def _arity_text(min_args, max_args):
    if max_args is None:
        return "%d+" % min_args
    if min_args == max_args:
        return str(min_args)
    return "%d..%d" % (min_args, max_args)


class UnaryMinus(Expr):
    def __init__(self, operand):
        self.operand = operand

    def child_exprs(self):
        return (self.operand,)

    def evaluate(self, context):
        return -to_number(self.operand.evaluate(context))

    def to_text(self):
        return "-%s" % self.operand.to_text()


class BinaryOp(Expr):
    """Binary operators: or, and, comparisons, arithmetic."""

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def child_exprs(self):
        return (self.left, self.right)

    def evaluate(self, context):
        op = self.op
        if op == "or":
            return to_boolean(self.left.evaluate(context)) or to_boolean(
                self.right.evaluate(context)
            )
        if op == "and":
            return to_boolean(self.left.evaluate(context)) and to_boolean(
                self.right.evaluate(context)
            )
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return compare_values(op, left, right)
        left_num = to_number(left)
        right_num = to_number(right)
        if op == "+":
            return left_num + right_num
        if op == "-":
            return left_num - right_num
        if op == "*":
            return left_num * right_num
        if op == "div":
            return _divide(left_num, right_num)
        if op == "mod":
            if right_num == 0 or right_num != right_num:
                return float("nan")
            return math.fmod(left_num, right_num)
        raise XPathEvaluationError("unknown operator %r" % op)

    def to_text(self):
        return "%s %s %s" % (
            _maybe_paren(self.left, self.op),
            self.op,
            _maybe_paren(self.right, self.op),
        )


_PRECEDENCE = {
    "or": 1, "and": 2,
    "=": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "div": 6, "mod": 6,
}


def _maybe_paren(expr, parent_op):
    text = expr.to_text()
    if isinstance(expr, BinaryOp) and _PRECEDENCE.get(expr.op, 9) < _PRECEDENCE.get(
        parent_op, 0
    ):
        return "(%s)" % text
    return text


def _divide(left, right):
    if right == 0:
        if left != left or left == 0:
            return float("nan")
        return math.inf if left > 0 else -math.inf
    return left / right


def compare_values(op, left, right):
    """XPath 1.0 comparison semantics, including node-set existentials."""
    left_is_set = isinstance(left, list) or isinstance(left, Node)
    right_is_set = isinstance(right, list) or isinstance(right, Node)
    if left_is_set:
        left = to_node_set(left, "comparison operand")
    if right_is_set:
        right = to_node_set(right, "comparison operand")

    if left_is_set and right_is_set:
        if op in ("=", "!="):
            left_strings = set(node.string_value() for node in left)
            for node in right:
                value = node.string_value()
                if op == "=" and value in left_strings:
                    return True
                if op == "!=" and any(value != other for other in left_strings):
                    return True
            return False
        for left_node in left:
            for right_node in right:
                if _numeric_compare(
                    op,
                    to_number(left_node.string_value()),
                    to_number(right_node.string_value()),
                ):
                    return True
        return False

    if left_is_set or right_is_set:
        nodes, atom, flipped = (
            (left, right, False) if left_is_set else (right, left, True)
        )
        if isinstance(atom, bool):
            # node-set vs boolean compares boolean(node-set), not per node.
            set_value = to_boolean(nodes)
            left_v, right_v = (set_value, atom) if not flipped else (atom, set_value)
            return _atom_compare(op, left_v, right_v)
        for node in nodes:
            if _atom_node_compare(op, node, atom, flipped):
                return True
        return False

    return _atom_compare(op, left, right)


def _atom_node_compare(op, node, atom, flipped):
    if isinstance(atom, (int, float)):
        node_value = to_number(node.string_value())
        left, right = (node_value, float(atom)) if not flipped else (
            float(atom),
            node_value,
        )
        return _numeric_compare(op, left, right)
    # string comparison for = / !=, numeric for relational
    if op in ("=", "!="):
        value = node.string_value()
        result = value == atom
        return result if op == "=" else not result
    node_value = to_number(node.string_value())
    atom_value = to_number(atom)
    left, right = (node_value, atom_value) if not flipped else (
        atom_value,
        node_value,
    )
    return _numeric_compare(op, left, right)


def _atom_compare(op, left, right):
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    return _numeric_compare(op, to_number(left), to_number(right))


def _numeric_compare(op, left, right):
    if left != left or right != right:
        return False  # NaN compares false
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    raise XPathEvaluationError("unknown comparison %r" % op)


class UnionExpr(Expr):
    """``a | b``: node-set union in document order."""

    def __init__(self, parts):
        self.parts = parts

    def child_exprs(self):
        return tuple(self.parts)

    def evaluate(self, context):
        nodes = []
        for part in self.parts:
            nodes.extend(to_node_set(part.evaluate(context), "union operand"))
        return sort_document_order(nodes)

    def to_text(self):
        return " | ".join(part.to_text() for part in self.parts)


class NameTest:
    """Element/attribute name test: ``name``, ``prefix:name``, ``prefix:*``
    or ``*``."""

    __slots__ = ("prefix", "local")

    def __init__(self, prefix, local):
        self.prefix = prefix
        self.local = local

    def matches(self, node, principal_kind, context):
        if node.kind != principal_kind:
            return False
        name = node.name
        if name is None:
            return False
        if self.prefix is None:
            uri = None
        else:
            uri = context.resolve_prefix(self.prefix)
        if self.local == "*":
            if self.prefix is None:
                return True
            return name.uri == uri
        return name.local == self.local and name.uri == uri

    def to_text(self):
        if self.prefix:
            return "%s:%s" % (self.prefix, self.local)
        return self.local


class KindTest:
    """Node kind test: node(), text(), comment(), processing-instruction()."""

    __slots__ = ("kind", "target")

    def __init__(self, kind, target=None):
        self.kind = kind  # None means node()
        self.target = target

    def matches(self, node, principal_kind, context):
        if self.kind is None:
            return True
        if node.kind != self.kind:
            return False
        if self.kind == NodeKind.PI and self.target is not None:
            return node.target == self.target
        return True

    def to_text(self):
        if self.kind is None:
            return "node()"
        if self.kind == NodeKind.PI and self.target is not None:
            return 'processing-instruction("%s")' % self.target
        return "%s()" % self.kind


class Step:
    """A single location step: axis, node test, predicates."""

    __slots__ = ("axis", "test", "predicates")

    def __init__(self, axis, test, predicates=None):
        self.axis = axis
        self.test = test
        self.predicates = predicates or []

    def select(self, node, context):
        """Nodes selected by this step from one context node, in axis order
        with predicates applied."""
        axis_fn = AXES[self.axis]
        principal = (
            NodeKind.ATTRIBUTE if self.axis == "attribute" else NodeKind.ELEMENT
        )
        selected = [
            candidate
            for candidate in axis_fn(node)
            if self.test.matches(candidate, principal, context)
        ]
        for predicate in self.predicates:
            selected = _filter_by_predicate(selected, predicate, context)
        return selected

    def to_text(self):
        prefix = ""
        if self.axis == "attribute":
            prefix = "@"
        elif self.axis == "self" and isinstance(self.test, KindTest) and self.test.kind is None and not self.predicates:
            return "."
        elif self.axis == "parent" and isinstance(self.test, KindTest) and self.test.kind is None and not self.predicates:
            return ".."
        elif self.axis != "child":
            prefix = "%s::" % self.axis
        text = prefix + self.test.to_text()
        for predicate in self.predicates:
            text += "[%s]" % predicate.to_text()
        return text


def _filter_by_predicate(nodes, predicate, context):
    """Apply one predicate to a node list (already in axis order)."""
    size = len(nodes)
    survivors = []
    for index, node in enumerate(nodes, start=1):
        sub = context.with_node(node, position=index, size=size)
        value = predicate.evaluate(sub)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            keep = float(value) == float(index)
        else:
            keep = to_boolean(value)
        if keep:
            survivors.append(node)
    return survivors


class PathExpr(Expr):
    """A location path, optionally rooted at a primary expression.

    ``absolute`` paths start at the document root; otherwise at the context
    node (or at ``start``'s value when present).
    """

    def __init__(self, steps, start=None, absolute=False):
        self.steps = steps
        self.start = start
        self.absolute = absolute

    def child_exprs(self):
        base = (self.start,) if self.start is not None else ()
        predicates = tuple(
            predicate for step in self.steps for predicate in step.predicates
        )
        return base + predicates

    def evaluate(self, context):
        if self.start is not None:
            value = self.start.evaluate(context)
            nodes = to_node_set(value, "path start")
        elif self.absolute:
            if context.node is None:
                raise XPathEvaluationError("absolute path with no context node")
            nodes = [context.node.root()]
        else:
            if context.node is None:
                raise XPathEvaluationError("relative path with no context node")
            nodes = [context.node]

        for step in self.steps:
            reverse = step.axis in REVERSE_AXES
            gathered = []
            for node in nodes:
                selected = step.select(node, context)
                gathered.extend(selected)
            nodes = sort_document_order(gathered)
            del reverse  # axis-order handled inside select()
        return nodes

    def to_text(self):
        parts = []
        if self.start is not None:
            parts.append(self.start.to_text())
        elif self.absolute and not self.steps:
            return "/"
        step_text = "/".join(step.to_text() for step in self.steps)
        if self.absolute:
            return "/" + step_text
        if parts:
            return parts[0] + ("/" + step_text if step_text else "")
        return step_text


class FilterExpr(Expr):
    """A primary expression with predicates: ``$x[1]``, ``(a|b)[last()]``."""

    def __init__(self, primary, predicates):
        self.primary = primary
        self.predicates = predicates

    def child_exprs(self):
        return (self.primary,) + tuple(self.predicates)

    def evaluate(self, context):
        value = self.primary.evaluate(context)
        nodes = to_node_set(value, "filter expression")
        nodes = sort_document_order(nodes)
        for predicate in self.predicates:
            nodes = _filter_by_predicate(nodes, predicate, context)
        return nodes

    def to_text(self):
        text = self.primary.to_text()
        if not isinstance(self.primary, (VariableRef, FunctionCall, ContextItem)):
            text = "(%s)" % text
        for predicate in self.predicates:
            text += "[%s]" % predicate.to_text()
        return text
