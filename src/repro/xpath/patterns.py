"""XSLT 1.0 match patterns.

A pattern is a union of *location path patterns*; a node matches if it
matches any alternative.  Matching is implemented by the reverse-step walk
the paper attributes to [6] (Moerkotte) and [9]: the node must match the
last step, its parent chain must satisfy the remaining steps, and a leading
``/`` anchors the chain at the document root.

Each alternative carries the XSLT 1.0 *default priority* (§5.5), used for
template conflict resolution:

* QName or ``processing-instruction('name')`` test → 0
* ``prefix:*`` → −0.25
* bare kind test (``*``, ``node()``, ``text()``, ...) → −0.5
* anything else (multiple steps or predicates) → +0.5
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xmlmodel.nodes import NodeKind
from repro.xpath import lexer as lex
from repro.xpath.ast import KindTest, NameTest, _filter_by_predicate
from repro.xpath.lexer import Lexer
from repro.xpath.parser import XPathParser

# Connectors between pattern steps.
CHILD = "/"
ANCESTOR = "//"


class StepPattern:
    """One pattern step: child or attribute axis, node test, predicates."""

    __slots__ = ("axis", "test", "predicates")

    def __init__(self, axis, test, predicates):
        self.axis = axis
        self.test = test
        self.predicates = predicates

    def node_matches(self, node, context):
        """Does ``node`` satisfy this step's test and predicates?"""
        principal = (
            NodeKind.ATTRIBUTE if self.axis == "attribute" else NodeKind.ELEMENT
        )
        if not self.test.matches(node, principal, context):
            return False
        if not self.predicates:
            return True
        return self._predicates_hold(node, context)

    def _predicates_hold(self, node, context):
        """Pattern predicates count position among like-named siblings."""
        parent = node.parent
        if parent is None:
            siblings = [node]
        elif self.axis == "attribute":
            siblings = [
                attribute
                for attribute in parent.attributes
                if self.test.matches(attribute, NodeKind.ATTRIBUTE, context)
            ]
        else:
            siblings = [
                child
                for child in parent.children
                if self.test.matches(child, NodeKind.ELEMENT, context)
            ]
        survivors = siblings
        for predicate in self.predicates:
            survivors = _filter_by_predicate(survivors, predicate, context)
        return any(candidate is node for candidate in survivors)

    def to_text(self):
        prefix = "@" if self.axis == "attribute" else ""
        text = prefix + self.test.to_text()
        for predicate in self.predicates:
            text += "[%s]" % predicate.to_text()
        return text


class PathPattern:
    """One alternative of a pattern: steps joined by '/' or '//'."""

    __slots__ = ("steps", "connectors", "anchored", "source")

    def __init__(self, steps, connectors, anchored, source=""):
        # steps[i] is joined to steps[i+1] by connectors[i]
        self.steps = steps
        self.connectors = connectors
        self.anchored = anchored
        self.source = source

    def matches(self, node, context):
        if not self.steps:  # the pattern "/" — matches the document node
            return node.kind == NodeKind.DOCUMENT
        if not self.steps[-1].node_matches(node, context):
            return False
        return self._chain_matches(node, len(self.steps) - 1, context)

    def _chain_matches(self, node, step_index, context):
        """Check steps[0..step_index-1] against the ancestors of ``node``."""
        if step_index == 0:
            if not self.anchored:
                return True
            parent = node.parent
            return parent is not None and parent.kind == NodeKind.DOCUMENT
        connector = self.connectors[step_index - 1]
        prior = self.steps[step_index - 1]
        parent = node.parent
        if connector == CHILD:
            if parent is None:
                return False
            return prior.node_matches(parent, context) and self._chain_matches(
                parent, step_index - 1, context
            )
        # '//': some ancestor matches the prior step
        ancestor = parent
        while ancestor is not None:
            if prior.node_matches(ancestor, context) and self._chain_matches(
                ancestor, step_index - 1, context
            ):
                return True
            ancestor = ancestor.parent
        return False

    def default_priority(self):
        if len(self.steps) != 1 or self.anchored:
            return 0.5
        step = self.steps[0]
        if step.predicates:
            return 0.5
        test = step.test
        if isinstance(test, NameTest):
            if test.local == "*":
                if test.prefix is None:
                    return -0.5
                return -0.25
            return 0.0
        if isinstance(test, KindTest):
            if test.kind == NodeKind.PI and test.target is not None:
                return 0.0
            return -0.5
        return 0.5  # pragma: no cover - test kinds are exhaustive

    def to_text(self):
        if not self.steps:
            return "/"
        parts = []
        if self.anchored:
            parts.append("/")
        for index, step in enumerate(self.steps):
            if index:
                parts.append(self.connectors[index - 1])
            parts.append(step.to_text())
        return "".join(parts)


class Pattern:
    """A full match pattern: union of :class:`PathPattern` alternatives."""

    __slots__ = ("alternatives", "source")

    def __init__(self, alternatives, source):
        self.alternatives = alternatives
        self.source = source

    def matches(self, node, context):
        return any(alt.matches(node, context) for alt in self.alternatives)

    def max_default_priority(self):
        return max(alt.default_priority() for alt in self.alternatives)

    def to_text(self):
        return " | ".join(alt.to_text() for alt in self.alternatives)

    def __repr__(self):
        return "Pattern(%r)" % self.source


class _PatternParser(XPathParser):
    """Parses the pattern grammar, reusing the XPath step machinery."""

    def parse_pattern(self):
        alternatives = [self.parse_location_path_pattern()]
        while self.at(lex.OPERATOR, "|"):
            self.advance()
            alternatives.append(self.parse_location_path_pattern())
        return alternatives

    def parse_location_path_pattern(self):
        anchored = False
        steps = []
        connectors = []
        token = self.peek()
        if token.type == lex.SLASH:
            self.advance()
            anchored = True
            if not self._at_pattern_step_start():
                return PathPattern([], [], anchored=True)
        elif token.type == lex.DSLASH:
            self.advance()
            # Leading '//' is equivalent to unanchored.
        steps.append(self.parse_step_pattern())
        while self.at(lex.SLASH) or self.at(lex.DSLASH):
            connector = CHILD if self.advance().type == lex.SLASH else ANCESTOR
            connectors.append(connector)
            steps.append(self.parse_step_pattern())
        return PathPattern(steps, connectors, anchored)

    def _at_pattern_step_start(self):
        return self.peek().type in (
            lex.NAME,
            lex.STAR,
            lex.NCWILD,
            lex.AT,
            lex.AXIS,
            lex.NODETYPE,
        )

    def parse_step_pattern(self):
        axis = "child"
        token = self.peek()
        if token.type == lex.AT:
            self.advance()
            axis = "attribute"
        elif token.type == lex.AXIS:
            if token.value not in ("child", "attribute"):
                raise XPathSyntaxError(
                    "patterns allow only child/attribute axes, got %r"
                    % token.value
                )
            axis = self.advance().value
        test = self.parse_node_test()
        predicates = []
        while self.at(lex.LBRACK):
            self.advance()
            predicates.append(self.parse_expr())
            self.expect(lex.RBRACK)
        return StepPattern(axis, test, predicates)


def parse_pattern(source):
    """Parse a pattern string into a :class:`Pattern`."""
    lexer = Lexer(source)
    parser = _PatternParser(lexer)
    alternatives = parser.parse_pattern()
    trailing = lexer.peek()
    if trailing.type != lex.EOF:
        raise XPathSyntaxError(
            "unexpected trailing input %r in pattern %r" % (trailing.value, source)
        )
    for alternative in alternatives:
        alternative.source = source
    return Pattern(alternatives, source)


_PATTERN_CACHE = {}
_PATTERN_CACHE_LIMIT = 1024


def compile_pattern(source):
    """Parse a pattern with memoisation."""
    pattern = _PATTERN_CACHE.get(source)
    if pattern is None:
        pattern = parse_pattern(source)
        if len(_PATTERN_CACHE) >= _PATTERN_CACHE_LIMIT:
            _PATTERN_CACHE.clear()
        _PATTERN_CACHE[source] = pattern
    return pattern
