"""Recursive-descent parser for XPath 1.0.

Produces :mod:`repro.xpath.ast` nodes.  The grammar follows the REC
productions; ``//`` is expanded to ``/descendant-or-self::node()/`` during
parsing, and ``.``/``..`` become ``self::node()``/``parent::node()`` steps.

The :class:`XPathParser` is designed for reuse: the XSLT pattern parser and
the XQuery parser call into its step- and expression-level methods.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xmlmodel.nodes import NodeKind
from repro.xpath import lexer as lex
from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    NameTest,
    NumberLiteral,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.lexer import Lexer

_KIND_FOR_NODETYPE = {
    "node": None,
    "text": NodeKind.TEXT,
    "comment": NodeKind.COMMENT,
    "processing-instruction": NodeKind.PI,
}

_EQUALITY_OPS = ("=", "!=")
_RELATIONAL_OPS = ("<", "<=", ">", ">=")
_ADDITIVE_OPS = ("+", "-")
_MULTIPLICATIVE_OPS = ("*", "div", "mod")


class XPathParser:
    """Parser over an incremental :class:`Lexer`."""

    def __init__(self, lexer):
        self.lexer = lexer

    # -- token helpers -------------------------------------------------------

    def peek(self, offset=0):
        return self.lexer.peek(offset)

    def advance(self):
        return self.lexer.advance()

    def at(self, type_, value=None, offset=0):
        token = self.peek(offset)
        if token.type != type_:
            return False
        return value is None or token.value == value

    def expect(self, type_, value=None):
        token = self.advance()
        if token.type != type_ or (value is not None and token.value != value):
            raise XPathSyntaxError(
                "expected %s%s, got %r at offset %d"
                % (
                    type_,
                    " %r" % value if value is not None else "",
                    token.value,
                    token.pos,
                )
            )
        return token

    def fail(self, message):
        token = self.peek()
        raise XPathSyntaxError("%s at offset %d" % (message, token.pos))

    # -- expression grammar ----------------------------------------------------

    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.at(lex.OPERATOR, "or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_equality()
        while self.at(lex.OPERATOR, "and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_equality())
        return left

    def parse_equality(self):
        left = self.parse_relational()
        while self.peek().type == lex.OPERATOR and self.peek().value in _EQUALITY_OPS:
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_relational())
        return left

    def parse_relational(self):
        left = self.parse_additive()
        while (
            self.peek().type == lex.OPERATOR and self.peek().value in _RELATIONAL_OPS
        ):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while self.peek().type == lex.OPERATOR and self.peek().value in _ADDITIVE_OPS:
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while (
            self.peek().type == lex.OPERATOR
            and self.peek().value in _MULTIPLICATIVE_OPS
        ):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self):
        if self.at(lex.OPERATOR, "-"):
            self.advance()
            return UnaryMinus(self.parse_unary())
        return self.parse_union()

    def parse_union(self):
        left = self.parse_path()
        if not self.at(lex.OPERATOR, "|"):
            return left
        parts = [left]
        while self.at(lex.OPERATOR, "|"):
            self.advance()
            parts.append(self.parse_path())
        return UnionExpr(parts)

    # -- paths -------------------------------------------------------------------

    def parse_path(self):
        """PathExpr: a location path, or a filter expr with optional steps."""
        if self._at_primary_start():
            primary = self.parse_primary()
            predicates = []
            while self.at(lex.LBRACK):
                self.advance()
                predicates.append(self.parse_expr())
                self.expect(lex.RBRACK)
            base = FilterExpr(primary, predicates) if predicates else primary
            if self.at(lex.SLASH) or self.at(lex.DSLASH):
                steps = self._parse_step_sequence()
                return PathExpr(steps, start=base)
            return base
        return self.parse_location_path()

    def _at_primary_start(self):
        token = self.peek()
        if token.type in (lex.VARIABLE, lex.LITERAL, lex.NUMBER, lex.LPAREN):
            return True
        if token.type == lex.NAME and self.peek(1).type == lex.LPAREN:
            return True
        return False

    def parse_primary(self):
        token = self.peek()
        if token.type == lex.VARIABLE:
            self.advance()
            return VariableRef(token.value)
        if token.type == lex.LITERAL:
            self.advance()
            return Literal(token.value)
        if token.type == lex.NUMBER:
            self.advance()
            return NumberLiteral(token.value)
        if token.type == lex.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(lex.RPAREN)
            return inner
        if token.type == lex.NAME and self.peek(1).type == lex.LPAREN:
            return self.parse_function_call()
        self.fail("expected a primary expression")

    def parse_function_call(self):
        name = self.advance().value
        if name.startswith("fn:"):
            name = name[3:]
        self.expect(lex.LPAREN)
        args = []
        if not self.at(lex.RPAREN):
            args.append(self.parse_argument())
            while self.at(lex.OPERATOR, ","):
                self.advance()
                args.append(self.parse_argument())
        self.expect(lex.RPAREN)
        return FunctionCall(name, args)

    def parse_argument(self):
        """One function-call argument (overridden by the XQuery parser,
        where arguments are ExprSingle so commas separate arguments)."""
        return self.parse_expr()

    def parse_location_path(self):
        token = self.peek()
        if token.type == lex.SLASH:
            self.advance()
            if self._at_step_start():
                steps = [self.parse_step()]
                steps.extend(self._parse_step_sequence_tail())
                return PathExpr(steps, absolute=True)
            return PathExpr([], absolute=True)
        if token.type == lex.DSLASH:
            self.advance()
            steps = [Step("descendant-or-self", KindTest(None)), self.parse_step()]
            steps.extend(self._parse_step_sequence_tail())
            return PathExpr(steps, absolute=True)
        steps = [self.parse_step()]
        steps.extend(self._parse_step_sequence_tail())
        return PathExpr(steps)

    def _parse_step_sequence(self):
        """Steps after a filter expression: (('/' | '//') Step)+ ."""
        steps = []
        while True:
            if self.at(lex.SLASH):
                self.advance()
                steps.append(self.parse_step())
            elif self.at(lex.DSLASH):
                self.advance()
                steps.append(Step("descendant-or-self", KindTest(None)))
                steps.append(self.parse_step())
            else:
                break
        if not steps:
            self.fail("expected a step after '/'")
        return steps

    def _parse_step_sequence_tail(self):
        steps = []
        while self.at(lex.SLASH) or self.at(lex.DSLASH):
            if self.advance().type == lex.DSLASH:
                steps.append(Step("descendant-or-self", KindTest(None)))
            steps.append(self.parse_step())
        return steps

    def _at_step_start(self):
        token = self.peek()
        return token.type in (
            lex.NAME,
            lex.STAR,
            lex.NCWILD,
            lex.AT,
            lex.AXIS,
            lex.NODETYPE,
            lex.DOT,
            lex.DOTDOT,
        )

    def parse_step(self):
        token = self.peek()
        if token.type == lex.DOT:
            self.advance()
            return Step("self", KindTest(None))
        if token.type == lex.DOTDOT:
            self.advance()
            return Step("parent", KindTest(None))

        axis = "child"
        if token.type == lex.AT:
            self.advance()
            axis = "attribute"
        elif token.type == lex.AXIS:
            axis = self.advance().value

        test = self.parse_node_test()
        predicates = []
        while self.at(lex.LBRACK):
            self.advance()
            predicates.append(self.parse_expr())
            self.expect(lex.RBRACK)
        return Step(axis, test, predicates)

    def parse_node_test(self):
        token = self.peek()
        if token.type == lex.STAR:
            self.advance()
            return NameTest(None, "*")
        if token.type == lex.NCWILD:
            self.advance()
            return NameTest(token.value, "*")
        if token.type == lex.NODETYPE:
            self.advance()
            self.expect(lex.LPAREN)
            target = None
            if token.value == "processing-instruction" and self.at(lex.LITERAL):
                target = self.advance().value
            self.expect(lex.RPAREN)
            return KindTest(_KIND_FOR_NODETYPE[token.value], target)
        if token.type == lex.NAME:
            self.advance()
            prefix, _, local = token.value.rpartition(":")
            return NameTest(prefix or None, local)
        self.fail("expected a node test")


def parse_xpath(source):
    """Parse an XPath 1.0 expression string into an AST."""
    lexer = Lexer(source)
    parser = XPathParser(lexer)
    expr = parser.parse_expr()
    trailing = lexer.peek()
    if trailing.type != lex.EOF:
        raise XPathSyntaxError(
            "unexpected trailing input %r at offset %d in %r"
            % (trailing.value, trailing.pos, source)
        )
    return expr


_COMPILE_CACHE = {}
_COMPILE_CACHE_LIMIT = 2048


def compile_xpath(source):
    """Parse with memoisation (stylesheets re-use the same expressions)."""
    expr = _COMPILE_CACHE.get(source)
    if expr is None:
        expr = parse_xpath(source)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[source] = expr
    return expr
