"""XPath 1.0 lexer, shared with the XQuery subset parser.

Implements the disambiguation rules of XPath 1.0 §3.7 directly in the
tokenizer: whether ``*`` is the multiply operator or a wildcard, and whether
``and``/``or``/``div``/``mod`` are operator names or node names, depends on
the preceding token.  Axis names followed by ``::`` and node-type names
followed by ``(`` are recognised here too.

The lexer is *incremental* (:class:`Lexer`): tokens are produced on demand
and the consumer can reposition the scan.  The XQuery parser relies on this
to switch into raw-character mode when it meets a direct element constructor
(``<emp>...</emp>``), where XML content rules apply rather than expression
rules, and to resume token mode inside ``{...}`` enclosed expressions.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError

# Token types
NAME = "name"            # QName (value is "local" or "prefix:local")
NUMBER = "number"
LITERAL = "literal"
VARIABLE = "variable"    # $name
OPERATOR = "operator"    # and or div mod = != < <= > >= + - * | , := ;
AXIS = "axis"            # axis name (value without '::')
NODETYPE = "nodetype"    # node text comment processing-instruction, '(' follows
LPAREN = "("
RPAREN = ")"
LBRACK = "["
RBRACK = "]"
LBRACE = "{"
RBRACE = "}"
SLASH = "/"
DSLASH = "//"
DOT = "."
DOTDOT = ".."
AT = "@"
STAR = "star"            # wildcard *
NCWILD = "ncwild"        # prefix:*
EOF = "eof"

NODE_TYPE_NAMES = frozenset(["node", "text", "comment", "processing-instruction"])
AXIS_NAMES = frozenset(
    [
        "ancestor", "ancestor-or-self", "attribute", "child", "descendant",
        "descendant-or-self", "following", "following-sibling", "namespace",
        "parent", "preceding", "preceding-sibling", "self",
    ]
)
_OPERATOR_NAMES = frozenset(["and", "or", "div", "mod"])

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789.-")

# Token types after which an *operand* is expected next, so '*' is a
# wildcard and 'and' is an element name.
_OPERAND_EXPECTED_AFTER = frozenset(
    [None, OPERATOR, AXIS, LPAREN, LBRACK, LBRACE, SLASH, DSLASH, AT]
)


class Token:
    """A lexical token with its [pos, end) span in the source."""

    __slots__ = ("type", "value", "pos", "end")

    def __init__(self, type_, value, pos, end):
        self.type = type_
        self.value = value
        self.pos = pos
        self.end = end

    def __repr__(self):
        return "Token(%s, %r)" % (self.type, self.value)


class Lexer:
    """Incremental tokenizer with lookahead buffer and repositioning."""

    def __init__(self, source, xquery_mode=False):
        self.source = source
        self.xquery_mode = xquery_mode
        self._pos = 0
        self._prev_type = None
        self._buffer = []

    # -- consumer API -------------------------------------------------------

    def peek(self, offset=0):
        """Look ahead ``offset`` tokens without consuming."""
        while len(self._buffer) <= offset:
            self._buffer.append(self._scan())
        return self._buffer[offset]

    def advance(self):
        """Consume and return the next token."""
        token = self.peek()
        self._buffer.pop(0)
        return token

    def reset(self, pos, operand_expected=True):
        """Reposition the scan; drops any buffered lookahead."""
        self._buffer = []
        self._pos = pos
        self._prev_type = None if operand_expected else NAME

    @property
    def buffered_start(self):
        """Raw source offset of the next unconsumed token (or scan point)."""
        if self._buffer:
            return self._buffer[0].pos
        return self._pos

    def skip_raw_space(self):
        """Advance the raw position past whitespace (raw mode helper)."""
        assert not self._buffer, "cannot mix raw access with buffered tokens"
        while self._pos < len(self.source) and self.source[self._pos] in " \t\r\n":
            self._pos += 1
        return self._pos

    def fail(self, message, at=None):
        at = self._pos if at is None else at
        raise XPathSyntaxError(
            "%s at offset %d in %r" % (message, at, _clip(self.source))
        )

    # -- scanning -----------------------------------------------------------

    def _scan(self):
        source = self.source
        length = len(source)
        pos = self._pos

        while True:
            while pos < length and source[pos] in " \t\r\n":
                pos += 1
            if self.xquery_mode and source.startswith("(:", pos):
                pos = self._skip_comment(pos)
                continue
            break

        if pos >= length:
            self._pos = pos
            return Token(EOF, None, pos, pos)

        char = source[pos]
        start = pos

        def emit(type_, value, end):
            self._pos = end
            self._prev_type = type_
            return Token(type_, value, start, end)

        if char in "\"'":
            end = source.find(char, pos + 1)
            if end < 0:
                self.fail("unterminated string literal", pos)
            return emit(LITERAL, source[pos + 1:end], end + 1)

        if char.isdigit() or (
            char == "." and pos + 1 < length and source[pos + 1].isdigit()
        ):
            end = pos + 1
            while end < length and (source[end].isdigit() or source[end] == "."):
                end += 1
            text = source[pos:end]
            if text.count(".") > 1:
                self.fail("malformed number %r" % text, pos)
            return emit(NUMBER, float(text), end)

        if char == "$":
            name, end = self._scan_qname(pos + 1)
            return emit(VARIABLE, name, end)

        two = source[pos:pos + 2]
        if two == "//":
            return emit(DSLASH, "//", pos + 2)
        if two in ("!=", "<=", ">="):
            return emit(OPERATOR, two, pos + 2)
        if self.xquery_mode and two == ":=":
            return emit(OPERATOR, ":=", pos + 2)
        if two == "..":
            return emit(DOTDOT, "..", pos + 2)

        simple = {
            ".": (DOT, "."), "/": (SLASH, "/"), "@": (AT, "@"),
            "(": (LPAREN, "("), ")": (RPAREN, ")"),
            "[": (LBRACK, "["), "]": (RBRACK, "]"),
        }
        if char in simple:
            type_, value = simple[char]
            return emit(type_, value, pos + 1)
        if self.xquery_mode and char == "{":
            return emit(LBRACE, "{", pos + 1)
        if self.xquery_mode and char == "}":
            return emit(RBRACE, "}", pos + 1)
        if char in ",+-=<>|" or (self.xquery_mode and char == ";"):
            return emit(OPERATOR, char, pos + 1)

        if char == "*":
            if self._operand_expected():
                return emit(STAR, "*", pos + 1)
            return emit(OPERATOR, "*", pos + 1)

        if char in _NAME_START:
            name, end = self._scan_qname(pos, allow_wild=True)
            if name.endswith(":*"):
                return emit(NCWILD, name[:-2], end)
            if not self._operand_expected() and name in _OPERATOR_NAMES:
                return emit(OPERATOR, name, end)
            after = _skip_space(source, end)
            if source.startswith("::", after):
                if name not in AXIS_NAMES:
                    self.fail("unknown axis %r" % name, pos)
                return emit(AXIS, name, after + 2)
            if after < length and source[after] == "(" and name in NODE_TYPE_NAMES:
                return emit(NODETYPE, name, end)
            return emit(NAME, name, end)

        self.fail("unexpected character %r" % char, pos)

    def _operand_expected(self):
        return self._prev_type in _OPERAND_EXPECTED_AFTER or (
            self._prev_type == OPERATOR
        )

    def _skip_comment(self, pos):
        depth = 1
        pos += 2
        source = self.source
        length = len(source)
        while pos < length and depth:
            if source.startswith("(:", pos):
                depth += 1
                pos += 2
            elif source.startswith(":)", pos):
                depth -= 1
                pos += 2
            else:
                pos += 1
        if depth:
            self.fail("unterminated XQuery comment", pos)
        return pos

    def _scan_qname(self, pos, allow_wild=False):
        source = self.source
        length = len(source)
        if pos >= length or source[pos] not in _NAME_START:
            self.fail("expected a name", pos)
        start = pos
        pos += 1
        while pos < length and source[pos] in _NAME_CHARS:
            pos += 1
        name = source[start:pos]
        if pos < length and source[pos] == ":" and not source.startswith("::", pos):
            after = pos + 1
            if allow_wild and after < length and source[after] == "*":
                return name + ":*", after + 1
            if after < length and source[after] in _NAME_START:
                end = after + 1
                while end < length and source[end] in _NAME_CHARS:
                    end += 1
                return name + ":" + source[after:end], end
        return name, pos


def tokenize(source, xquery_mode=False):
    """One-shot tokenization: the full token list ending with EOF."""
    lexer = Lexer(source, xquery_mode=xquery_mode)
    tokens = []
    while True:
        token = lexer.advance()
        tokens.append(token)
        if token.type == EOF:
            return tokens


def _skip_space(source, pos):
    while pos < len(source) and source[pos] in " \t\r\n":
        pos += 1
    return pos


def _clip(source, limit=80):
    return source if len(source) <= limit else source[:limit] + "..."
