"""Evaluation context for XPath (and, extended, XQuery) expressions."""

from __future__ import annotations

from repro.errors import XPathEvaluationError


class XPathContext:
    """Carries everything an expression needs at evaluation time.

    :param node: the context node (or item, for XQuery sequences).
    :param position: 1-based context position.
    :param size: context size.
    :param variables: mapping of variable name (``local`` or
        ``prefix:local``) to XPath value.
    :param namespaces: prefix → URI bindings for resolving prefixed name
        tests in the expression.
    :param functions: extra function library entries overlaid on the core
        library (the XSLT VM registers ``current()``, ``key()``, ...).
    :param current: XSLT's "current node" (for the ``current()`` function);
        defaults to the context node.
    """

    __slots__ = (
        "node",
        "position",
        "size",
        "variables",
        "namespaces",
        "functions",
        "current",
        "extra",
    )

    def __init__(
        self,
        node,
        position=1,
        size=1,
        variables=None,
        namespaces=None,
        functions=None,
        current=None,
        extra=None,
    ):
        self.node = node
        self.position = position
        self.size = size
        self.variables = variables if variables is not None else {}
        self.namespaces = namespaces if namespaces is not None else {}
        self.functions = functions if functions is not None else {}
        self.current = current if current is not None else node
        # Host-specific payload (the XSLT VM stores key indexes etc. here).
        self.extra = extra if extra is not None else {}

    def with_node(self, node, position=1, size=1):
        """A context focused on a different node, sharing the environment."""
        return XPathContext(
            node,
            position=position,
            size=size,
            variables=self.variables,
            namespaces=self.namespaces,
            functions=self.functions,
            current=self.current,
            extra=self.extra,
        )

    def with_variables(self, new_variables):
        """A context with additional variable bindings layered on."""
        merged = dict(self.variables)
        merged.update(new_variables)
        return XPathContext(
            self.node,
            position=self.position,
            size=self.size,
            variables=merged,
            namespaces=self.namespaces,
            functions=self.functions,
            current=self.current,
            extra=self.extra,
        )

    def lookup_variable(self, name):
        if name in self.variables:
            return self.variables[name]
        raise XPathEvaluationError("undefined variable $%s" % name)

    def resolve_prefix(self, prefix):
        """Resolve a namespace prefix used inside the expression."""
        if prefix in self.namespaces:
            return self.namespaces[prefix]
        raise XPathEvaluationError(
            "undeclared namespace prefix %r in expression" % prefix
        )
