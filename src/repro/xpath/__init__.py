"""XPath 1.0 engine: lexer, parser, evaluator, function library, patterns.

The same expression machinery is shared by the XSLT VM (select expressions,
match patterns) and the XQuery engine (path expressions), which is exactly
the layering the paper relies on: "XSLT and XQuery share the same XPath and
many functions and operators as a common core" (§3).

Public API:

* :func:`compile_xpath` / :func:`evaluate_xpath` — expressions;
* :func:`compile_pattern` — XSLT match patterns with default priorities;
* :class:`XPathContext` — evaluation context (node, position, size,
  variables, namespaces, functions);
* the value-conversion helpers in :mod:`.datamodel`.
"""

from repro.xpath.context import XPathContext
from repro.xpath.datamodel import (
    is_node,
    is_node_set,
    number_to_string,
    to_boolean,
    to_number,
    to_string,
)
from repro.xpath.parser import compile_xpath, parse_xpath
from repro.xpath.patterns import compile_pattern
from repro.xpath.evaluator import evaluate_xpath

__all__ = [
    "XPathContext",
    "compile_pattern",
    "compile_xpath",
    "evaluate_xpath",
    "is_node",
    "is_node_set",
    "number_to_string",
    "parse_xpath",
    "to_boolean",
    "to_number",
    "to_string",
]
