"""XPath 1.0 core function library, plus the ``fn:`` additions the
generated XQuery uses (``string-join``, ``exists``, ``empty``, ``data``).

Registry format: ``name -> (min_args, max_args, impl)`` where ``impl``
receives the evaluation context followed by the already-evaluated argument
values.  ``max_args`` of ``None`` means variadic.  Host languages (the XSLT
VM) overlay extra entries via ``XPathContext.functions``.
"""

from __future__ import annotations

import math

from repro.errors import XPathEvaluationError
from repro.xmlmodel.nodes import Node, NodeKind
from repro.xpath.datamodel import (
    NAN,
    to_boolean,
    to_node_set,
    to_number,
    to_string,
    xpath_round,
)


def _context_node_set(context):
    if context.node is None:
        raise XPathEvaluationError("no context node")
    return [context.node]


# -- node-set functions -------------------------------------------------------


def fn_last(context):
    return float(context.size)


def fn_position(context):
    return float(context.position)


def fn_count(context, value):
    # XPath 1.0 takes a node-set; the XQuery engine shares this library and
    # counts general item sequences, so any list is accepted.
    if isinstance(value, Node):
        return 1.0
    if isinstance(value, list):
        return float(len(value))
    return float(len(to_node_set(value, "count() argument")))


def fn_id(context, value):
    # No DTD-driven ID support in this model; defined to select nothing.
    return []


def fn_local_name(context, value=None):
    nodes = (
        _context_node_set(context)
        if value is None
        else to_node_set(value, "local-name() argument")
    )
    if not nodes or nodes[0].name is None:
        return ""
    return nodes[0].name.local


def fn_namespace_uri(context, value=None):
    nodes = (
        _context_node_set(context)
        if value is None
        else to_node_set(value, "namespace-uri() argument")
    )
    if not nodes or nodes[0].name is None:
        return ""
    return nodes[0].name.uri or ""


def fn_name(context, value=None):
    nodes = (
        _context_node_set(context)
        if value is None
        else to_node_set(value, "name() argument")
    )
    if not nodes or nodes[0].name is None:
        return ""
    return nodes[0].name.lexical


# -- string functions --------------------------------------------------------


def fn_string(context, value=None):
    if value is None:
        return context.node.string_value() if context.node is not None else ""
    return to_string(value)


def fn_concat(context, *values):
    return "".join(to_string(value) for value in values)


def fn_starts_with(context, haystack, prefix):
    return to_string(haystack).startswith(to_string(prefix))


def fn_contains(context, haystack, needle):
    return to_string(needle) in to_string(haystack)


def fn_substring_before(context, haystack, needle):
    text = to_string(haystack)
    marker = to_string(needle)
    index = text.find(marker)
    return text[:index] if index >= 0 else ""


def fn_substring_after(context, haystack, needle):
    text = to_string(haystack)
    marker = to_string(needle)
    index = text.find(marker)
    return text[index + len(marker):] if index >= 0 else ""


def fn_substring(context, value, start, length=None):
    """XPath substring() with its round-and-clip semantics."""
    text = to_string(value)
    start_num = to_number(start)
    if start_num != start_num:  # NaN start selects nothing
        return ""
    begin = xpath_round(start_num)
    if length is not None:
        length_num = to_number(length)
        if length_num != length_num:
            return ""
        end = begin + xpath_round(length_num)
    else:
        end = math.inf
    result = []
    for position, char in enumerate(text, start=1):
        if position >= begin and position < end:
            result.append(char)
    return "".join(result)


def fn_string_length(context, value=None):
    text = fn_string(context, value)
    return float(len(text))


def fn_normalize_space(context, value=None):
    text = fn_string(context, value)
    return " ".join(text.split())


def fn_translate(context, value, source_chars, target_chars):
    text = to_string(value)
    source = to_string(source_chars)
    target = to_string(target_chars)
    mapping = {}
    for index, char in enumerate(source):
        if char not in mapping:
            mapping[char] = target[index] if index < len(target) else None
    out = []
    for char in text:
        if char in mapping:
            replacement = mapping[char]
            if replacement is not None:
                out.append(replacement)
        else:
            out.append(char)
    return "".join(out)


# -- boolean functions ---------------------------------------------------------


def fn_boolean(context, value):
    return to_boolean(value)


def fn_not(context, value):
    return not to_boolean(value)


def fn_true(context):
    return True


def fn_false(context):
    return False


def fn_lang(context, value):
    wanted = to_string(value).lower()
    node = context.node
    while node is not None:
        if node.kind == NodeKind.ELEMENT:
            lang = node.get_attribute(
                "lang", uri="http://www.w3.org/XML/1998/namespace"
            )
            if lang is not None:
                lang = lang.lower()
                return lang == wanted or lang.startswith(wanted + "-")
        node = node.parent
    return False


# -- number functions -----------------------------------------------------------


def fn_number(context, value=None):
    if value is None:
        if context.node is None:
            return NAN
        return to_number(context.node.string_value())
    return to_number(value)


def fn_sum(context, value):
    # Accepts node-sets (XPath) and general item sequences (XQuery).
    if isinstance(value, Node):
        value = [value]
    if not isinstance(value, list):
        value = [value]
    return float(sum(to_number(item) for item in value))


def fn_floor(context, value):
    number = to_number(value)
    if number != number or number in (math.inf, -math.inf):
        return number
    return float(math.floor(number))


def fn_ceiling(context, value):
    number = to_number(value)
    if number != number or number in (math.inf, -math.inf):
        return number
    return float(math.ceil(number))


def fn_round(context, value):
    return xpath_round(to_number(value))


# -- XQuery fn: additions used by generated queries -----------------------------


def fn_exists(context, value):
    if isinstance(value, Node):
        return True
    if isinstance(value, list):
        return len(value) > 0
    return True  # an atomic value is a singleton sequence


def fn_empty(context, value):
    return not fn_exists(context, value)


def fn_string_join(context, value, separator=""):
    separator = to_string(separator)
    if isinstance(value, Node):
        value = [value]
    if not isinstance(value, list):
        value = [value]
    return separator.join(to_string(item) for item in value)


def fn_data(context, value):
    """Atomize: nodes become their string values."""
    if isinstance(value, Node):
        return value.string_value()
    if isinstance(value, list):
        return [
            item.string_value() if isinstance(item, Node) else item
            for item in value
        ]
    return value


def fn_distinct_values(context, value):
    if not isinstance(value, list):
        value = [value]
    seen = []
    for item in value:
        atom = item.string_value() if isinstance(item, Node) else item
        if atom not in seen:
            seen.append(atom)
    return seen


def fn_avg(context, value):
    nodes = to_node_set(value, "avg() argument")
    if not nodes:
        return []
    return fn_sum(context, nodes) / len(nodes)


def fn_min(context, value):
    nodes = to_node_set(value, "min() argument")
    if not nodes:
        return []
    return min(to_number(node.string_value()) for node in nodes)


def fn_max(context, value):
    nodes = to_node_set(value, "max() argument")
    if not nodes:
        return []
    return max(to_number(node.string_value()) for node in nodes)


CORE_FUNCTIONS = {
    "last": (0, 0, fn_last),
    "position": (0, 0, fn_position),
    "count": (1, 1, fn_count),
    "id": (1, 1, fn_id),
    "local-name": (0, 1, fn_local_name),
    "namespace-uri": (0, 1, fn_namespace_uri),
    "name": (0, 1, fn_name),
    "string": (0, 1, fn_string),
    "concat": (2, None, fn_concat),
    "starts-with": (2, 2, fn_starts_with),
    "contains": (2, 2, fn_contains),
    "substring-before": (2, 2, fn_substring_before),
    "substring-after": (2, 2, fn_substring_after),
    "substring": (2, 3, fn_substring),
    "string-length": (0, 1, fn_string_length),
    "normalize-space": (0, 1, fn_normalize_space),
    "translate": (3, 3, fn_translate),
    "boolean": (1, 1, fn_boolean),
    "not": (1, 1, fn_not),
    "true": (0, 0, fn_true),
    "false": (0, 0, fn_false),
    "lang": (1, 1, fn_lang),
    "number": (0, 1, fn_number),
    "sum": (1, 1, fn_sum),
    "floor": (1, 1, fn_floor),
    "ceiling": (1, 1, fn_ceiling),
    "round": (1, 1, fn_round),
    # fn: extensions shared with the XQuery engine
    "exists": (1, 1, fn_exists),
    "empty": (1, 1, fn_empty),
    "string-join": (1, 2, fn_string_join),
    "data": (1, 1, fn_data),
    "distinct-values": (1, 1, fn_distinct_values),
    "avg": (1, 1, fn_avg),
    "min": (1, 1, fn_min),
    "max": (1, 1, fn_max),
}
