"""One-shot XSLT transformation front end (functional evaluation).

This is the paper's "XSLT no rewrite" path: the input is a DOM and the VM
walks it directly.  The rewrite path lives in :mod:`repro.core`.
"""

from __future__ import annotations

from repro.xmlmodel.nodes import NodeKind
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize_children
from repro.xslt.stylesheet import Stylesheet, compile_stylesheet
from repro.xslt.vm import XsltVM


def transform(stylesheet, source, params=None, trace=None):
    """Apply ``stylesheet`` to ``source``; both may be markup or parsed.

    Returns the result tree :class:`~repro.xmlmodel.nodes.Document`.
    """
    if not isinstance(stylesheet, Stylesheet):
        stylesheet = compile_stylesheet(stylesheet)
    if isinstance(source, str):
        source = parse_document(source)
    vm = XsltVM(stylesheet, trace=trace)
    return vm.transform_document(source, params=params)


def transform_to_string(stylesheet, source, params=None):
    """Transform and serialize using the stylesheet's output method."""
    if not isinstance(stylesheet, Stylesheet):
        stylesheet = compile_stylesheet(stylesheet)
    result = transform(stylesheet, source, params=params)
    method = output_method(stylesheet, result)
    return serialize_children(result, method=method, indent=stylesheet.output_indent)


def output_method(stylesheet, result):
    """The effective output method (xsl:output or the HTML sniffing rule)."""
    if stylesheet.output_method is not None:
        return stylesheet.output_method
    for child in result.children:
        if child.kind == NodeKind.ELEMENT:
            if child.name.local.lower() == "html" and child.name.uri is None:
                return "html"
            break
    return "xml"
