"""Stylesheet model and compiler: stylesheet DOM → instruction tree.

``compile_stylesheet`` accepts markup text or a parsed document and produces
a :class:`Stylesheet`: template rules (match patterns split per union
alternative, with resolved priorities), named templates, keys, globals and
output settings.  Template bodies are compiled into
:mod:`repro.xslt.instructions` trees with stable ``site_id`` stamps.
"""

from __future__ import annotations

import itertools

from repro.errors import XsltCompileError
from repro.xmlmodel.nodes import NodeKind, QName
from repro.xmlmodel.parser import parse_document
from repro.xpath.parser import compile_xpath
from repro.xpath.patterns import compile_pattern
from repro.xslt.avt import compile_avt
from repro.xslt import instructions as instr

XSL_NS = "http://www.w3.org/1999/XSL/Transform"


class Template:
    """A compiled template (match and/or named)."""

    __slots__ = (
        "match", "name", "mode", "priority", "params", "body", "position",
        "source", "precedence",
    )

    def __init__(self, match, name, mode, priority, params, body, position,
                 source=None, precedence=0):
        self.match = match          # Pattern or None
        self.name = name            # str or None
        self.mode = mode            # str or None
        self.priority = priority    # float or None (use default priorities)
        self.params = params        # list of ParamInstr
        self.body = body            # list of Instruction
        self.position = position    # stylesheet document order
        self.source = source        # original <xsl:template> element
        self.precedence = precedence  # import precedence

    def label(self):
        if self.match is not None:
            text = 'match="%s"' % self.match.source
            if self.mode:
                text += ' mode="%s"' % self.mode
            return text
        return 'name="%s"' % self.name

    @property
    def source_line(self):
        """Line of the ``<xsl:template>`` start tag in the stylesheet
        source, when the stylesheet was parsed from markup."""
        if self.source is not None:
            return getattr(self.source, "source_line", None)
        return None

    def __repr__(self):
        return "<Template %s>" % self.label()


class Rule:
    """One match alternative of a template, with its effective priority
    and import precedence (xsl:import, XSLT 1.0 §2.6.2: precedence trumps
    priority)."""

    __slots__ = ("pattern", "template", "priority", "position", "precedence")

    def __init__(self, pattern, template, priority, position, precedence=0):
        self.pattern = pattern      # PathPattern (single alternative)
        self.template = template
        self.priority = priority
        self.position = position
        self.precedence = precedence

    def sort_key(self):
        return (self.precedence, self.priority, self.position)


class Key:
    """A compiled ``<xsl:key>`` declaration."""

    __slots__ = ("name", "match", "use")

    def __init__(self, name, match, use):
        self.name = name
        self.match = match  # Pattern
        self.use = use      # Expr


class Stylesheet:
    """The compiled stylesheet."""

    def __init__(self):
        self.templates = []
        self.named_templates = {}
        self.rules_by_mode = {}      # mode (str|None) -> [Rule] best-first
        self.keys = {}
        self.global_bindings = []    # VariableInstr/ParamInstr, document order
        self.output_method = None    # None = decide from first element
        self.output_indent = False
        self.namespaces = {}         # in-scope prefixes for expressions
        self.strip_space_names = set()
        self.preserve_space_names = set()
        self.instruction_count = 0

    def rules_for_mode(self, mode):
        return self.rules_by_mode.get(mode, ())

    def iter_instructions(self):
        """All instructions in all templates and globals, pre-order."""
        for template in self.templates:
            for top in template.params + template.body:
                for instruction in top.iter_tree():
                    yield instruction
        for binding in self.global_bindings:
            for instruction in binding.iter_tree():
                yield instruction

    def finalize(self):
        """Sort rules best-match-first and index named templates."""
        for mode, rules in self.rules_by_mode.items():
            rules.sort(key=Rule.sort_key, reverse=True)


def compile_stylesheet(source, resolver=None):
    """Compile stylesheet markup (or a parsed document) to a Stylesheet.

    :param resolver: optional ``callable(href) -> markup text`` used to
        load ``<xsl:include>`` targets.  Includes are merged at compile
        time (same precedence, per XSLT 1.0 §2.6.1); without a resolver,
        ``xsl:include`` is rejected.
    """
    if isinstance(source, str):
        document = parse_document(source)
    else:
        document = source
    root = document.document_element
    if root is None:
        raise XsltCompileError("stylesheet has no document element")
    compiler = _Compiler(resolver=resolver)
    if root.name.uri == XSL_NS and root.name.local in ("stylesheet", "transform"):
        return compiler.compile_root(root)
    if root.get_attribute("version", uri=XSL_NS) is not None:
        return compiler.compile_simplified(root)
    raise XsltCompileError(
        "document element is not xsl:stylesheet (or a simplified stylesheet)"
    )


class _Compiler:
    """Single-use stylesheet compiler."""

    def __init__(self, resolver=None):
        self.stylesheet = Stylesheet()
        self.resolver = resolver
        self._site_counter = itertools.count()
        self._position_counter = itertools.count()
        self._include_stack = []
        self._precedence_counter = itertools.count()
        self._current_precedence = 0
        # name -> (precedence, binding), highest precedence wins
        self._global_candidates = {}

    # -- top level ----------------------------------------------------------

    def compile_root(self, root):
        stylesheet = self.stylesheet
        stylesheet.namespaces = self._scope_namespaces(root)
        self._compile_sheet(root)
        self._finalize_globals()
        stylesheet.finalize()
        return stylesheet

    def _compile_sheet(self, root):
        """One stylesheet level: resolve its imports first (each gets a
        lower import precedence, XSLT 1.0 §2.6.2), then its own content."""
        element_children = [
            child for child in root.children
            if child.kind == NodeKind.ELEMENT and child.name.uri == XSL_NS
        ]
        own = []
        for child in element_children:
            if child.name.local == "import":
                if own:
                    raise XsltCompileError(
                        "xsl:import must precede other declarations"
                    )
                self._handle_import(child)
            else:
                own.append(child)
        self._current_precedence = next(self._precedence_counter)
        self._compile_top_level(root)

    def _handle_import(self, element):
        href = self._require(element, "href")
        if self.resolver is None:
            raise XsltCompileError(
                "xsl:import requires a resolver (compile_stylesheet(...,"
                " resolver=...))"
            )
        if href in self._include_stack:
            raise XsltCompileError("circular xsl:import of %r" % href)
        imported = parse_document(self.resolver(href))
        root = imported.document_element
        if root is None or root.name.uri != XSL_NS or root.name.local not in (
            "stylesheet", "transform"
        ):
            raise XsltCompileError("imported %r is not an xsl:stylesheet" % href)
        for prefix, uri in self._scope_namespaces(root).items():
            self.stylesheet.namespaces.setdefault(prefix, uri)
        self._include_stack.append(href)
        try:
            self._compile_sheet(root)
        finally:
            self._include_stack.pop()

    def _finalize_globals(self):
        self.stylesheet.global_bindings = [
            binding for _, binding in self._global_candidates.values()
        ]

    def _compile_top_level(self, root):
        for child in root.children:
            if child.kind == NodeKind.TEXT:
                if child.value.strip():
                    raise XsltCompileError("text at stylesheet top level")
                continue
            if child.kind != NodeKind.ELEMENT:
                continue
            if child.name.uri != XSL_NS:
                continue  # top-level data elements are ignored
            if child.name.local == "import":
                continue  # handled by _compile_sheet
            handler = self._TOP_LEVEL.get(child.name.local)
            if handler is None:
                raise XsltCompileError(
                    "unsupported top-level element xsl:%s" % child.name.local
                )
            handler(self, child)

    def compile_simplified(self, root):
        """A literal result element with xsl:version acts as the sole
        template matching '/'."""
        stylesheet = self.stylesheet
        stylesheet.namespaces = self._scope_namespaces(root)
        body = self.compile_body_nodes([root])
        template = Template(
            match=compile_pattern("/"),
            name=None,
            mode=None,
            priority=None,
            params=[],
            body=body,
            position=next(self._position_counter),
            source=root,
        )
        self._register_template(template)
        stylesheet.finalize()
        return stylesheet

    def _top_template(self, element):
        match_text = element.get_attribute("match")
        name = element.get_attribute("name")
        if match_text is None and name is None:
            raise XsltCompileError("xsl:template needs match= or name=")
        mode = element.get_attribute("mode")
        if mode is not None and match_text is None:
            raise XsltCompileError("mode= requires match=")
        priority_text = element.get_attribute("priority")
        priority = float(priority_text) if priority_text is not None else None

        params, body_nodes = self._split_leading_params(element)
        body = self.compile_body_nodes(body_nodes)
        template = Template(
            match=compile_pattern(match_text) if match_text is not None else None,
            name=name,
            mode=mode,
            priority=priority,
            params=params,
            body=body,
            position=next(self._position_counter),
            source=element,
        )
        self._register_template(template)

    def _register_template(self, template):
        stylesheet = self.stylesheet
        template.precedence = self._current_precedence
        stylesheet.templates.append(template)
        if template.name is not None:
            existing = stylesheet.named_templates.get(template.name)
            if existing is not None:
                if existing.precedence == template.precedence:
                    raise XsltCompileError(
                        "duplicate named template %r" % template.name
                    )
                if existing.precedence < template.precedence:
                    stylesheet.named_templates[template.name] = template
            else:
                stylesheet.named_templates[template.name] = template
        if template.match is not None:
            rules = stylesheet.rules_by_mode.setdefault(template.mode, [])
            for alternative in template.match.alternatives:
                priority = (
                    template.priority
                    if template.priority is not None
                    else alternative.default_priority()
                )
                rules.append(
                    Rule(alternative, template, priority, template.position,
                         precedence=template.precedence)
                )

    def _top_variable(self, element):
        self._register_global(self._compile_binding(element, instr.VariableInstr))

    def _top_param(self, element):
        self._register_global(self._compile_binding(element, instr.ParamInstr))

    def _register_global(self, binding):
        existing = self._global_candidates.get(binding.name)
        if existing is not None and existing[0] >= self._current_precedence:
            return  # an equal/higher-precedence definition wins
        self._global_candidates[binding.name] = (
            self._current_precedence, binding
        )

    def _top_output(self, element):
        method = element.get_attribute("method")
        if method is not None:
            if method not in ("xml", "html", "text"):
                raise XsltCompileError("unsupported output method %r" % method)
            self.stylesheet.output_method = method
        indent = element.get_attribute("indent")
        self.stylesheet.output_indent = indent == "yes"

    def _top_key(self, element):
        name = self._require(element, "name")
        match = compile_pattern(self._require(element, "match"))
        use = compile_xpath(self._require(element, "use"))
        self.stylesheet.keys[name] = Key(name, match, use)

    def _top_strip_space(self, element):
        names = self._require(element, "elements").split()
        self.stylesheet.strip_space_names.update(names)

    def _top_preserve_space(self, element):
        names = self._require(element, "elements").split()
        self.stylesheet.preserve_space_names.update(names)

    def _top_include(self, element):
        href = self._require(element, "href")
        if self.resolver is None:
            raise XsltCompileError(
                "xsl:include requires a resolver (compile_stylesheet(...,"
                " resolver=...))"
            )
        if href in self._include_stack:
            raise XsltCompileError("circular xsl:include of %r" % href)
        markup = self.resolver(href)
        included = parse_document(markup)
        root = included.document_element
        if root is None or root.name.uri != XSL_NS or root.name.local not in (
            "stylesheet", "transform"
        ):
            raise XsltCompileError(
                "included %r is not an xsl:stylesheet" % href
            )
        # merge namespaces declared on the included root
        for prefix, uri in self._scope_namespaces(root).items():
            self.stylesheet.namespaces.setdefault(prefix, uri)
        for child in root.children:
            if (
                child.kind == NodeKind.ELEMENT
                and child.name.uri == XSL_NS
                and child.name.local == "import"
            ):
                raise XsltCompileError(
                    "xsl:import inside an included stylesheet is not"
                    " supported"
                )
        self._include_stack.append(href)
        try:
            self._compile_top_level(root)
        finally:
            self._include_stack.pop()

    def _top_unsupported(self, element):
        raise XsltCompileError(
            "xsl:%s is not supported by this processor" % element.name.local
        )

    def _top_ignored(self, element):
        return None

    _TOP_LEVEL = {
        "template": _top_template,
        "variable": _top_variable,
        "param": _top_param,
        "output": _top_output,
        "key": _top_key,
        "strip-space": _top_strip_space,
        "preserve-space": _top_preserve_space,
        "include": _top_include,
        "attribute-set": _top_unsupported,
        "decimal-format": _top_ignored,
        "namespace-alias": _top_unsupported,
    }

    # -- bodies -----------------------------------------------------------------

    def _split_leading_params(self, element):
        """Split <xsl:param> children (which must lead) from the body."""
        params = []
        body_nodes = []
        in_params = True
        for child in element.children:
            is_param = (
                child.kind == NodeKind.ELEMENT
                and child.name.uri == XSL_NS
                and child.name.local == "param"
            )
            if is_param:
                if not in_params:
                    raise XsltCompileError(
                        "xsl:param must precede other template content"
                    )
                params.append(self._compile_binding(child, instr.ParamInstr))
            else:
                if child.kind == NodeKind.ELEMENT or (
                    child.kind == NodeKind.TEXT and child.value.strip()
                ):
                    in_params = False
                body_nodes.append(child)
        return params, body_nodes

    def compile_body(self, element):
        return self.compile_body_nodes(element.children)

    def compile_body_nodes(self, nodes):
        compiled = []
        for node in nodes:
            instruction = self._compile_node(node)
            if instruction is not None:
                compiled.append(instruction)
        return compiled

    def _compile_node(self, node):
        kind = node.kind
        if kind == NodeKind.TEXT:
            if not node.value.strip():
                return None  # whitespace-only text in the stylesheet
            return self._stamp(instr.TextInstr(node.value))
        if kind != NodeKind.ELEMENT:
            return None  # stylesheet comments and PIs are dropped
        if node.name.uri == XSL_NS:
            handler = self._INSTRUCTIONS.get(node.name.local)
            if handler is None:
                raise XsltCompileError(
                    "unsupported instruction xsl:%s" % node.name.local
                )
            return self._stamp(handler(self, node))
        return self._stamp(self._compile_literal_element(node))

    def _stamp(self, instruction):
        instruction.site_id = next(self._site_counter)
        self.stylesheet.instruction_count += 1
        return instruction

    def _compile_literal_element(self, element):
        attributes = []
        for attribute in element.attributes:
            if attribute.name.uri == XSL_NS:
                continue  # xsl:use-attribute-sets etc. are not supported
            attributes.append(
                (
                    QName(
                        attribute.name.local,
                        attribute.name.uri,
                        attribute.name.prefix,
                    ),
                    compile_avt(attribute.value),
                )
            )
        namespaces = {
            prefix: uri
            for prefix, uri in element.namespaces.items()
            if uri != XSL_NS
        }
        name = QName(element.name.local, element.name.uri, element.name.prefix)
        return instr.LiteralElementInstr(
            name, attributes, namespaces, self.compile_body(element)
        )

    # -- instruction handlers ------------------------------------------------------

    def _i_apply_templates(self, element):
        select_text = element.get_attribute("select")
        select = compile_xpath(select_text) if select_text is not None else None
        mode = element.get_attribute("mode")
        sorts, with_params = self._sorts_and_params(element)
        return instr.ApplyTemplatesInstr(select, mode, sorts, with_params)

    def _i_call_template(self, element):
        name = self._require(element, "name")
        _, with_params = self._sorts_and_params(element)
        return instr.CallTemplateInstr(name, with_params)

    def _i_value_of(self, element):
        return instr.ValueOfInstr(compile_xpath(self._require(element, "select")))

    def _i_for_each(self, element):
        select = compile_xpath(self._require(element, "select"))
        sorts = []
        body_nodes = []
        for child in element.children:
            if (
                child.kind == NodeKind.ELEMENT
                and child.name.uri == XSL_NS
                and child.name.local == "sort"
            ):
                sorts.append(self._compile_sort(child))
            else:
                body_nodes.append(child)
        return instr.ForEachInstr(select, sorts, self.compile_body_nodes(body_nodes))

    def _i_if(self, element):
        test = compile_xpath(self._require(element, "test"))
        return instr.IfInstr(test, self.compile_body(element))

    def _i_choose(self, element):
        whens = []
        otherwise = []
        for child in element.children:
            if child.kind == NodeKind.TEXT and not child.value.strip():
                continue
            if child.kind != NodeKind.ELEMENT or child.name.uri != XSL_NS:
                raise XsltCompileError("xsl:choose allows only when/otherwise")
            if child.name.local == "when":
                test = compile_xpath(self._require(child, "test"))
                whens.append((test, self.compile_body(child)))
            elif child.name.local == "otherwise":
                otherwise = self.compile_body(child)
            else:
                raise XsltCompileError(
                    "unexpected xsl:%s inside xsl:choose" % child.name.local
                )
        if not whens:
            raise XsltCompileError("xsl:choose requires at least one xsl:when")
        return instr.ChooseInstr(whens, otherwise)

    def _i_text(self, element):
        value = "".join(
            child.value
            for child in element.children
            if child.kind == NodeKind.TEXT
        )
        return instr.TextInstr(value)

    def _i_variable(self, element):
        return self._compile_binding(element, instr.VariableInstr)

    def _i_param(self, element):
        raise XsltCompileError("xsl:param must precede other template content")

    def _i_copy(self, element):
        return instr.CopyInstr(self.compile_body(element))

    def _i_copy_of(self, element):
        return instr.CopyOfInstr(compile_xpath(self._require(element, "select")))

    def _i_element(self, element):
        name_avt = compile_avt(self._require(element, "name"))
        return instr.ElementInstr(name_avt, self.compile_body(element))

    def _i_attribute(self, element):
        name_avt = compile_avt(self._require(element, "name"))
        return instr.AttributeInstr(name_avt, self.compile_body(element))

    def _i_comment(self, element):
        return instr.CommentInstr(self.compile_body(element))

    def _i_pi(self, element):
        name_avt = compile_avt(self._require(element, "name"))
        return instr.PiInstr(name_avt, self.compile_body(element))

    def _i_number(self, element):
        level = element.get_attribute("level", default="single")
        if level not in ("single", "any"):
            raise XsltCompileError("unsupported xsl:number level %r" % level)
        count_text = element.get_attribute("count")
        from_text = element.get_attribute("from")
        value_text = element.get_attribute("value")
        format_text = element.get_attribute("format")
        return instr.NumberInstr(
            level=level,
            count=compile_pattern(count_text) if count_text else None,
            from_=compile_pattern(from_text) if from_text else None,
            value=compile_xpath(value_text) if value_text else None,
            format_avt=compile_avt(format_text) if format_text else None,
        )

    def _i_message(self, element):
        terminate = element.get_attribute("terminate") == "yes"
        return instr.MessageInstr(self.compile_body(element), terminate)

    def _i_apply_imports(self, element):
        return instr.ApplyImportsInstr()

    def _i_fallback(self, element):
        return instr.FallbackInstr(self.compile_body(element))

    def _i_sort_misplaced(self, element):
        raise XsltCompileError(
            "xsl:sort only allowed in apply-templates/for-each"
        )

    _INSTRUCTIONS = {
        "apply-templates": _i_apply_templates,
        "call-template": _i_call_template,
        "value-of": _i_value_of,
        "for-each": _i_for_each,
        "if": _i_if,
        "choose": _i_choose,
        "text": _i_text,
        "variable": _i_variable,
        "param": _i_param,
        "copy": _i_copy,
        "copy-of": _i_copy_of,
        "element": _i_element,
        "attribute": _i_attribute,
        "comment": _i_comment,
        "processing-instruction": _i_pi,
        "number": _i_number,
        "message": _i_message,
        "apply-imports": _i_apply_imports,
        "sort": _i_sort_misplaced,
        "fallback": _i_fallback,
    }

    # -- shared helpers --------------------------------------------------------------

    def _sorts_and_params(self, element):
        sorts = []
        with_params = []
        for child in element.children:
            if child.kind == NodeKind.TEXT and not child.value.strip():
                continue
            if child.kind != NodeKind.ELEMENT or child.name.uri != XSL_NS:
                raise XsltCompileError(
                    "only xsl:sort/xsl:with-param allowed here"
                )
            if child.name.local == "sort":
                sorts.append(self._compile_sort(child))
            elif child.name.local == "with-param":
                with_params.append(self._compile_with_param(child))
            else:
                raise XsltCompileError(
                    "unexpected xsl:%s child" % child.name.local
                )
        return sorts, with_params

    def _compile_sort(self, element):
        select_text = element.get_attribute("select", default=".")
        data_type = element.get_attribute("data-type", default="text")
        order = element.get_attribute("order", default="ascending")
        if data_type not in ("text", "number"):
            raise XsltCompileError("unsupported sort data-type %r" % data_type)
        if order not in ("ascending", "descending"):
            raise XsltCompileError("unsupported sort order %r" % order)
        return instr.SortSpec(compile_xpath(select_text), data_type, order)

    def _compile_with_param(self, element):
        name = self._require(element, "name")
        select_text = element.get_attribute("select")
        if select_text is not None:
            return instr.WithParam(name, select=compile_xpath(select_text))
        return instr.WithParam(name, body=self.compile_body(element))

    def _compile_binding(self, element, cls):
        name = self._require(element, "name")
        select_text = element.get_attribute("select")
        if select_text is not None:
            binding = cls(name, select=compile_xpath(select_text))
        else:
            binding = cls(name, body=self.compile_body(element))
        return self._stamp(binding)

    def _require(self, element, attribute):
        value = element.get_attribute(attribute)
        if value is None:
            raise XsltCompileError(
                "xsl:%s requires %s=" % (element.name.local, attribute)
            )
        return value

    @staticmethod
    def _scope_namespaces(root):
        namespaces = {
            prefix: uri
            for prefix, uri in root.namespaces.items()
            if uri != XSL_NS and prefix
        }
        return namespaces
