"""Compiled XSLT instruction tree — the VM's "bytecode".

Every instruction implements ``execute(vm, context, output)`` where ``vm``
is the :class:`~repro.xslt.vm.XsltVM`, ``context`` an
:class:`~repro.xpath.context.XPathContext` and ``output`` a
:class:`~repro.xmlmodel.builder.TreeBuilder`.

Each instruction carries a ``site_id`` (assigned by the compiler), which is
how the partial evaluator's trace-table keys ``apply-templates`` and
``call-template`` sites (paper §4.3), and how the XQuery generator maps
instructions back to stylesheet constructs.
"""

from __future__ import annotations

from repro.errors import XsltRuntimeError
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import NodeKind, QName
from repro.xpath.datamodel import to_boolean, to_node_set, to_number, to_string


class Instruction:
    """Base class; ``site_id`` is stamped by the compiler."""

    site_id = -1

    def execute(self, vm, context, output):
        raise NotImplementedError

    def child_bodies(self):
        """Nested instruction lists, for generic tree walks."""
        return ()

    def iter_tree(self):
        yield self
        for body in self.child_bodies():
            for instruction in body:
                for nested in instruction.iter_tree():
                    yield nested


class SortSpec:
    """One ``<xsl:sort>`` specification."""

    __slots__ = ("select", "data_type", "order")

    def __init__(self, select, data_type="text", order="ascending"):
        self.select = select
        self.data_type = data_type
        self.order = order


class WithParam:
    """One ``<xsl:with-param>``: a name plus a select expr or a body."""

    __slots__ = ("name", "select", "body")

    def __init__(self, name, select=None, body=None):
        self.name = name
        self.select = select
        self.body = body or []

    def value(self, vm, context):
        if self.select is not None:
            return self.select.evaluate(context)
        return vm.build_fragment(self.body, context)


class TextInstr(Instruction):
    """Literal character data (from literal text or ``<xsl:text>``)."""

    def __init__(self, value):
        self.value = value

    def execute(self, vm, context, output):
        output.text(self.value)


class LiteralElementInstr(Instruction):
    """A literal result element with AVT attributes."""

    def __init__(self, name, attributes, namespaces, body):
        self.name = name                  # QName
        self.attributes = attributes      # list of (QName, Avt)
        self.namespaces = namespaces      # prefix -> uri to re-declare
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        output.start_element(self.name, namespaces=self.namespaces)
        for attr_name, avt in self.attributes:
            output.attribute(attr_name, avt.evaluate(context))
        vm.execute_body(self.body, context, output)
        output.end_element()


class ValueOfInstr(Instruction):
    """``<xsl:value-of select=...>``."""

    def __init__(self, select):
        self.select = select

    def execute(self, vm, context, output):
        output.text(to_string(self.select.evaluate(context)))


class ApplyTemplatesInstr(Instruction):
    """``<xsl:apply-templates>`` — the dynamic dispatch site."""

    def __init__(self, select=None, mode=None, sorts=None, with_params=None):
        self.select = select
        self.mode = mode
        self.sorts = sorts or []
        self.with_params = with_params or []

    def execute(self, vm, context, output):
        if self.select is not None:
            value = vm.eval_select(self.select, context)
            nodes = to_node_set(value, "apply-templates select")
        else:
            nodes = list(context.node.children)
        if self.sorts:
            nodes = vm.sort_nodes(nodes, self.sorts, context)
        params = {
            with_param.name: with_param.value(vm, context)
            for with_param in self.with_params
        }
        vm.apply_templates(nodes, self.mode, params, context, output, site=self)


class CallTemplateInstr(Instruction):
    """``<xsl:call-template name=...>``."""

    def __init__(self, name, with_params=None):
        self.name = name
        self.with_params = with_params or []

    def execute(self, vm, context, output):
        params = {
            with_param.name: with_param.value(vm, context)
            for with_param in self.with_params
        }
        vm.call_template(self.name, params, context, output, site=self)


class ForEachInstr(Instruction):
    """``<xsl:for-each select=...>``."""

    def __init__(self, select, sorts=None, body=None):
        self.select = select
        self.sorts = sorts or []
        self.body = body or []

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        nodes = to_node_set(
            vm.eval_select(self.select, context), "for-each select"
        )
        if self.sorts:
            nodes = vm.sort_nodes(nodes, self.sorts, context)
        size = len(nodes)
        for position, node in enumerate(nodes, start=1):
            sub = context.with_node(node, position=position, size=size)
            sub.current = node
            vm.execute_body(self.body, sub, output)


class IfInstr(Instruction):
    """``<xsl:if test=...>``."""

    def __init__(self, test, body):
        self.test = test
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        if vm.explore:
            # Partial evaluation explores every branch: the test depends on
            # content values the sample document does not carry.
            vm.execute_body(self.body, context, output)
            return
        if to_boolean(self.test.evaluate(context)):
            vm.execute_body(self.body, context, output)


class ChooseInstr(Instruction):
    """``<xsl:choose>`` with ``when`` branches and optional ``otherwise``."""

    def __init__(self, whens, otherwise):
        self.whens = whens            # list of (test expr, body)
        self.otherwise = otherwise    # body or []

    def child_bodies(self):
        return tuple(body for _, body in self.whens) + (self.otherwise,)

    def execute(self, vm, context, output):
        if vm.explore:
            for _, body in self.whens:
                vm.execute_body(body, context, output)
            vm.execute_body(self.otherwise, context, output)
            return
        for test, body in self.whens:
            if to_boolean(test.evaluate(context)):
                vm.execute_body(body, context, output)
                return
        vm.execute_body(self.otherwise, context, output)


class VariableInstr(Instruction):
    """``<xsl:variable>`` — handled specially by the body executor, which
    threads the new binding into subsequent siblings."""

    def __init__(self, name, select=None, body=None):
        self.name = name
        self.select = select
        self.body = body or []

    def child_bodies(self):
        return (self.body,)

    def compute(self, vm, context):
        if self.select is not None:
            return self.select.evaluate(context)
        return vm.build_fragment(self.body, context)

    def execute(self, vm, context, output):  # pragma: no cover - see executor
        raise XsltRuntimeError("xsl:variable must be handled by the executor")


class ParamInstr(VariableInstr):
    """``<xsl:param>`` — like a variable, but the caller may override."""


class CopyInstr(Instruction):
    """``<xsl:copy>`` — shallow copy of the context node."""

    def __init__(self, body):
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        node = context.node
        kind = node.kind
        if kind == NodeKind.ELEMENT:
            output.start_element(
                QName(node.name.local, node.name.uri, node.name.prefix),
                namespaces=dict(node.namespaces),
            )
            vm.execute_body(self.body, context, output)
            output.end_element()
        elif kind == NodeKind.DOCUMENT:
            vm.execute_body(self.body, context, output)
        elif kind == NodeKind.TEXT:
            output.text(node.value)
        elif kind == NodeKind.ATTRIBUTE:
            output.attribute(
                QName(node.name.local, node.name.uri, node.name.prefix),
                node.value,
            )
        elif kind == NodeKind.COMMENT:
            output.comment(node.value)
        elif kind == NodeKind.PI:
            output.processing_instruction(node.target, node.value)


class CopyOfInstr(Instruction):
    """``<xsl:copy-of select=...>`` — deep copy of the selected value."""

    def __init__(self, select):
        self.select = select

    def execute(self, vm, context, output):
        value = self.select.evaluate(context)
        vm.copy_value(value, output)


class ElementInstr(Instruction):
    """``<xsl:element name={...}>``."""

    def __init__(self, name_avt, body):
        self.name_avt = name_avt
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        name = self.name_avt.evaluate(context)
        output.start_element(QName(name))
        vm.execute_body(self.body, context, output)
        output.end_element()


class AttributeInstr(Instruction):
    """``<xsl:attribute name={...}>``."""

    def __init__(self, name_avt, body):
        self.name_avt = name_avt
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        name = self.name_avt.evaluate(context)
        value = vm.body_to_string(self.body, context)
        output.attribute(QName(name), value)


class CommentInstr(Instruction):
    """``<xsl:comment>``."""

    def __init__(self, body):
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        output.comment(vm.body_to_string(self.body, context))


class PiInstr(Instruction):
    """``<xsl:processing-instruction name={...}>``."""

    def __init__(self, name_avt, body):
        self.name_avt = name_avt
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        target = self.name_avt.evaluate(context)
        output.processing_instruction(target, vm.body_to_string(self.body, context))


class ApplyImportsInstr(Instruction):
    """``<xsl:apply-imports/>`` — re-match the current node using only
    rules of lower import precedence than the current template's."""

    def execute(self, vm, context, output):
        vm.apply_imports(context, output, site=self)


class FallbackInstr(Instruction):
    """``<xsl:fallback>`` — inert in a plain XSLT 1.0 processor (its body
    only runs inside an unsupported extension element, which this
    processor rejects at compile time anyway)."""

    def __init__(self, body):
        self.body = body

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        return None


class NumberInstr(Instruction):
    """``<xsl:number>`` — level="single"/"any", formats 1 a A i I."""

    def __init__(self, level="single", count=None, from_=None, value=None,
                 format_avt=None):
        self.level = level
        self.count = count        # Pattern or None (defaults to node's name)
        self.from_ = from_        # Pattern or None
        self.value = value        # Expr or None
        self.format_avt = format_avt

    def execute(self, vm, context, output):
        if self.value is not None:
            number = int(to_number(self.value.evaluate(context)))
        else:
            number = vm.count_number(
                context.node, self.level, self.count, self.from_, context
            )
        format_spec = (
            self.format_avt.evaluate(context) if self.format_avt else "1"
        )
        output.text(format_number_token(number, format_spec))


def format_number_token(number, format_spec):
    """Format one number per the xsl:number format tokens 1/a/A/i/I."""
    token = format_spec or "1"
    suffix = ""
    if len(token) > 1 and token[-1] in ".)]":
        token, suffix = token[:-1], token[-1]
    if token == "a":
        return _alphabetic(number).lower() + suffix
    if token == "A":
        return _alphabetic(number) + suffix
    if token == "i":
        return _roman(number).lower() + suffix
    if token == "I":
        return _roman(number) + suffix
    # '1', '01', ... zero padding to the token's width
    return str(number).zfill(len(token)) + suffix


def _alphabetic(number):
    out = []
    while number > 0:
        number, remainder = divmod(number - 1, 26)
        out.append(chr(ord("A") + remainder))
    return "".join(reversed(out)) or "A"


_ROMAN = [
    (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"), (100, "C"),
    (90, "XC"), (50, "L"), (40, "XL"), (10, "X"), (9, "IX"),
    (5, "V"), (4, "IV"), (1, "I"),
]


def _roman(number):
    if number <= 0:
        return str(number)
    out = []
    for value, glyph in _ROMAN:
        while number >= value:
            out.append(glyph)
            number -= value
    return "".join(out)


class MessageInstr(Instruction):
    """``<xsl:message>`` — collected on the VM; may terminate."""

    def __init__(self, body, terminate=False):
        self.body = body
        self.terminate = terminate

    def child_bodies(self):
        return (self.body,)

    def execute(self, vm, context, output):
        message = vm.body_to_string(self.body, context)
        vm.messages.append(message)
        if self.terminate:
            raise XsltRuntimeError("xsl:message terminate: %s" % message)
