"""The XSLT virtual machine.

Executes a compiled :class:`~repro.xslt.stylesheet.Stylesheet` against a
source document: template rule matching with XSLT 1.0 conflict resolution,
built-in template rules, parameters, result tree fragments, keys, sorting
and ``xsl:number`` counting.  A :class:`~repro.xslt.trace.TraceRecorder`
can be attached to observe every dispatch — the hook partial evaluation
builds on.
"""

from __future__ import annotations

import sys

from repro.errors import XsltRuntimeError
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import Document, Node, NodeKind
from repro.xpath.context import XPathContext
from repro.xpath.datamodel import to_number, to_string
from repro.xslt import trace as trace_mod
from repro.xslt.instructions import ParamInstr, VariableInstr

_MAX_TEMPLATE_DEPTH = 500

# Each template instantiation costs ~10 Python frames; make sure our own
# depth guard (_MAX_TEMPLATE_DEPTH, a clean XsltRuntimeError) trips before
# the interpreter's RecursionError would.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 100_000))


class XsltVM:
    """One VM instance per transformation run.

    The three partial-evaluation hooks (paper §4.3) are:

    * ``select_rewriter`` — applied to every ``select``/``test`` expression
      before evaluation (the partial evaluator strips value predicates so
      dispatch is driven by structure only);
    * ``pattern_rewriter`` — applied to match-pattern alternatives before
      matching (predicates assumed true);
    * ``explore`` — when True the VM executes *every* conditional branch
      and instantiates *every* candidate template at each dispatch, so the
      trace covers everything that could fire on any conforming document.
    """

    def __init__(self, stylesheet, trace=None, select_rewriter=None,
                 pattern_rewriter=None, explore=False):
        self.stylesheet = stylesheet
        self.trace = trace
        self.select_rewriter = select_rewriter
        self.pattern_rewriter = pattern_rewriter
        self.explore = explore
        self.messages = []
        #: observability counters, read by the obs layer / TransformResult
        self.instructions_executed = 0
        self.templates_dispatched = 0
        self._key_indexes = {}
        self._template_stack = []
        # (template, mode) of the current template *rule*, for apply-imports
        self._rule_stack = []
        self._explore_stack = []
        self._depth = 0
        self._functions = self._build_function_table()

    # -- entry point ------------------------------------------------------------

    def transform_document(self, document, params=None):
        """Run the stylesheet; returns the result tree :class:`Document`."""
        if self.stylesheet.strip_space_names:
            document = strip_space(document, self.stylesheet.strip_space_names,
                                   self.stylesheet.preserve_space_names)
        output = TreeBuilder()
        context = XPathContext(
            document,
            variables={},
            namespaces=self.stylesheet.namespaces,
            functions=self._functions,
        )
        context.variables.update(self._resolve_globals(context, params or {}))
        self.apply_templates([document], None, {}, context, output, site=None)
        return output.finish()

    # -- template dispatch ---------------------------------------------------------

    def apply_templates(self, nodes, mode, params, context, output, site):
        caller = self._template_stack[-1] if self._template_stack else None
        size = len(nodes)
        for position, node in enumerate(nodes, start=1):
            sub = context.with_node(node, position=position, size=size)
            sub.current = node
            if self.explore:
                self._apply_exploring(node, mode, params, sub, output, site,
                                      caller, context)
                continue
            rule = self.find_rule(node, mode, sub)
            resolved = rule.template if rule else _builtin_kind(node)
            if self.trace is not None:
                self.trace.record_apply(
                    site, caller, context.node, node, resolved, mode
                )
            if rule is not None:
                self._instantiate(rule.template, params, sub, output, site,
                                  mode=mode)
            else:
                self._builtin(node, mode, sub, output, site)

    def _apply_exploring(self, node, mode, params, sub, output, site, caller,
                         context):
        """Explore-mode dispatch: instantiate every candidate template (and
        the built-in rule when all candidates are conditional)."""
        candidates = self.find_candidate_rules(node, mode, sub)
        for rule in candidates:
            if self.trace is not None:
                self.trace.record_apply(
                    site, caller, context.node, node, rule.template, mode
                )
            self._instantiate(rule.template, params, sub, output, site)
        if not candidates or all(
            _rule_is_conditional(rule) for rule in candidates
        ):
            if self.trace is not None:
                self.trace.record_apply(
                    site, caller, context.node, node, _builtin_kind(node), mode
                )
            self._builtin(node, mode, sub, output, site)

    def find_rule(self, node, mode, context):
        """Best matching rule for ``node`` in ``mode`` (or None)."""
        for rule in self.stylesheet.rules_for_mode(mode):
            if self._pattern(rule).matches(node, context):
                return rule
        return None

    def find_candidate_rules(self, node, mode, context):
        """All rules that could match ``node`` with predicates assumed true,
        best-first, cut after the first unconditional rule (later rules can
        never fire)."""
        candidates = []
        for rule in self.stylesheet.rules_for_mode(mode):
            if self._pattern(rule).matches(node, context):
                candidates.append(rule)
                if not _rule_is_conditional(rule):
                    break
        return candidates

    def _pattern(self, rule):
        if self.pattern_rewriter is not None:
            return self.pattern_rewriter(rule.pattern)
        return rule.pattern

    def eval_select(self, select, context):
        """Evaluate a select/test expression through the rewriter hook."""
        if self.select_rewriter is not None:
            select = self.select_rewriter(select)
        return select.evaluate(context)

    def apply_imports(self, context, output, site=None):
        """xsl:apply-imports: match with rules of strictly lower import
        precedence than the current template rule, in its mode."""
        if not self._rule_stack:
            raise XsltRuntimeError(
                "xsl:apply-imports outside any template rule"
            )
        current_template, mode = self._rule_stack[-1]
        for rule in self.stylesheet.rules_for_mode(mode):
            if rule.precedence >= current_template.precedence:
                continue
            if self._pattern(rule).matches(context.node, context):
                if self.trace is not None:
                    self.trace.record_apply(
                        site, current_template, context.node, context.node,
                        rule.template, mode,
                    )
                self._instantiate(rule.template, {}, context, output, site,
                                  mode=mode)
                return
        self._builtin(context.node, mode, context, output, site)

    def call_template(self, name, params, context, output, site):
        template = self.stylesheet.named_templates.get(name)
        if template is None:
            raise XsltRuntimeError("no template named %r" % name)
        caller = self._template_stack[-1] if self._template_stack else None
        if self.trace is not None:
            self.trace.record_call(site, caller, context.node, template)
        self._instantiate(template, params, context, output, site)

    def _instantiate(self, template, params, context, output, site,
                     mode=None):
        if self.explore:
            # Partial evaluation: a template re-entered on the same sample
            # node is a recursion — record it (the trace already holds the
            # edge) but do not re-execute, so exploration terminates.  The
            # execution graph becomes cyclic and forces non-inline mode.
            marker = (id(template), id(context.node))
            if marker in self._explore_stack:
                return
            self._explore_stack.append(marker)
            try:
                self._instantiate_inner(template, params, context, output,
                                        site, mode)
            finally:
                self._explore_stack.pop()
            return
        self._instantiate_inner(template, params, context, output, site, mode)

    def _instantiate_inner(self, template, params, context, output, site,
                           mode=None):
        if self._depth >= _MAX_TEMPLATE_DEPTH:
            raise XsltRuntimeError(
                "template nesting exceeded %d (possible infinite recursion"
                " in %s)" % (_MAX_TEMPLATE_DEPTH, template.label())
            )
        self.templates_dispatched += 1
        if self.trace is not None:
            caller = self._template_stack[-1] if self._template_stack else None
            self.trace.record_instantiation(template, context.node, site, caller)
        bound = {}
        for param in template.params:
            if param.name in params:
                bound[param.name] = params[param.name]
            else:
                bound[param.name] = param.compute(self, context)
        body_context = context.with_variables(bound) if bound else context
        self._template_stack.append(template)
        self._rule_stack.append((template, mode))
        self._depth += 1
        try:
            self.execute_body(template.body, body_context, output)
        finally:
            self._depth -= 1
            self._rule_stack.pop()
            self._template_stack.pop()

    def _builtin(self, node, mode, context, output, site):
        kind = node.kind
        self.templates_dispatched += 1
        if self.trace is not None:
            self.trace.record_instantiation(
                _builtin_kind(node), node, site,
                self._template_stack[-1] if self._template_stack else None,
            )
        if kind in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
            self.apply_templates(
                list(node.children), mode, {}, context, output, site=None
            )
        elif kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
            output.text(node.string_value())
        # comments and PIs: no output

    # -- body execution --------------------------------------------------------------

    def execute_body(self, body, context, output):
        """Execute instructions; xsl:variable threads new bindings forward."""
        for instruction in body:
            self.instructions_executed += 1
            if isinstance(instruction, VariableInstr):
                # Covers ParamInstr in bodies too (treated as variable).
                value = instruction.compute(self, context)
                context = context.with_variables({instruction.name: value})
            else:
                instruction.execute(self, context, output)

    def build_fragment(self, body, context):
        """Execute a body into a fresh result tree fragment (a Document)."""
        builder = TreeBuilder()
        self.execute_body(body, context, builder)
        return builder.finish()

    def body_to_string(self, body, context):
        return self.build_fragment(body, context).string_value()

    def copy_value(self, value, output):
        """xsl:copy-of semantics for any XPath value."""
        if isinstance(value, Node):
            output.copy_node(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    output.copy_node(item)
                else:
                    output.text(to_string(item))
        else:
            output.text(to_string(value))

    # -- sorting -----------------------------------------------------------------------

    def sort_nodes(self, nodes, sorts, context):
        """Apply xsl:sort specs (stable, last spec applied first)."""
        ordered = list(nodes)
        size = len(ordered)
        # Precompute key values in the *unsorted* context, as the spec asks.
        key_rows = {}
        for position, node in enumerate(ordered, start=1):
            sub = context.with_node(node, position=position, size=size)
            key_rows[id(node)] = [
                self._sort_key(spec, sub) for spec in sorts
            ]
        for index in range(len(sorts) - 1, -1, -1):
            spec = sorts[index]
            ordered.sort(
                key=lambda node: key_rows[id(node)][index],
                reverse=(spec.order == "descending"),
            )
        return ordered

    @staticmethod
    def _sort_key(spec, context):
        value = spec.select.evaluate(context)
        if spec.data_type == "number":
            number = to_number(value)
            # NaN sorts before any number.
            return (0 if number != number else 1, 0.0 if number != number else number)
        return (1, to_string(value))

    # -- xsl:number ---------------------------------------------------------------------

    def count_number(self, node, level, count_pattern, from_pattern, context):
        def matches(candidate):
            if count_pattern is not None:
                return count_pattern.matches(
                    candidate, context.with_node(candidate)
                )
            return (
                candidate.kind == node.kind
                and candidate.name == node.name
            )

        if level == "single":
            target = node
            while target is not None and not matches(target):
                target = target.parent
            if target is None:
                return 0
            count = 1
            for sibling in target.preceding_siblings():
                if matches(sibling):
                    count += 1
            return count

        # level="any": count matching nodes up to and including this one,
        # restarting after the closest preceding 'from' match.
        count = 0
        root = node.root()
        for candidate in root.iter_subtree():
            if from_pattern is not None and from_pattern.matches(
                candidate, context.with_node(candidate)
            ):
                count = 0
            if matches(candidate):
                count += 1
            if candidate is node:
                break
        return count

    # -- globals --------------------------------------------------------------------------

    def _resolve_globals(self, context, params):
        """Evaluate top-level variables/params; forward references are
        resolved by fixed-point iteration."""
        pending = list(self.stylesheet.global_bindings)
        resolved = {}
        while pending:
            progressed = False
            errors = {}
            for binding in list(pending):
                if isinstance(binding, ParamInstr) and binding.name in params:
                    resolved[binding.name] = params[binding.name]
                    pending.remove(binding)
                    progressed = True
                    continue
                try:
                    value = binding.compute(
                        self, context.with_variables(resolved)
                    )
                except Exception as exc:  # retry once dependencies resolve
                    errors[binding.name] = exc
                    continue
                resolved[binding.name] = value
                pending.remove(binding)
                progressed = True
            if not progressed:
                name, exc = next(iter(errors.items()))
                raise XsltRuntimeError(
                    "cannot resolve global binding $%s: %s" % (name, exc)
                )
        return resolved

    # -- XSLT function library ------------------------------------------------------------

    def _build_function_table(self):
        vm = self

        def fn_current(context):
            return [context.current]

        def fn_key(context, name, value):
            name = to_string(name)
            key = vm.stylesheet.keys.get(name)
            if key is None:
                raise XsltRuntimeError("no xsl:key named %r" % name)
            index = vm._key_index(name, key, context)
            if isinstance(value, list) and value and isinstance(value[0], Node):
                wanted = [node.string_value() for node in value]
            else:
                wanted = [to_string(value)]
            found = []
            for want in wanted:
                found.extend(index.get(want, ()))
            from repro.xpath.datamodel import sort_document_order

            return sort_document_order(found)

        def fn_generate_id(context, value=None):
            if value is None:
                node = context.node
            else:
                if not isinstance(value, list):
                    raise XsltRuntimeError("generate-id() expects a node-set")
                if not value:
                    return ""
                node = value[0]
            # Stable across repeated materialisations of the same stored
            # document: document order is deterministic, object ids are not.
            return "id%d" % node.order

        def fn_system_property(context, name):
            name = to_string(name)
            properties = {
                "xsl:version": "1.0",
                "xsl:vendor": "repro-xsltvm",
                "xsl:vendor-url": "https://example.invalid/repro",
            }
            return properties.get(name, "")

        def fn_format_number(context, number, picture, fmt=None):
            return format_decimal(to_number(number), to_string(picture))

        def fn_document(context, *args):
            raise XsltRuntimeError("document() is not supported")

        def fn_unparsed_entity_uri(context, name):
            return ""

        def fn_element_available(context, name):
            from repro.xslt.stylesheet import _Compiler

            local = to_string(name).split(":")[-1]
            return local in _Compiler._INSTRUCTIONS

        def fn_function_available(context, name):
            from repro.xpath.functions import CORE_FUNCTIONS

            local = to_string(name)
            if local.startswith("fn:"):
                local = local[3:]
            return local in CORE_FUNCTIONS or local in vm._functions

        return {
            "current": (0, 0, fn_current),
            "key": (2, 2, fn_key),
            "generate-id": (0, 1, fn_generate_id),
            "system-property": (1, 1, fn_system_property),
            "format-number": (2, 3, fn_format_number),
            "document": (1, 2, fn_document),
            "unparsed-entity-uri": (1, 1, fn_unparsed_entity_uri),
            "element-available": (1, 1, fn_element_available),
            "function-available": (1, 1, fn_function_available),
        }

    def _key_index(self, name, key, context):
        # Keyed by key *name*, holding the document root alongside the
        # index: a live reference keeps the root's id from being reused
        # after GC (which would alias indexes across documents), and
        # moving to the next document simply replaces the entry — the
        # index is evicted together with the document it describes.
        root = context.node.root()
        cached = self._key_indexes.get(name)
        if cached is not None and cached[0] is root:
            return cached[1]
        index = {}
        for node in root.iter_subtree():
            candidates = [node]
            if node.kind == NodeKind.ELEMENT:
                candidates.extend(node.attributes)
            for candidate in candidates:
                if key.match.matches(candidate, context.with_node(candidate)):
                    use_value = key.use.evaluate(context.with_node(candidate))
                    if isinstance(use_value, list):
                        values = [item.string_value() if isinstance(item, Node)
                                  else to_string(item) for item in use_value]
                    else:
                        values = [to_string(use_value)]
                    for value in values:
                        index.setdefault(value, []).append(candidate)
        self._key_indexes[name] = (root, index)
        return index


def _rule_is_conditional(rule):
    """True when any step of the rule's pattern carries predicates (the
    match can fail on real data even though structure matches)."""
    return any(step.predicates for step in rule.pattern.steps)


def _builtin_kind(node):
    kind = node.kind
    if kind in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
        return trace_mod.BUILTIN_RECURSE
    if kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
        return trace_mod.BUILTIN_TEXT
    return trace_mod.BUILTIN_SKIP


def strip_space(document, strip_names, preserve_names):
    """Return a copy of ``document`` with whitespace-only text children of
    the named elements removed ('*' strips everywhere)."""
    builder = TreeBuilder()

    def should_strip(element):
        name = element.name.local
        if name in preserve_names:
            return False
        return "*" in strip_names or name in strip_names

    def copy(node, stripping):
        kind = node.kind
        if kind == NodeKind.TEXT:
            if stripping and not node.value.strip():
                return
            builder.text(node.value)
        elif kind == NodeKind.ELEMENT:
            builder.start_element(node.name, namespaces=dict(node.namespaces))
            for attribute in node.attributes:
                builder.attribute(attribute.name, attribute.value)
            strip_children = should_strip(node)
            for child in node.children:
                copy(child, strip_children)
            builder.end_element()
        elif kind == NodeKind.COMMENT:
            builder.comment(node.value)
        elif kind == NodeKind.PI:
            builder.processing_instruction(node.target, node.value)

    for child in document.children:
        copy(child, False)
    return builder.finish()


def format_decimal(value, picture):
    """A pragmatic subset of format-number(): 0/#/,/. pictures."""
    if value != value:
        return "NaN"
    negative = value < 0
    value = abs(value)
    integer_picture, _, fraction_picture = picture.partition(".")
    fraction_digits = len(fraction_picture)
    required_fraction = fraction_picture.count("0")
    text = "%.*f" % (fraction_digits, value)
    integer_text, _, fraction_text = text.partition(".")
    minimum_integers = integer_picture.count("0")
    integer_text = integer_text.zfill(minimum_integers)
    if "," in integer_picture:
        grouped = []
        while len(integer_text) > 3:
            grouped.insert(0, integer_text[-3:])
            integer_text = integer_text[:-3]
        grouped.insert(0, integer_text)
        integer_text = ",".join(grouped)
    if fraction_digits:
        fraction_text = fraction_text.rstrip("0")
        while len(fraction_text) < required_fraction:
            fraction_text += "0"
        result = integer_text + ("." + fraction_text if fraction_text else "")
    else:
        result = integer_text
    return "-" + result if negative else result
