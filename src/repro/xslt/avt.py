"""Attribute value templates: ``"border-{$width}px"``.

An AVT is compiled into a list of parts, each either a literal string or a
compiled XPath expression; ``{{`` and ``}}`` escape literal braces.
"""

from __future__ import annotations

from repro.errors import XsltCompileError
from repro.xpath.datamodel import to_string
from repro.xpath.parser import compile_xpath


class Avt:
    """A compiled attribute value template."""

    __slots__ = ("parts", "source")

    def __init__(self, parts, source):
        self.parts = parts  # list of str (literal) or Expr (expression)
        self.source = source

    def evaluate(self, context):
        out = []
        for part in self.parts:
            if isinstance(part, str):
                out.append(part)
            else:
                out.append(to_string(part.evaluate(context)))
        return "".join(out)

    @property
    def is_constant(self):
        return all(isinstance(part, str) for part in self.parts)

    def constant_value(self):
        assert self.is_constant
        return "".join(self.parts)

    def __repr__(self):
        return "Avt(%r)" % self.source


def compile_avt(source):
    """Compile an attribute value template string."""
    parts = []
    literal = []
    pos = 0
    length = len(source)
    while pos < length:
        char = source[pos]
        if char == "{":
            if source.startswith("{{", pos):
                literal.append("{")
                pos += 2
                continue
            end = source.find("}", pos + 1)
            if end < 0:
                raise XsltCompileError(
                    "unterminated '{' in attribute value template %r" % source
                )
            if literal:
                parts.append("".join(literal))
                literal = []
            expression = source[pos + 1:end]
            if not expression.strip():
                raise XsltCompileError(
                    "empty expression in attribute value template %r" % source
                )
            parts.append(compile_xpath(expression))
            pos = end + 1
        elif char == "}":
            if source.startswith("}}", pos):
                literal.append("}")
                pos += 2
                continue
            raise XsltCompileError(
                "unescaped '}' in attribute value template %r" % source
            )
        else:
            literal.append(char)
            pos += 1
    if literal:
        parts.append("".join(literal))
    if not parts:
        parts.append("")
    return Avt(parts, source)
