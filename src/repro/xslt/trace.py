"""Trace instrumentation for the XSLT VM — the paper's "trace instructions".

During partial evaluation (§4.3) the stylesheet is executed over a sample
document with tracing enabled.  The recorder captures, per
``apply-templates``/``call-template`` site, which template was instantiated
for which context node — exactly the trace-table / trace-call-list the
paper describes.  The template execution graph is built from these events
by :mod:`repro.core.partial_eval`.
"""

from __future__ import annotations


# Sentinels for built-in template behaviour (no user template matched).
BUILTIN_RECURSE = "builtin-recurse"   # element/document: apply to children
BUILTIN_TEXT = "builtin-text"         # text/attribute: copy string value
BUILTIN_SKIP = "builtin-skip"         # comment/PI: no output


class ApplyEvent:
    """One node dispatched at one ``apply-templates`` site.

    ``site`` is the :class:`ApplyTemplatesInstr` (or ``None`` for the
    initial root dispatch); ``caller`` the template whose body contains the
    site (``None`` for root/built-in callers); ``resolved`` is the chosen
    :class:`~repro.xslt.stylesheet.Template` or one of the BUILTIN_*
    sentinels.
    """

    __slots__ = ("site", "caller", "context_node", "selected_node", "resolved",
                 "mode")

    def __init__(self, site, caller, context_node, selected_node, resolved,
                 mode):
        self.site = site
        self.caller = caller
        self.context_node = context_node
        self.selected_node = selected_node
        self.resolved = resolved
        self.mode = mode

    def __repr__(self):
        return "ApplyEvent(site=%s, node=%r, resolved=%r)" % (
            getattr(self.site, "site_id", None),
            self.selected_node,
            self.resolved,
        )


class CallEvent:
    """One ``call-template`` invocation."""

    __slots__ = ("site", "caller", "context_node", "template")

    def __init__(self, site, caller, context_node, template):
        self.site = site
        self.caller = caller
        self.context_node = context_node
        self.template = template


class InstantiationEvent:
    """One template activation (user template or built-in sentinel)."""

    __slots__ = ("template", "node", "site", "caller")

    def __init__(self, template, node, site, caller):
        self.template = template
        self.node = node
        self.site = site
        self.caller = caller


class TraceRecorder:
    """Collects VM events; consumed by the partial evaluator."""

    def __init__(self):
        self.apply_events = []
        self.call_events = []
        self.instantiations = []

    def record_apply(self, site, caller, context_node, selected_node, resolved,
                     mode):
        self.apply_events.append(
            ApplyEvent(site, caller, context_node, selected_node, resolved, mode)
        )

    def record_call(self, site, caller, context_node, template):
        self.call_events.append(CallEvent(site, caller, context_node, template))

    def record_instantiation(self, template, node, site, caller):
        self.instantiations.append(
            InstantiationEvent(template, node, site, caller)
        )

    def instantiated_templates(self):
        """The set of user templates that actually fired (paper §3.7)."""
        return {
            event.template
            for event in self.instantiations
            if not isinstance(event.template, str)
        }
