"""XSLT 1.0 processor: stylesheet compiler and virtual machine.

The paper's Oracle XSLTVM [13] compiles a stylesheet into bytecode and
executes it; partial evaluation (§4.3) instruments that VM with *trace
instructions*.  Here the stylesheet is compiled into an instruction tree
(:mod:`.instructions`) executed by :class:`~repro.xslt.vm.XsltVM`, which
accepts a :class:`~repro.xslt.trace.TraceRecorder` exposing exactly the
events partial evaluation needs: template instantiations per
``apply-templates``/``call-template`` site with their context nodes.

Public API:

* :func:`~repro.xslt.processor.transform` — one-shot transformation;
* :class:`~repro.xslt.stylesheet.Stylesheet` /
  :func:`~repro.xslt.stylesheet.compile_stylesheet` — the compiled form;
* :class:`~repro.xslt.vm.XsltVM` — the execution engine.
"""

from repro.xslt.stylesheet import Stylesheet, Template, compile_stylesheet
from repro.xslt.vm import XsltVM
from repro.xslt.trace import TraceRecorder
from repro.xslt.processor import transform, transform_to_string

__all__ = [
    "Stylesheet",
    "Template",
    "TraceRecorder",
    "XsltVM",
    "compile_stylesheet",
    "transform",
    "transform_to_string",
]
