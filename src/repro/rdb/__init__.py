"""An in-process relational engine with SQL/XML publishing functions.

This is the substrate the paper runs on: tables with typed columns, B-tree
indexes, an iterator-based executor (scan, index scan, filter, join,
aggregate, sort), correlated scalar subqueries, the SQL/XML generation
functions (``XMLElement``, ``XMLAttributes``, ``XMLForest``, ``XMLAgg``,
``XMLConcat``), relational and XMLType views, a rule-based planner that
turns indexable predicates into B-tree probes, and the two XMLType storage
models the evaluation uses (object-relational shredding and CLOB).

Execution is fully observable: every query run returns
:class:`~repro.rdb.plan.ExecutionStats` counting heap rows read, index
probes and output rows — the quantities behind the paper's Figure 2/3
claims.
"""

from repro.rdb.types import Column, FLOAT, INT, TEXT, XML, TableSchema
from repro.rdb.database import Database
from repro.rdb.plan import (
    Aggregate,
    ExecutionStats,
    Filter,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    PlanProfiler,
    Query,
    Scan,
    Sort,
    TopN,
    explain,
)
from repro.rdb.planner import DEFAULT_LEVEL, LEVELS
from repro.rdb.stats import StatisticsCatalog, TableStats
from repro.rdb import expressions as expr
from repro.rdb import sqlxml

__all__ = [
    "Aggregate",
    "Column",
    "DEFAULT_LEVEL",
    "Database",
    "ExecutionStats",
    "FLOAT",
    "Filter",
    "HashJoin",
    "INT",
    "IndexScan",
    "LEVELS",
    "Limit",
    "NestedLoopJoin",
    "PlanProfiler",
    "Query",
    "Scan",
    "Sort",
    "StatisticsCatalog",
    "TEXT",
    "TableSchema",
    "TableStats",
    "TopN",
    "XML",
    "expr",
    "explain",
    "sqlxml",
]
