"""Heap tables: row storage with stable row ids."""

from __future__ import annotations


class HeapTable:
    """Append-only row storage; row id is the list position."""

    def __init__(self, schema):
        self.schema = schema
        self.rows = []

    def __len__(self):
        return len(self.rows)

    def insert(self, values):
        """Insert one row (coerced to column types); returns its row id."""
        row = self.schema.coerce_row(values)
        self.rows.append(row)
        return len(self.rows) - 1

    def insert_many(self, value_rows):
        return [self.insert(values) for values in value_rows]

    def fetch(self, row_id):
        return self.rows[row_id]

    def scan(self):
        """Yield (row_id, row) pairs."""
        return enumerate(self.rows)

    def row_dict(self, row):
        """Row tuple → {column: value} mapping."""
        return dict(zip(self.schema.column_names(), row))
