"""XMLType storage models (paper §7.4 and the §5 experimental setup).

Two of the paper's storage models are implemented:

* **Object-relational** (:class:`ObjectRelationalStorage`): documents
  conforming to a structural schema are shredded into tables — one table
  per repeating element, leaf children as typed columns, parent/sequence
  columns preserving document order.  The storage can emit a canonical
  SQL/XML *reconstruction view* (exactly the paper's Table-3 shape), which
  is what the XSLT rewrite merges into; and it can *materialise* any stored
  document back into a DOM, which is what the functional no-rewrite path
  consumes.
* **CLOB** (:class:`ClobStorage`): documents stored as serialised text,
  parsed on access — no structure for the rewrite to exploit, included as
  the baseline storage model.
"""

from __future__ import annotations

import hashlib
import threading

from repro.errors import DatabaseError, SchemaError
from repro.rdb.expressions import (
    CaseWhen,
    Const,
    IsNull,
    ScalarSubquery,
    col,
    eq,
)
from repro.rdb.plan import Filter, Query, Scan
from repro.rdb.sqlxml import XMLAgg, XMLElement
from repro.rdb.types import FLOAT, INT, TEXT
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.labels import assign_labels
from repro.xmlmodel.nodes import Element, Text
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.stream_ingest import DEFAULT_CHUNK_SIZE, StreamParser

# Reserved bookkeeping column names; element names never collide with
# these (they are not valid XML names).
ROW_ID = "$id"
PARENT_ID = "$parent"
SEQ = "$seq"
VALUE = "value"
# Containment-label columns (paper §7.4 / structural joins): stamped on
# every shredded row so descendant-axis predicates can compare intervals
# instead of walking the reconstruction view.
START = "$start"
END = "$end"
LEVEL = "$level"


class TableBinding:
    """One shredded table: which element type it stores and how it links to
    its parent table."""

    __slots__ = ("table_name", "decl", "parent", "alias_counter")

    def __init__(self, table_name, decl, parent=None):
        self.table_name = table_name
        self.decl = decl
        self.parent = parent  # TableBinding or None (root: keyed by doc_id)


class ColumnBinding:
    """A leaf element (or attribute) stored as a column."""

    __slots__ = ("table", "column_name", "decl", "is_attribute", "attr_name")

    def __init__(self, table, column_name, decl, is_attribute=False,
                 attr_name=None):
        self.table = table
        self.column_name = column_name
        self.decl = decl
        self.is_attribute = is_attribute
        self.attr_name = attr_name  # the attribute's XML name, when one


class InlineBinding:
    """A single-occurrence wrapper element flattened into its parent table.

    Optional wrappers carry a presence column (``name$present``): a wrapper
    has no value column of its own, so absence must be recorded explicitly.
    """

    __slots__ = ("table", "decl", "presence_column")

    def __init__(self, table, decl, presence_column=None):
        self.table = table
        self.decl = decl
        self.presence_column = presence_column


class PresenceBinding:
    """The 0/1 presence column of an optional inline wrapper."""

    __slots__ = ("table", "column_name", "decl", "is_attribute")

    def __init__(self, table, column_name, decl):
        self.table = table
        self.column_name = column_name
        self.decl = decl
        self.is_attribute = False


class ObjectRelationalStorage:
    """Shredded storage for documents conforming to one structural schema."""

    def __init__(self, db, schema, name, column_types=None):
        """
        :param column_types: optional ``{element_or_attr_name: INT|FLOAT|TEXT}``
            for typed columns (value indexes need numeric typing to order
            numerically, e.g. ``{"sal": INT}``).
        """
        if schema.is_recursive():
            raise SchemaError(
                "object-relational shredding requires a non-recursive schema"
            )
        self.db = db
        self.schema = schema
        self.name = name
        self.column_types = column_types or {}
        self.bindings = {}       # id(decl) -> binding
        self.tables = []         # TableBinding, parents first
        self._doc_counter = 0
        # Per-materialize grouped child rows.  Thread-local: the serving
        # layer materialises concurrently from worker threads, and the
        # grouped cache only makes sense within one materialize() call.
        self._tls = threading.local()
        self._layout()
        self._create_tables()

    @property
    def _child_cache(self):
        return getattr(self._tls, "child_cache", None)

    @_child_cache.setter
    def _child_cache(self, value):
        self._tls.child_cache = value

    # -- layout -----------------------------------------------------------------

    def _layout(self):
        root_binding = TableBinding("%s_%s" % (self.name, self.schema.root.name),
                                    self.schema.root)
        self.bindings[id(self.schema.root)] = root_binding
        self.tables.append(root_binding)
        self._columns = {id(root_binding): []}  # per table: ColumnBindings
        self._layout_children(self.schema.root, root_binding)

    def _layout_children(self, decl, table):
        if decl.has_text and decl.particles:
            raise SchemaError(
                "mixed content (<%s>) cannot be shredded; use CLOB storage"
                % decl.name
            )
        for attribute in decl.attributes:
            self._add_column(table, decl, attribute, is_attribute=True)
        for particle in decl.particles:
            child = particle.decl
            if particle.at_most_one:
                if child.is_leaf:
                    binding = self._add_column(table, child, child.name)
                    for attribute in child.attributes:
                        self._add_column(table, child, attribute,
                                         is_attribute=True)
                    self.bindings[id(child)] = binding
                else:
                    presence_column = None
                    if particle.occurs == "?" or decl.group == "choice":
                        presence_column = "%s$present" % child.name
                        self._columns[id(table)].append(
                            PresenceBinding(table, presence_column, child)
                        )
                    self.bindings[id(child)] = InlineBinding(
                        table, child, presence_column
                    )
                    self._layout_children(child, table)
            else:
                child_table = TableBinding(
                    "%s_%s" % (self.name, child.name), child, parent=table
                )
                if id(child) in self.bindings:
                    raise SchemaError(
                        "element <%s> is shredded twice; shared declarations"
                        " must occur once" % child.name
                    )
                self.bindings[id(child)] = child_table
                self.tables.append(child_table)
                self._columns[id(child_table)] = []
                if child.is_leaf:
                    self._add_column(child_table, child, VALUE)
                    for attribute in child.attributes:
                        self._add_column(child_table, child, attribute,
                                         is_attribute=True)
                else:
                    self._layout_children(child, child_table)

    def _add_column(self, table, decl, base_name, is_attribute=False):
        columns = self._columns[id(table)]
        existing = {binding.column_name for binding in columns}
        column_name = ("attr_" + base_name) if is_attribute else base_name
        if column_name in existing:
            column_name = "%s_%s" % (decl.name, column_name)
        if column_name in existing:
            raise SchemaError("cannot derive unique column for %r" % base_name)
        binding = ColumnBinding(
            table, column_name, decl, is_attribute,
            attr_name=base_name if is_attribute else None,
        )
        columns.append(binding)
        return binding

    def _create_tables(self):
        for table in self.tables:
            columns = [(ROW_ID, INT)]
            if table.parent is None:
                pass  # root rows: id is the document id
            else:
                columns.append((PARENT_ID, INT))
                columns.append((SEQ, INT))
            for binding in self._columns[id(table)]:
                if isinstance(binding, PresenceBinding):
                    columns.append((binding.column_name, INT))
                    continue
                type_ = self.column_types.get(
                    binding.decl.name if not binding.is_attribute
                    else binding.column_name.replace("attr_", "", 1),
                    TEXT,
                )
                columns.append((binding.column_name, type_))
            columns.append((START, INT))
            columns.append((END, INT))
            columns.append((LEVEL, INT))
            self.db.create_table(table.table_name, columns)
            if table.parent is not None:
                # Foreign-key index: the reconstruction view correlates
                # child rows on the parent id, so child lookups are probes.
                self.db.create_index(table.table_name, PARENT_ID)

    # -- metadata for the rewrite ---------------------------------------------------

    def fingerprint(self):
        """Stable hash of everything that shapes a compiled transform
        against this storage: the structural schema, the shredded table
        layout (names, columns, types) and the set of live indexes over
        those tables.  Creating a value index — which changes what plan
        the optimizer picks — changes the fingerprint, so the serving
        layer's plan cache misses instead of executing a stale plan.
        """
        parts = ["object-relational:%s" % self.name,
                 _schema_signature(self.schema.root)]
        for table in self.tables:
            schema = self.db.table(table.table_name).schema
            parts.append("table:%s parent=%s cols=%s" % (
                table.table_name,
                table.parent.table_name if table.parent else "-",
                ",".join("%s:%s" % (column.name, column.type)
                         for column in schema.columns),
            ))
            for index in self.db.indexes_on(table.table_name):
                parts.append("index:%s:%s:%s" % (
                    index.table_name, index.column_name, index.name,
                ))
            # ANALYZE epoch: statistics changes the cost-based optimizer
            # could act on must re-key cached plans.  Plain DML on a
            # never-analyzed table contributes nothing (the planner was
            # already running on live row counts).
            table_stats = self.db.stats.table_stats(table.table_name)
            if table_stats is not None:
                parts.append("stats:%s:%d" % (
                    table.table_name, table_stats.version,
                ))
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    def binding_of(self, decl):
        return self.bindings.get(id(decl))

    def column_of(self, decl):
        """(table_name, column_name) for a leaf element declaration."""
        binding = self.bindings.get(id(decl))
        if not isinstance(binding, ColumnBinding):
            raise DatabaseError(
                "<%s> is not stored as a column" % decl.name
            )
        return binding.table.table_name, binding.column_name

    def create_value_index(self, element_name):
        """B-tree index over the column storing this leaf element."""
        decl = self.schema.find_decl(element_name)
        if decl is None:
            raise DatabaseError("no element <%s> in schema" % element_name)
        table_name, column_name = self.column_of(decl)
        return self.db.create_index(table_name, column_name)

    # -- loading ------------------------------------------------------------------

    def load(self, document):
        """Shred one document; returns its doc id."""
        violations = self.schema.validate(document)
        if violations:
            raise DatabaseError(
                "document does not conform to schema: %s" % violations[0]
            )
        self._doc_counter += 1
        doc_id = self._doc_counter
        assign_labels(document)
        root = document.document_element
        self._insert_element(root, self.schema.root, doc_id, None, 0)
        return doc_id

    def load_many(self, documents):
        return [self.load(document) for document in documents]

    def load_stream(self, source, strip_whitespace=True, stats=None,
                    chunk_size=DEFAULT_CHUNK_SIZE):
        """Shred XML text into the tables without materializing a DOM.

        *source* is a string, a file-like object, or an iterable of text
        chunks.  Rows, row ids and containment labels come out identical
        to :meth:`load` of the parsed document, so fingerprints and query
        results match exactly.  Memory stays bounded by the parser's
        token buffer plus the open *row scopes* — the subtrees of
        repeating elements whose rows are still being assembled — never
        the whole document.  Pass an
        :class:`~repro.rdb.plan.ExecutionStats` to record the buffering
        high-water mark in ``peak_ingest_buffered_bytes``.

        Streaming resolves every element against the schema (unknown
        children raise :class:`DatabaseError`) but does not run the full
        validator; route untrusted documents through :meth:`load`.
        """
        parser = StreamParser(source, strip_whitespace=strip_whitespace,
                              chunk_size=chunk_size)
        self._doc_counter += 1
        doc_id = self._doc_counter
        counter = 1  # label counter; 1 is the (virtual) document node
        frames = []  # per open element: [decl, mini_element, scope_or_None]
        # Open row scopes, outermost first.  Scope layout:
        # [table_binding, decl, row_id, (parent_row_id, seq), child_seq,
        #  mini_element, start, level, buffered_chars]
        scopes = []
        open_chars = 0
        peak_chars = 0

        for event in parser.events():
            kind = event[0]
            if kind == "start":
                name = event[1]
                if frames:
                    particle = frames[-1][0].particle_for(name)
                    if particle is None:
                        raise DatabaseError(
                            "document does not conform to schema:"
                            " unexpected <%s> under <%s>"
                            % (name, frames[-1][0].name))
                    decl = particle.decl
                else:
                    decl = self.schema.root
                    if name != decl.name:
                        raise DatabaseError(
                            "document does not conform to schema: root is"
                            " <%s>, expected <%s>" % (name, decl.name))
                counter += 1
                start = counter
                level = len(frames) + 1
                counter += len(event[2])  # attributes label start == end
                mini = Element(name)
                added = len(name)
                for attr_name, value in event[2]:
                    mini.set_attribute(attr_name, value)
                    added += len(attr_name) + len(value)
                binding = self.bindings[id(decl)]
                scope = None
                if isinstance(binding, TableBinding):
                    if binding.parent is None:
                        row_id, link = doc_id, None
                    else:
                        parent_scope = scopes[-1]
                        # Reserved now, inserted at scope close: one table
                        # per decl and non-recursive schemas mean no other
                        # row can enter this table while the scope is open.
                        row_id = self._next_row_id(binding)
                        seq = parent_scope[4].get(name, 0)
                        parent_scope[4][name] = seq + 1
                        link = (parent_scope[2], seq)
                    scope = [binding, decl, row_id, link, {}, mini,
                             start, level, 0]
                    scopes.append(scope)
                else:
                    frames[-1][1].append(mini)
                frames.append([decl, mini, scope])
                scopes[-1][8] += added
                open_chars += added
                if open_chars > peak_chars:
                    peak_chars = open_chars
            elif kind == "text":
                counter += 1
                frames[-1][1].append(Text(event[1]))
                scopes[-1][8] += len(event[1])
                open_chars += len(event[1])
                if open_chars > peak_chars:
                    peak_chars = open_chars
            elif kind == "end":
                decl, mini, scope = frames.pop()
                if scope is None:
                    continue
                scopes.pop()
                binding = scope[0]
                values = [scope[2]]
                if binding.parent is not None:
                    values.append(scope[3][0])
                    values.append(scope[3][1])
                if decl.is_leaf and binding.parent is not None:
                    values.append(mini.string_value())
                    for column in self._columns[id(binding)][1:]:
                        values.append(self._find_value(mini, decl, column))
                else:
                    values.extend(self._column_values(mini, decl, binding))
                values.extend((scope[6], counter, scope[7]))
                self.db.insert(binding.table_name, tuple(values))
                open_chars -= scope[8]
            else:
                # Comments and processing instructions are not shredded
                # (the column extractor never reads them) but they do
                # occupy a label slot, keeping labels aligned with
                # :func:`assign_labels` over the parsed document.
                counter += 1
        if stats is not None:
            stats.peak_ingest_buffered_bytes = max(
                stats.peak_ingest_buffered_bytes,
                parser.peak_buffered_bytes + peak_chars)
        return doc_id

    def _insert_element(self, element, decl, row_id, parent_row_id, seq):
        binding = self.bindings[id(decl)]
        if isinstance(binding, InlineBinding):
            raise AssertionError("inline elements are inserted via parents")
        table = binding
        values = [row_id]
        if table.parent is not None:
            values.append(parent_row_id)
            values.append(seq)
        values.extend(self._column_values(element, decl, table))
        values.extend(element.label.as_tuple())
        self.db.insert(table.table_name, tuple(values))
        self._insert_repeating(element, decl, row_id)
        return row_id

    def _column_values(self, element, decl, table):
        """Values for this table's data columns, reading the element tree."""
        out = []
        for binding in self._columns[id(table)]:
            out.append(self._find_value(element, decl, binding))
        return out

    def _find_value(self, element, decl, binding):
        if binding.is_attribute:
            owner = self._find_owner(element, decl, binding.decl)
            if owner is None:
                return None
            return owner.get_attribute(binding.attr_name)
        if isinstance(binding, PresenceBinding):
            holder = self._find_holder(element, decl, binding.decl)
            return 1 if holder is not None else 0
        if isinstance(self.bindings[id(binding.decl)], ColumnBinding):
            holder = self._find_holder(element, decl, binding.decl)
            if holder is None:
                return None
            return holder.string_value()
        return None

    def _find_owner(self, element, decl, attr_decl):
        if decl is attr_decl:
            return element
        return self._find_holder(element, decl, attr_decl)

    def _find_holder(self, element, decl, target_decl):
        """Locate the instance element for a decl reachable via single-
        occurrence steps from ``element``/``decl``."""
        if decl is target_decl:
            return element
        for particle in decl.particles:
            if not particle.at_most_one:
                continue
            child_element = element.find(particle.decl.name)
            if particle.decl is target_decl:
                return child_element
            if child_element is not None and not particle.decl.is_leaf:
                found = self._find_holder(
                    child_element, particle.decl, target_decl
                )
                if found is not None:
                    return found
        return None

    def _insert_repeating(self, element, decl, parent_row_id):
        """Insert child-table rows for every many-occurrence descendant
        reachable through single-occurrence steps."""
        for particle in decl.particles:
            child = particle.decl
            if particle.at_most_one:
                if not child.is_leaf:
                    child_element = element.find(child.name)
                    if child_element is not None:
                        self._insert_repeating(
                            child_element, child, parent_row_id
                        )
                continue
            child_table = self.bindings[id(child)]
            for seq, child_element in enumerate(element.findall(child.name)):
                row_id = self._next_row_id(child_table)
                values = [row_id, parent_row_id, seq]
                if child.is_leaf:
                    values.append(child_element.string_value())
                    for binding in self._columns[id(child_table)][1:]:
                        values.append(
                            self._find_value(child_element, child, binding)
                        )
                else:
                    values.extend(
                        self._column_values(child_element, child, child_table)
                    )
                values.extend(child_element.label.as_tuple())
                self.db.insert(child_table.table_name, tuple(values))
                self._insert_repeating(child_element, child, row_id)

    def _next_row_id(self, table_binding):
        return len(self.db.table(table_binding.table_name)) + 1

    # -- materialisation (functional / no-rewrite path) --------------------------------

    def document_ids(self):
        root_table = self.db.table(self.tables[0].table_name)
        return [row[0] for _, row in root_table.scan()]

    def materialize(self, doc_id, stats=None):
        """Rebuild the full DOM of one stored document.

        Each table is scanned once and grouped by parent id, so
        materialisation is linear in storage size — the honest cost of the
        paper's "XSLT no rewrite" baseline.
        """
        builder = TreeBuilder()
        root_table = self.tables[0]
        row = self._fetch_row(root_table, doc_id, stats)
        if row is None:
            raise DatabaseError("no document %d" % doc_id)
        if stats is not None:
            stats.docs_materialized += 1
        # Child rows are fetched through the parent-id index (one probe per
        # parent); without one, each child table is scanned once and
        # grouped.  Either way materialisation touches every row of *this*
        # document — the honest no-rewrite cost.
        self._child_cache = {}
        for table_binding in self.tables[1:]:
            if self.db.find_index(table_binding.table_name, PARENT_ID):
                continue  # probed on demand in _child_rows
            table = self.db.table(table_binding.table_name)
            grouped = {}
            for _, raw in table.scan():
                if stats is not None:
                    stats.rows_scanned += 1
                grouped.setdefault(raw[1], []).append(table.row_dict(raw))
            for rows in grouped.values():
                rows.sort(key=lambda r: r[SEQ])
            self._child_cache[id(table_binding)] = grouped
        try:
            self._emit(builder, self.schema.root, root_table, row, stats)
        finally:
            self._child_cache = None
        return builder.finish()

    def _fetch_row(self, table_binding, row_id, stats):
        table = self.db.table(table_binding.table_name)
        for _, row in table.scan():
            if stats is not None:
                stats.rows_scanned += 1
            if row[0] == row_id:
                return table.row_dict(row)
        return None

    def _emit(self, builder, decl, table_binding, row, stats):
        builder.start_element(decl.name)
        self._emit_content(builder, decl, table_binding, row, stats)
        builder.end_element()

    def _emit_content(self, builder, decl, table_binding, row, stats):
        self._emit_attributes(builder, decl, table_binding, row)
        for particle in decl.particles:
            child = particle.decl
            binding = self.bindings[id(child)]
            if isinstance(binding, ColumnBinding):
                value = row.get(binding.column_name)
                if value is not None:
                    builder.start_element(child.name)
                    self._emit_attributes(builder, child, table_binding, row)
                    builder.text(_as_text(value))
                    builder.end_element()
            elif isinstance(binding, InlineBinding):
                if (
                    binding.presence_column is not None
                    and not row.get(binding.presence_column)
                ):
                    continue  # the optional wrapper was absent
                builder.start_element(child.name)
                self._emit_content(builder, child, table_binding, row, stats)
                builder.end_element()
            else:  # child table
                child_rows = self._child_rows(binding, row[ROW_ID], stats)
                for child_row in child_rows:
                    if child.is_leaf:
                        builder.start_element(child.name)
                        self._emit_attributes(builder, child, binding,
                                              child_row)
                        builder.text(_as_text(child_row.get(VALUE)))
                        builder.end_element()
                    else:
                        self._emit(builder, child, binding, child_row, stats)
        if decl.has_text and decl.is_leaf:
            pass  # leaf text is stored in the parent's column

    def _emit_attributes(self, builder, owner_decl, table_binding, row):
        for attribute in owner_decl.attributes:
            binding = self._attr_binding(table_binding, owner_decl, attribute)
            if binding is not None and row.get(binding.column_name) is not None:
                builder.attribute(attribute, _as_text(row[binding.column_name]))

    def _attr_binding(self, table_binding, owner_decl, attribute):
        """The column binding of ``owner_decl``'s attribute, if stored."""
        for binding in self._columns[id(table_binding)]:
            if (
                getattr(binding, "is_attribute", False)
                and binding.decl is owner_decl
                and binding.attr_name == attribute
            ):
                return binding
        return None

    def _child_rows(self, table_binding, parent_id, stats):
        if self._child_cache is not None and id(table_binding) in self._child_cache:
            return self._child_cache[id(table_binding)].get(parent_id, [])
        table = self.db.table(table_binding.table_name)
        index = self.db.find_index(table_binding.table_name, PARENT_ID)
        rows = []
        if index is not None:
            for row_id in index.lookup_eq(parent_id, stats=stats):
                if stats is not None:
                    stats.rows_scanned += 1
                rows.append(table.row_dict(table.fetch(row_id)))
        else:
            for _, row in table.scan():
                if stats is not None:
                    stats.rows_scanned += 1
                if row[1] == parent_id:
                    rows.append(table.row_dict(row))
        rows.sort(key=lambda r: r[SEQ])
        return rows

    # -- canonical reconstruction view ------------------------------------------------

    def make_view_query(self):
        """The SQL/XML view reconstructing documents from the shredded
        tables — the paper's Table 3 shape; the rewrite merges into it."""
        root_table = self.tables[0]
        alias = root_table.table_name
        construction = self._construct_expr(
            self.schema.root, root_table, alias
        )
        return Query(Scan(root_table.table_name, alias),
                     [("xml_content", construction)])

    def _construct_expr(self, decl, table_binding, alias):
        content = []
        attributes = []
        for attribute in decl.attributes:
            binding = self._attr_binding(table_binding, decl, attribute)
            if binding is not None:
                attributes.append((attribute, col(binding.column_name, alias)))
        for particle in decl.particles:
            content.append(
                self._child_expr(decl, particle, table_binding, alias)
            )
        if decl.is_leaf and decl.has_text:
            content.append(col(VALUE, alias))
        return XMLElement(decl.name, *content, attributes=attributes)

    def _child_expr(self, decl, particle, table_binding, alias):
        child = particle.decl
        binding = self.bindings[id(child)]
        if isinstance(binding, ColumnBinding):
            leaf_attributes = []
            for attribute in child.attributes:
                attr_binding = self._attr_binding(table_binding, child,
                                                  attribute)
                if attr_binding is not None:
                    leaf_attributes.append(
                        (attribute, col(attr_binding.column_name, alias))
                    )
            element = XMLElement(
                child.name, col(binding.column_name, alias),
                attributes=leaf_attributes,
            )
            if particle.occurs == "?" or decl.group == "choice":
                # absent children are NULL columns: guard so the view does
                # not fabricate empty elements for them
                return CaseWhen(
                    [(IsNull(col(binding.column_name, alias), negated=True),
                      element)],
                    Const(None),
                )
            return element
        if isinstance(binding, InlineBinding):
            inline = self._inline_expr(child, table_binding, alias)
            if binding.presence_column is not None:
                return CaseWhen(
                    [(eq(col(binding.presence_column, alias), Const(1)),
                      inline)],
                    Const(None),
                )
            return inline
        return self._aggregate_subquery(child, binding, alias)

    def _inline_expr(self, decl, table_binding, alias):
        content = [
            self._child_expr(decl, particle, table_binding, alias)
            for particle in decl.particles
        ]
        return XMLElement(decl.name, *content)

    def _aggregate_subquery(self, decl, table_binding, parent_alias):
        child_alias = table_binding.table_name
        inner = self._construct_expr(decl, table_binding, child_alias)
        plan = Filter(
            Scan(table_binding.table_name, child_alias),
            eq(col(PARENT_ID, child_alias), col(ROW_ID, parent_alias)),
        )
        subquery = Query(
            plan,
            [(None, XMLAgg(inner, order_by=[(col(SEQ, child_alias), False)]))],
        )
        return ScalarSubquery(subquery)


def _as_text(value):
    if value is None:
        return ""
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _schema_signature(decl, seen=None):
    """Canonical one-line description of a structural-schema subtree."""
    if seen is None:
        seen = set()
    if id(decl) in seen:  # shared decl: already described once
        return "<shared %s>" % decl.name
    seen.add(id(decl))
    children = ",".join(
        "%s%s" % (
            _schema_signature(particle.decl, seen),
            particle.occurs,
        )
        for particle in decl.particles
    )
    return "%s[group=%s text=%d attrs=%s](%s)" % (
        decl.name, decl.group, int(decl.has_text),
        "|".join(decl.attributes), children,
    )


class ClobStorage:
    """Serialised-text storage: no structure for the rewrite to exploit."""

    def __init__(self, db, name):
        self.db = db
        self.name = name
        self.table_name = "%s_clob" % name
        db.create_table(self.table_name, [("id", INT), ("body", TEXT)])
        self._doc_counter = 0

    def fingerprint(self):
        """CLOB storage carries no structure: a compiled transform against
        it depends only on the stylesheet, so the fingerprint is just the
        storage identity."""
        return hashlib.sha256(
            ("clob:%s" % self.table_name).encode("utf-8")
        ).hexdigest()

    def load(self, document):
        self._doc_counter += 1
        self.db.insert(
            self.table_name, (self._doc_counter, serialize(document))
        )
        return self._doc_counter

    def load_many(self, documents):
        return [self.load(document) for document in documents]

    def document_ids(self):
        table = self.db.table(self.table_name)
        return [row[0] for _, row in table.scan()]

    def materialize(self, doc_id, stats=None):
        table = self.db.table(self.table_name)
        for _, row in table.scan():
            if stats is not None:
                stats.rows_scanned += 1
            if row[0] == doc_id:
                if stats is not None:
                    stats.docs_materialized += 1
                return parse_document(row[1])
        raise DatabaseError("no document %d" % doc_id)
