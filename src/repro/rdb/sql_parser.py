"""A SQL text front end for the relational engine.

Lets the paper's listings run verbatim: ``CREATE TABLE``, ``CREATE INDEX``,
``CREATE VIEW ... AS SELECT`` (including the Table-3 SQL/XML view with its
correlated ``XMLAgg`` subquery), ``INSERT INTO ... VALUES`` and ``SELECT``
queries with the SQL/XML publishing functions.

The grammar is the subset those listings use:

* ``SELECT item [AS name], ... FROM table [alias], ... [WHERE expr]
  [ORDER BY expr [DESC], ...]``
* expressions: comparisons (=, <>, !=, <, <=, >, >=), AND/OR/NOT,
  ``IS [NOT] NULL``, arithmetic, ``||``, ``CASE WHEN``, scalar subqueries,
  function calls (scalar functions, COUNT/SUM/AVG/MIN/MAX, XMLElement with
  XMLAttributes, XMLForest with AS, XMLConcat, XMLComment,
  XMLAgg [ORDER BY ...]);
* ``CREATE TABLE name (col TYPE, ...)`` with INT/INTEGER/NUMBER, FLOAT,
  TEXT/VARCHAR/VARCHAR2/CLOB, XML/XMLTYPE;
* ``CREATE [UNIQUE] INDEX [name] ON table (column)``;
* ``CREATE VIEW name AS SELECT ...``;
* ``INSERT INTO name VALUES (v, ...), (v, ...)``.

Identifiers are case-insensitive and lower-cased (quoted ``"Name"``
identifiers preserve case, lowered for catalog lookup like everything
else); keywords are recognised case-insensitively.
"""

from __future__ import annotations

from repro.errors import DatabaseError, PlanError
from repro.rdb import expressions as e
from repro.rdb import sqlxml
from repro.rdb.plan import Filter, Limit, NestedLoopJoin, Query, Scan, Sort
from repro.rdb.types import FLOAT, INT, TEXT, XML

_TYPE_NAMES = {
    "int": INT, "integer": INT, "number": INT, "smallint": INT,
    "float": FLOAT, "real": FLOAT, "double": FLOAT,
    "text": TEXT, "varchar": TEXT, "varchar2": TEXT, "char": TEXT,
    "clob": TEXT, "string": TEXT,
    "xml": XML, "xmltype": XML,
}

_AGG_NAMES = {"count", "sum", "avg", "min", "max"}


class SqlSyntaxError(PlanError):
    """Raised when SQL text cannot be parsed."""


# -- lexer -------------------------------------------------------------------

_SYMBOLS = ["||", "<>", "!=", "<=", ">=", "(", ")", ",", ".", "*", "=",
            "<", ">", "+", "-", "/", ";"]


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind  # 'ident', 'quoted', 'number', 'string', 'symbol', 'eof'
        self.value = value

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.value)


def _lex(source):
    tokens = []
    pos = 0
    length = len(source)
    while pos < length:
        char = source[pos]
        if char in " \t\r\n":
            pos += 1
            continue
        if source.startswith("--", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end + 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated /* comment")
            pos = end + 2
            continue
        if char == "'":
            out = []
            pos += 1
            while True:
                if pos >= length:
                    raise SqlSyntaxError("unterminated string literal")
                if source[pos] == "'":
                    if source.startswith("''", pos):
                        out.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                out.append(source[pos])
                pos += 1
            tokens.append(_Token("string", "".join(out)))
            continue
        if char == '"':
            end = source.find('"', pos + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated quoted identifier")
            tokens.append(_Token("quoted", source[pos + 1:end].lower()))
            pos = end + 1
            continue
        if char.isdigit() or (
            char == "." and pos + 1 < length and source[pos + 1].isdigit()
        ):
            end = pos + 1
            while end < length and (source[end].isdigit() or source[end] == "."):
                end += 1
            text = source[pos:end]
            value = float(text) if "." in text else int(text)
            tokens.append(_Token("number", value))
            pos = end
            continue
        if char.isalpha() or char == "_":
            end = pos + 1
            while end < length and (source[end].isalnum() or source[end] in "_$"):
                end += 1
            tokens.append(_Token("ident", source[pos:end].lower()))
            pos = end
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, pos):
                tokens.append(_Token("symbol", symbol))
                pos += len(symbol)
                break
        else:
            raise SqlSyntaxError("unexpected character %r" % char)
    tokens.append(_Token("eof", None))
    return tokens


# -- parser ---------------------------------------------------------------------


class _Parser:
    def __init__(self, source):
        self.tokens = _lex(source)
        self.pos = 0

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at_keyword(self, *words):
        token = self.peek()
        return token.kind == "ident" and token.value in words

    def expect_keyword(self, word):
        token = self.advance()
        if token.kind != "ident" or token.value != word:
            raise SqlSyntaxError("expected %s, got %r" % (word.upper(),
                                                          token.value))

    def expect_symbol(self, symbol):
        token = self.advance()
        if token.kind != "symbol" or token.value != symbol:
            raise SqlSyntaxError("expected %r, got %r" % (symbol, token.value))

    def at_symbol(self, symbol):
        token = self.peek()
        return token.kind == "symbol" and token.value == symbol

    def expect_name(self):
        token = self.advance()
        if token.kind not in ("ident", "quoted"):
            raise SqlSyntaxError("expected an identifier, got %r" % token.value)
        return token.value

    # -- statements --------------------------------------------------------------

    def parse_statement(self):
        if self.at_keyword("select"):
            statement = ("select", self.parse_select())
        elif self.at_keyword("create"):
            statement = self._parse_create()
        elif self.at_keyword("insert"):
            statement = self._parse_insert()
        elif self.at_keyword("drop"):
            self.advance()
            self.expect_keyword("table")
            statement = ("drop_table", self.expect_name())
        elif self.at_keyword("analyze"):
            self.advance()
            table = None
            if self.peek().kind in ("ident", "quoted"):
                table = self.expect_name()
            statement = ("analyze", table)
        else:
            raise SqlSyntaxError(
                "unsupported statement starting with %r" % self.peek().value
            )
        if self.at_symbol(";"):
            self.advance()
        if self.peek().kind != "eof":
            raise SqlSyntaxError(
                "trailing input after statement: %r" % self.peek().value
            )
        return statement

    def _parse_create(self):
        self.expect_keyword("create")
        if self.at_keyword("table"):
            self.advance()
            name = self.expect_name()
            self.expect_symbol("(")
            columns = []
            while True:
                column_name = self.expect_name()
                type_token = self.advance()
                if type_token.kind != "ident" or type_token.value not in _TYPE_NAMES:
                    raise SqlSyntaxError(
                        "unknown column type %r" % type_token.value
                    )
                # swallow (n) length specs
                if self.at_symbol("("):
                    self.advance()
                    self.advance()
                    self.expect_symbol(")")
                columns.append((column_name, _TYPE_NAMES[type_token.value]))
                if self.at_symbol(","):
                    self.advance()
                    continue
                break
            self.expect_symbol(")")
            return ("create_table", name, columns)
        if self.at_keyword("unique"):
            self.advance()
        if self.at_keyword("index"):
            self.advance()
            index_name = None
            if not self.at_keyword("on"):
                index_name = self.expect_name()
            self.expect_keyword("on")
            table = self.expect_name()
            self.expect_symbol("(")
            column = self.expect_name()
            self.expect_symbol(")")
            return ("create_index", table, column, index_name)
        if self.at_keyword("view"):
            self.advance()
            name = self.expect_name()
            self.expect_keyword("as")
            return ("create_view", name, self.parse_select())
        raise SqlSyntaxError("unsupported CREATE %r" % self.peek().value)

    def _parse_insert(self):
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_name()
        self.expect_keyword("values")
        rows = []
        while True:
            self.expect_symbol("(")
            values = [self._parse_literal()]
            while self.at_symbol(","):
                self.advance()
                values.append(self._parse_literal())
            self.expect_symbol(")")
            rows.append(tuple(values))
            if self.at_symbol(","):
                self.advance()
                continue
            break
        return ("insert", table, rows)

    def _parse_literal(self):
        token = self.advance()
        if token.kind in ("string", "number"):
            return token.value
        if token.kind == "ident" and token.value == "null":
            return None
        if token.kind == "symbol" and token.value == "-":
            number = self.advance()
            if number.kind != "number":
                raise SqlSyntaxError("expected a number after '-'")
            return -number.value
        raise SqlSyntaxError("expected a literal, got %r" % token.value)

    # -- SELECT ---------------------------------------------------------------------

    def parse_select(self):
        self.expect_keyword("select")
        outputs = [self._parse_select_item()]
        while self.at_symbol(","):
            self.advance()
            outputs.append(self._parse_select_item())
        plan = self._parse_from()
        if self.at_keyword("where"):
            self.advance()
            plan = Filter(plan, self.parse_expr())
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            keys = [self._parse_order_key()]
            while self.at_symbol(","):
                self.advance()
                keys.append(self._parse_order_key())
            plan = Sort(plan, keys)
        if self.at_keyword("limit"):
            self.advance()
            count = self.advance()
            if count.kind != "number" or not isinstance(count.value, int) \
                    or count.value < 0:
                raise SqlSyntaxError("LIMIT expects a non-negative integer")
            plan = Limit(plan, count.value)
        return Query(plan, outputs)

    def _parse_select_item(self):
        expr = self.parse_expr()
        name = None
        if self.at_keyword("as"):
            self.advance()
            name = self.expect_name()
        elif self.peek().kind in ("ident", "quoted") and not self.at_keyword(
            "from", "where", "order", "limit"
        ):
            name = self.expect_name()
        return (name, expr)

    def _parse_from(self):
        self.expect_keyword("from")
        plan = self._parse_table_ref()
        while self.at_symbol(","):
            self.advance()
            plan = NestedLoopJoin(plan, self._parse_table_ref())
        return plan

    def _parse_table_ref(self):
        table = self.expect_name()
        alias = None
        if self.peek().kind in ("ident", "quoted") and not self.at_keyword(
            "where", "order", "on", "group", "limit"
        ):
            alias = self.expect_name()
        return Scan(table, alias)

    def _parse_order_key(self):
        expr = self.parse_expr()
        descending = False
        if self.at_keyword("desc"):
            self.advance()
            descending = True
        elif self.at_keyword("asc"):
            self.advance()
        return (expr, descending)

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.at_keyword("or"):
            self.advance()
            left = e.BinOp("OR", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.at_keyword("and"):
            self.advance()
            left = e.BinOp("AND", left, self._parse_not())
        return left

    def _parse_not(self):
        if self.at_keyword("not"):
            self.advance()
            return e.Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        token = self.peek()
        if token.kind == "symbol" and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            return e.BinOp(op, left, self._parse_additive())
        if self.at_keyword("is"):
            self.advance()
            negated = False
            if self.at_keyword("not"):
                self.advance()
                negated = True
            self.expect_keyword("null")
            return e.IsNull(left, negated=negated)
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("+", "-", "||"):
                op = self.advance().value
                left = e.BinOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("*", "/"):
                op = self.advance().value
                left = e.BinOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self):
        if self.at_symbol("-"):
            self.advance()
            return e.BinOp("-", e.Const(0), self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return e.Const(token.value)
        if token.kind == "number":
            self.advance()
            return e.Const(token.value)
        if token.kind == "symbol" and token.value == "(":
            self.advance()
            if self.at_keyword("select"):
                subquery = self.parse_select()
                self.expect_symbol(")")
                return e.ScalarSubquery(subquery)
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.kind in ("ident", "quoted"):
            if token.kind == "ident" and token.value == "case":
                return self._parse_case()
            if token.kind == "ident" and token.value == "null":
                self.advance()
                return e.Const(None)
            if token.kind == "ident" and token.value in ("true", "false"):
                self.advance()
                return e.Const(token.value == "true")
            if (
                token.kind == "ident"
                and self.peek(1).kind == "symbol"
                and self.peek(1).value == "("
            ):
                return self._parse_function()
            name = self.expect_name()
            if self.at_symbol("."):
                self.advance()
                column = self.expect_name()
                return e.ColumnRef(column, name)
            return e.ColumnRef(name)
        raise SqlSyntaxError("unexpected token %r" % token.value)

    def _parse_case(self):
        self.expect_keyword("case")
        whens = []
        otherwise = None
        while self.at_keyword("when"):
            self.advance()
            condition = self.parse_expr()
            self.expect_keyword("then")
            whens.append((condition, self.parse_expr()))
        if self.at_keyword("else"):
            self.advance()
            otherwise = self.parse_expr()
        self.expect_keyword("end")
        return e.CaseWhen(whens, otherwise)

    def _parse_function(self):
        name = self.advance().value
        self.expect_symbol("(")
        if name == "xmlelement":
            return self._parse_xmlelement()
        if name == "xmlforest":
            return self._parse_xmlforest()
        if name == "xmlconcat":
            args = self._parse_argument_list()
            return sqlxml.XMLConcat(args)
        if name == "xmlcomment":
            args = self._parse_argument_list()
            return sqlxml.XMLComment(args[0])
        if name == "xmlagg":
            return self._parse_xmlagg()
        if name == "listagg":
            return self._parse_listagg()
        if name in _AGG_NAMES:
            if name == "count" and self.at_symbol("*"):
                self.advance()
                self.expect_symbol(")")
                return sqlxml.AggCall("COUNT")
            args = self._parse_argument_list()
            return sqlxml.AggCall(name.upper(),
                                  args[0] if args else None)
        args = self._parse_argument_list()
        return e.FuncCall(name.upper(), args)

    def _parse_argument_list(self):
        args = []
        if not self.at_symbol(")"):
            args.append(self.parse_expr())
            while self.at_symbol(","):
                self.advance()
                args.append(self.parse_expr())
        self.expect_symbol(")")
        return args

    def _parse_xmlelement(self):
        # XMLElement("name" [, XMLAttributes(expr AS "name", ...)] [, content...])
        name_token = self.advance()
        if name_token.kind not in ("quoted", "ident", "string"):
            raise SqlSyntaxError("XMLElement needs an element name")
        element_name = name_token.value
        if name_token.kind == "quoted":
            # quoted identifiers keep their case in generated XML
            element_name = name_token.value
        attributes = []
        content = []
        while self.at_symbol(","):
            self.advance()
            if self.at_keyword("xmlattributes"):
                self.advance()
                self.expect_symbol("(")
                while True:
                    value = self.parse_expr()
                    self.expect_keyword("as")
                    attr_name = self.expect_name()
                    attributes.append((attr_name, value))
                    if self.at_symbol(","):
                        self.advance()
                        continue
                    break
                self.expect_symbol(")")
            else:
                content.append(self.parse_expr())
        self.expect_symbol(")")
        return sqlxml.XMLElement(element_name, *content,
                                 attributes=attributes)

    def _parse_xmlforest(self):
        items = []
        while True:
            value = self.parse_expr()
            if self.at_keyword("as"):
                self.advance()
                item_name = self.expect_name()
            elif isinstance(value, e.ColumnRef):
                item_name = value.column
            else:
                raise SqlSyntaxError("XMLForest items need AS names")
            items.append((item_name, value))
            if self.at_symbol(","):
                self.advance()
                continue
            break
        self.expect_symbol(")")
        return sqlxml.XMLForest(items)

    def _parse_xmlagg(self):
        inner = self.parse_expr()
        order_by = []
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            while True:
                key = self.parse_expr()
                descending = False
                if self.at_keyword("desc"):
                    self.advance()
                    descending = True
                elif self.at_keyword("asc"):
                    self.advance()
                order_by.append((key, descending))
                if self.at_symbol(","):
                    self.advance()
                    continue
                break
        self.expect_symbol(")")
        return sqlxml.XMLAgg(inner, order_by=order_by)

    def _parse_listagg(self):
        inner = self.parse_expr()
        separator = ""
        if self.at_symbol(","):
            self.advance()
            token = self.advance()
            if token.kind != "string":
                raise SqlSyntaxError("LISTAGG separator must be a string")
            separator = token.value
        self.expect_symbol(")")
        order_by = []
        if self.at_keyword("within"):
            self.advance()
            self.expect_keyword("group")
            self.expect_symbol("(")
            self.expect_keyword("order")
            self.expect_keyword("by")
            while True:
                key = self.parse_expr()
                descending = False
                if self.at_keyword("desc"):
                    self.advance()
                    descending = True
                order_by.append((key, descending))
                if self.at_symbol(","):
                    self.advance()
                    continue
                break
            self.expect_symbol(")")
        return sqlxml.ListAgg(inner, separator, order_by=order_by)


# -- public API ------------------------------------------------------------------


def parse_sql(source):
    """Parse one SQL statement; returns a (kind, ...) tuple."""
    return _Parser(source).parse_statement()


def parse_select(source):
    """Parse a SELECT statement into a :class:`Query`."""
    statement = parse_sql(source)
    if statement[0] != "select":
        raise SqlSyntaxError("expected a SELECT statement")
    return statement[1]


def execute_sql(db, source, env=None):
    """Parse and run one statement against a Database.

    Returns ``(rows, stats)`` for SELECT; for DDL/DML returns a short
    status string.
    """
    statement = parse_sql(source)
    kind = statement[0]
    if kind == "select":
        return db.execute(statement[1], env=env)
    if kind == "create_table":
        _, name, columns = statement
        db.create_table(name, columns)
        return "table %s created" % name
    if kind == "create_index":
        _, table, column, index_name = statement
        db.create_index(table, column, index_name=index_name)
        return "index on %s(%s) created" % (table, column)
    if kind == "create_view":
        _, name, query = statement
        db.create_view(name, query)
        return "view %s created" % name
    if kind == "insert":
        _, table, rows = statement
        db.insert(table, *rows)
        return "%d row(s) inserted" % len(rows)
    if kind == "drop_table":
        db.drop_table(statement[1])
        return "table %s dropped" % statement[1]
    if kind == "analyze":
        _, table = statement
        computed = db.analyze(table)
        analyzed = 1 if table is not None else len(computed)
        return "%d table(s) analyzed" % analyzed
    raise DatabaseError("unhandled statement kind %r" % kind)
