"""Rule-based plan optimisation: turn indexable filters into B-tree probes.

This is the step that makes the paper's rewritten Table-7 query fast: the
predicate ``SAL > 2000`` over the shredded ``emp`` table becomes an
``IndexScan`` on the ``sal`` B-tree.  The rules are deliberately simple —
the point of the reproduction is the XSLT→XQuery→SQL pipeline, not a
cost-based optimiser:

* ``Filter(Scan)`` with a conjunct ``column op constant-or-outer-ref``
  and a matching index → ``IndexScan`` (+ residual filter);
* filters inside joins are optimised recursively (the right side of a
  nested-loop join may probe with a correlated key, which is exactly the
  paper's Table 7 correlated subquery shape).
"""

from __future__ import annotations

from repro.rdb.expressions import BinOp, ColumnRef
from repro.rdb.plan import (
    Aggregate,
    Filter,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Scan,
    Sort,
)

_FLIP = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_INDEXABLE_OPS = frozenset(["=", "<", "<=", ">", ">="])


def optimize(plan, db):
    """Return an optimised copy of the plan (inputs are not mutated)."""
    if isinstance(plan, Filter):
        # Collapse filter chains so every conjunct is visible to the index
        # matcher (rewrites stack their residual predicates as new Filters).
        predicate = plan.predicate
        child = plan.child
        while isinstance(child, Filter):
            predicate = BinOp("AND", predicate, child.predicate)
            child = child.child
        child = optimize(child, db)
        if isinstance(child, Scan):
            return _optimize_filtered_scan(predicate, child, db)
        return Filter(child, predicate)
    if isinstance(plan, NestedLoopJoin):
        return NestedLoopJoin(
            optimize(plan.left, db), optimize(plan.right, db), plan.condition
        )
    if isinstance(plan, Sort):
        return Sort(optimize(plan.child, db), plan.keys)
    if isinstance(plan, Aggregate):
        return Aggregate(
            optimize(plan.child, db), plan.group_by, plan.outputs, plan.alias
        )
    if isinstance(plan, Limit):
        return Limit(optimize(plan.child, db), plan.count)
    return plan


def optimize_query(query, db):
    """Optimise a query's plan and, recursively, every scalar subquery
    reachable from its output expressions."""
    from repro.rdb.expressions import ScalarSubquery
    from repro.rdb.plan import Query

    new_plan = optimize(query.plan, db)
    new_outputs = []
    for name, expr in query.outputs:
        for node in expr.iter_tree():
            if isinstance(node, ScalarSubquery):
                node.query = optimize_query(node.query, db)
        new_outputs.append((name, expr))
    _optimize_embedded(new_plan, db)
    return Query(new_plan, new_outputs)


def _optimize_embedded(plan, db):
    """Optimise subqueries inside plan predicates."""
    from repro.rdb.expressions import ScalarSubquery

    for node in plan.iter_plan():
        exprs = []
        if isinstance(node, Filter):
            exprs.append(node.predicate)
        elif isinstance(node, IndexScan):
            exprs.append(node.key_expr)
        elif isinstance(node, NestedLoopJoin) and node.condition is not None:
            exprs.append(node.condition)
        elif isinstance(node, Aggregate):
            exprs.extend(expr for _, expr in node.outputs)
        for expr in exprs:
            for sub in expr.iter_tree():
                if isinstance(sub, ScalarSubquery):
                    sub.query = optimize_query(sub.query, db)


def _optimize_filtered_scan(predicate, scan, db):
    conjuncts = _split_conjuncts(predicate)
    candidates = []
    for position, conjunct in enumerate(conjuncts):
        probe = _match_index(conjunct, scan, db)
        if probe is not None:
            candidates.append((position, probe))
    if not candidates:
        return Filter(scan, predicate)
    # Prefer equality probes (point lookups) over range probes — an
    # equality conjunct is almost always the more selective access path
    # (e.g. the parent-key correlation of a shredded child table).
    candidates.sort(key=lambda entry: 0 if entry[1][1] == "=" else 1)
    position, (index, op, key_expr, column) = candidates[0]
    new_plan = IndexScan(
        scan.table_name,
        index.name,
        op,
        key_expr,
        alias=scan.alias,
        column_name=column,
    )
    residual = conjuncts[:position] + conjuncts[position + 1:]
    for extra in residual:
        new_plan = Filter(new_plan, extra)
    return new_plan


def _split_conjuncts(predicate):
    if isinstance(predicate, BinOp) and predicate.op == "AND":
        return _split_conjuncts(predicate.left) + _split_conjuncts(
            predicate.right
        )
    return [predicate]


def _match_index(conjunct, scan, db):
    """``column op key`` (either orientation) with an available index."""
    if not isinstance(conjunct, BinOp) or conjunct.op not in _INDEXABLE_OPS:
        return None
    left, right = conjunct.left, conjunct.right
    candidates = []
    if _is_scan_column(left, scan) and not _references_alias(right, scan.alias):
        candidates.append((left.column, conjunct.op, right))
    if _is_scan_column(right, scan) and not _references_alias(left, scan.alias):
        candidates.append((right.column, _FLIP[conjunct.op], left))
    for column, op, key_expr in candidates:
        index = db.find_index(scan.table_name, column)
        if index is not None:
            return index, op, key_expr, column
    return None


def _is_scan_column(expr, scan):
    return isinstance(expr, ColumnRef) and (
        expr.table is None or expr.table == scan.alias
    )


def _references_alias(expr, alias):
    return any(
        isinstance(node, ColumnRef) and (node.table == alias or node.table is None)
        for node in expr.iter_tree()
    )
