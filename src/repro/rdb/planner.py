"""Plan optimisation: rule-based index selection and a cost-based layer.

This is the step that makes the paper's rewritten Table-7 query fast: the
predicate ``SAL > 2000`` over the shredded ``emp`` table becomes an
``IndexScan`` on the ``sal`` B-tree.  Three optimizer levels exist, chosen
per call (``optimize_query(..., level=...)``):

``off``
    the plan executes exactly as the rewrite emitted it;
``rules``
    the original heuristic pass — ``Filter(Scan)`` with an indexable
    conjunct becomes an ``IndexScan`` (+ one residual ``Filter``), with
    equality probes preferred over range probes;
``cost`` (the default)
    every access path and join strategy is *estimated*: per-candidate
    cardinality and cost are computed from :class:`~repro.rdb.stats.
    StatisticsCatalog` numbers (live row counts, ANALYZE distinct
    counts, min/max bounds and histograms) with textbook default
    selectivities when a table was never analyzed.  Candidates are
    Scan-plus-filter vs every matching ``IndexScan`` (with residual
    placement), and correlated ``NestedLoopJoin`` probing vs
    ``HashJoin`` on equi-join conjuncts extracted from filters sitting
    above joins.  ``Limit(Sort)`` fuses into a bounded-heap ``TopN``.
    The cheapest candidate wins and every choice — estimates,
    alternatives, winner — is recorded in the
    :class:`~repro.obs.decisions.DecisionLedger` so
    ``explain(rewrite=True)`` shows *why* a path was taken.

Chosen nodes are stamped with ``estimated_rows``/``estimated_cost``,
which ``explain`` renders as ``(est rows=... cost=...)`` next to the
EXPLAIN ANALYZE actuals.
"""

from __future__ import annotations

import math

from repro.errors import PlanError
from repro.rdb.expressions import (
    BinOp,
    ColumnRef,
    Const,
    ScalarSubquery,
    TreeContains,
)
from repro.rdb.plan import (
    Aggregate,
    Filter,
    HashJoin,
    HashLeftJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Scan,
    Sort,
    StructuralJoin,
    StructuralScan,
    TopN,
)

_FLIP = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_INDEXABLE_OPS = frozenset(["=", "<", "<=", ">", ">="])

# -- optimizer levels ----------------------------------------------------------

LEVEL_OFF = "off"
LEVEL_RULES = "rules"
LEVEL_COST = "cost"
LEVELS = (LEVEL_OFF, LEVEL_RULES, LEVEL_COST)
DEFAULT_LEVEL = LEVEL_COST

# -- cost model constants ------------------------------------------------------
# Unit: the cost of reading one heap row in a sequential scan.

SEQ_ROW = 1.0         #: read one row during a full scan
INDEX_NODE = 0.25     #: descend one emulated B-tree node
INDEX_ROW = 1.0       #: fetch one heap row through an index entry
FILTER_EVAL = 0.25    #: evaluate one predicate conjunct against one row
HASH_BUILD_ROW = 1.5  #: insert one row into a hash-join build table
HASH_PROBE = 0.5      #: probe the build table with one left row
SORT_ROW = 0.5        #: per row × log2(n) comparison work in Sort/TopN
STRUCT_ENTRY = 0.15   #: visit one structural path-index entry in a range scan

#: selectivity defaults when a table has no ANALYZE statistics
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 0.5


def normalize_level(level):
    if level is None:
        return DEFAULT_LEVEL
    if level not in LEVELS:
        raise PlanError(
            "unknown optimizer level %r (expected one of %s)"
            % (level, "/".join(LEVELS))
        )
    return level


def optimize(plan, db):
    """The rule-based pass: an optimised copy (inputs are not mutated)."""
    if isinstance(plan, Filter):
        # Collapse filter chains so every conjunct is visible to the index
        # matcher (rewrites stack their residual predicates as new Filters).
        predicate = plan.predicate
        child = plan.child
        while isinstance(child, Filter):
            predicate = BinOp("AND", predicate, child.predicate)
            child = child.child
        child = optimize(child, db)
        if isinstance(child, Scan):
            return _optimize_filtered_scan(predicate, child, db)
        return Filter(child, predicate)
    if isinstance(plan, NestedLoopJoin):
        return NestedLoopJoin(
            optimize(plan.left, db), optimize(plan.right, db), plan.condition
        )
    if isinstance(plan, Sort):
        return Sort(optimize(plan.child, db), plan.keys)
    if isinstance(plan, Aggregate):
        return Aggregate(
            optimize(plan.child, db), plan.group_by, plan.outputs, plan.alias
        )
    if isinstance(plan, Limit):
        return Limit(optimize(plan.child, db), plan.count)
    return plan


def optimize_query(query, db, level=None, ledger=None, decorrelate=None):
    """Optimise a query's plan and, recursively, every scalar subquery
    reachable from its output expressions, at the requested optimizer
    level.

    ``decorrelate`` gates the subquery-unnesting pass
    (:mod:`repro.rdb.decorrelate`), which turns correlated aggregating
    ``ScalarSubquery`` probes into ``HashLeftJoin`` over a grouped
    ``Aggregate``.  The pass is tied to the cost level (only the cost
    pass understands the new operators): ``None`` runs it exactly at
    ``level="cost"``, ``False`` disables it there, and ``True`` at any
    other level raises :class:`~repro.errors.PlanError`.
    """
    level = normalize_level(level)
    if decorrelate and level != LEVEL_COST:
        raise PlanError(
            "decorrelate=True requires optimizer level %r (got %r)"
            % (LEVEL_COST, level)
        )
    if level == LEVEL_OFF:
        return query
    if level == LEVEL_COST:
        if decorrelate is None or decorrelate:
            from repro.rdb.decorrelate import decorrelate_query

            query = decorrelate_query(query, db, ledger=ledger)
        return _CostOptimizer(db, ledger).optimize_query(query)
    return _rules_optimize_query(query, db)


def _rules_optimize_query(query, db):
    from repro.rdb.plan import Query

    new_plan = optimize(query.plan, db)
    new_outputs = []
    for name, expr in query.outputs:
        for node in expr.iter_tree():
            if isinstance(node, ScalarSubquery):
                node.query = _rules_optimize_query(node.query, db)
        new_outputs.append((name, expr))
    _optimize_embedded(new_plan, db)
    return Query(new_plan, new_outputs)


def _optimize_embedded(plan, db, optimizer=None):
    """Optimise subqueries inside plan predicates."""
    for node in plan.iter_plan():
        for expr in _node_expressions(node):
            for sub in expr.iter_tree():
                if isinstance(sub, ScalarSubquery):
                    if optimizer is not None:
                        sub.query = optimizer.optimize_query(sub.query)
                    else:
                        sub.query = _rules_optimize_query(sub.query, db)


def _node_expressions(node):
    exprs = []
    if isinstance(node, Filter):
        exprs.append(node.predicate)
    elif isinstance(node, IndexScan):
        exprs.append(node.key_expr)
    elif isinstance(node, HashJoin):
        exprs.append(node.left_key)
        exprs.append(node.right_key)
        if node.condition is not None:
            exprs.append(node.condition)
    elif isinstance(node, NestedLoopJoin) and node.condition is not None:
        exprs.append(node.condition)
    elif isinstance(node, (Sort, TopN)):
        exprs.extend(expr for expr, _ in node.keys)
    elif isinstance(node, HashLeftJoin):
        exprs.extend(node.left_keys)
        exprs.extend(node.right_keys)
    elif isinstance(node, Aggregate):
        exprs.extend(expr for _, expr in node.group_by)
        exprs.extend(expr for _, expr in node.outputs)
    return exprs


def _optimize_filtered_scan(predicate, scan, db):
    conjuncts = _split_conjuncts(predicate)
    candidates = []
    for position, conjunct in enumerate(conjuncts):
        probe = _match_index(conjunct, scan, db)
        if probe is not None:
            candidates.append((position, probe))
    if not candidates:
        return Filter(scan, predicate)
    # Prefer equality probes (point lookups) over range probes — an
    # equality conjunct is almost always the more selective access path
    # (e.g. the parent-key correlation of a shredded child table).
    candidates.sort(key=lambda entry: 0 if entry[1][1] == "=" else 1)
    position, (index, op, key_expr, column) = candidates[0]
    new_plan = IndexScan(
        scan.table_name,
        index.name,
        op,
        key_expr,
        alias=scan.alias,
        column_name=column,
    )
    residual = conjuncts[:position] + conjuncts[position + 1:]
    if residual:
        # one Filter over an AND-tree, not a chain of nested Filters
        new_plan = Filter(new_plan, _and_tree(residual))
    return new_plan


def _split_conjuncts(predicate):
    if isinstance(predicate, BinOp) and predicate.op == "AND":
        return _split_conjuncts(predicate.left) + _split_conjuncts(
            predicate.right
        )
    return [predicate]


def _and_tree(conjuncts):
    predicate = conjuncts[0]
    for extra in conjuncts[1:]:
        predicate = BinOp("AND", predicate, extra)
    return predicate


def _match_index(conjunct, scan, db):
    """``column op key`` (either orientation) with an available index."""
    if not isinstance(conjunct, BinOp) or conjunct.op not in _INDEXABLE_OPS:
        return None
    left, right = conjunct.left, conjunct.right
    candidates = []
    if _is_scan_column(left, scan) and not _references_alias(right, scan.alias):
        candidates.append((left.column, conjunct.op, right))
    if _is_scan_column(right, scan) and not _references_alias(left, scan.alias):
        candidates.append((right.column, _FLIP[conjunct.op], left))
    for column, op, key_expr in candidates:
        index = db.find_index(scan.table_name, column)
        if index is not None:
            return index, op, key_expr, column
    return None


def _is_scan_column(expr, scan):
    return isinstance(expr, ColumnRef) and (
        expr.table is None or expr.table == scan.alias
    )


def _references_alias(expr, alias):
    return any(
        isinstance(node, ColumnRef) and (node.table == alias or node.table is None)
        for node in expr.iter_tree()
    )


# -- cost-based optimisation ---------------------------------------------------

#: columns a structural candidate may absorb into its index scans
_STRUCT_COLUMNS = frozenset(["kind", "name", "doc_id"])


def _alias_const_equality(conjunct, alias):
    """``(column, value)`` when the conjunct is ``alias.column = const``
    (either orientation); None otherwise."""
    if not isinstance(conjunct, BinOp) or conjunct.op != "=":
        return None
    for own, other in ((conjunct.left, conjunct.right),
                       (conjunct.right, conjunct.left)):
        if isinstance(own, ColumnRef) and own.table == alias \
                and isinstance(other, Const):
            return own.column, other.value
    return None


def _alias_const_equalities(conjuncts, alias):
    """Split conjuncts into absorbable ``{column: const}`` equalities over
    *alias* (kind/name/doc_id, first occurrence each) and the rest."""
    values, rest = {}, []
    for conjunct in conjuncts:
        pair = _alias_const_equality(conjunct, alias)
        if pair is not None and pair[0] in _STRUCT_COLUMNS \
                and pair[0] not in values:
            values[pair[0]] = pair[1]
        else:
            rest.append(conjunct)
    return values, rest


def _stamp(node, rows, cost):
    node.estimated_rows = rows
    node.estimated_cost = cost
    return node


def _aliases_of(plan):
    """Aliases bound somewhere inside one plan subtree (scan aliases plus
    the output alias of any grouped Aggregate)."""
    return {
        node.alias
        for node in plan.iter_plan()
        if isinstance(node, (Scan, IndexScan, StructuralScan, Aggregate))
    }


def _referenced_aliases(expr):
    """(qualified alias set, has-unqualified-or-subquery flag)."""
    aliases = set()
    opaque = False
    for node in expr.iter_tree():
        if isinstance(node, ColumnRef):
            if node.table is None:
                opaque = True
            else:
                aliases.add(node.table)
        elif isinstance(node, ScalarSubquery):
            opaque = True
    return aliases, opaque


def _is_uncorrelated(plan, own_aliases):
    """True when no expression in the subtree references an alias outside
    the subtree's own scans — i.e. the subtree produces the same rows
    regardless of the probing row, so it is safe to hash-build once."""
    for node in plan.iter_plan():
        for expr in _node_expressions(node):
            aliases, opaque = _referenced_aliases(expr)
            if opaque or (aliases - own_aliases):
                return False
    return True


class _CostOptimizer:
    """One cost-based optimisation pass over a query tree."""

    STAGE = "plan-optimize"

    def __init__(self, db, ledger=None):
        self.db = db
        self.ledger = ledger
        # decisions are buffered as thunks so plan_join can discard the
        # ones recorded while costing a candidate that ends up rejected
        self._pending = []

    def _defer(self, record):
        if self.ledger is not None:
            self._pending.append(record)

    def _flush(self):
        while self._pending:
            self._pending.pop(0)()

    # -- entry points ----------------------------------------------------------

    def optimize_query(self, query):
        from repro.rdb.plan import Query

        new_plan = self.optimize_plan(query.plan)
        new_outputs = []
        for name, expr in query.outputs:
            for node in expr.iter_tree():
                if isinstance(node, ScalarSubquery):
                    node.query = self.optimize_query(node.query)
            new_outputs.append((name, expr))
        _optimize_embedded(new_plan, self.db, optimizer=self)
        self._flush()
        return Query(new_plan, new_outputs)

    def optimize_plan(self, plan):
        if isinstance(plan, Filter):
            predicate = plan.predicate
            child = plan.child
            while isinstance(child, Filter):
                predicate = BinOp("AND", predicate, child.predicate)
                child = child.child
            return self.push_into(child, _split_conjuncts(predicate))
        if isinstance(plan, NestedLoopJoin):
            return self.plan_join(plan, [])
        if isinstance(plan, Limit):
            if isinstance(plan.child, Sort):
                return self.fuse_topn(plan)
            child = self.optimize_plan(plan.child)
            rows, cost = self.estimate(child)
            return _stamp(Limit(child, plan.count),
                          min(plan.count, rows), cost)
        if isinstance(plan, Sort):
            child = self.optimize_plan(plan.child)
            rows, cost = self.estimate(child)
            return _stamp(
                Sort(child, plan.keys),
                rows, cost + rows * max(1.0, math.log2(rows + 1)) * SORT_ROW,
            )
        if isinstance(plan, Aggregate):
            # optimized in place: the decorrelation pass binds this node
            # into the decision ledger by identity, so feedback
            # attribution must survive the cost pass
            plan.child = self.optimize_plan(plan.child)
            rows, cost = self.estimate(plan.child)
            group_rows = self._group_rows(plan, rows)
            return _stamp(plan, group_rows, cost + rows * FILTER_EVAL)
        if isinstance(plan, HashLeftJoin):
            # in place, for the same ledger-identity reason as Aggregate
            plan.left = self.optimize_plan(plan.left)
            plan.right = self.optimize_plan(plan.right)
            return _stamp(plan, *self._derive_hash_left(plan))
        if isinstance(plan, Scan):
            rows, cost = self.estimate(plan)
            return _stamp(Scan(plan.table_name, plan.alias), rows, cost)
        # IndexScan / HashJoin / TopN arriving pre-built: keep as-is
        rows, cost = self.estimate(plan)
        return _stamp(plan, rows, cost)

    # -- filter placement ------------------------------------------------------

    def push_into(self, plan, conjuncts):
        """Place ``conjuncts`` as low as semantics allow over ``plan``."""
        if isinstance(plan, Filter):
            inner = plan
            while isinstance(inner, Filter):
                conjuncts = conjuncts + _split_conjuncts(inner.predicate)
                inner = inner.child
            return self.push_into(inner, conjuncts)
        if not conjuncts:
            return self.optimize_plan(plan)
        if isinstance(plan, Scan):
            return self.access_path(conjuncts, plan)
        if isinstance(plan, NestedLoopJoin):
            return self.plan_join(plan, conjuncts)
        if isinstance(plan, HashLeftJoin):
            # conjuncts over left columns commute with the left-outer
            # join (every left row survives it); the rest stays above
            left_aliases = _aliases_of(plan.left)
            pushed, kept = [], []
            for conjunct in conjuncts:
                refs, opaque = _referenced_aliases(conjunct)
                if not opaque and refs and refs <= left_aliases:
                    pushed.append(conjunct)
                else:
                    kept.append(conjunct)
            plan.left = self.push_into(plan.left, pushed)
            plan.right = self.optimize_plan(plan.right)
            joined = _stamp(plan, *self._derive_hash_left(plan))
            if not kept:
                return joined
            rows, cost = joined.estimated_rows, joined.estimated_cost
            selectivity = 1.0
            for conjunct in kept:
                selectivity *= self.conjunct_selectivity(conjunct, None)
            return _stamp(
                Filter(joined, _and_tree(kept)),
                rows * selectivity,
                cost + rows * len(kept) * FILTER_EVAL,
            )
        child = self.optimize_plan(plan)
        rows, cost = self.estimate(child)
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self.conjunct_selectivity(conjunct, None)
        return _stamp(
            Filter(child, _and_tree(conjuncts)),
            rows * selectivity,
            cost + rows * len(conjuncts) * FILTER_EVAL,
        )

    # -- access-path selection -------------------------------------------------

    def access_path(self, conjuncts, scan):
        """Cheapest of seq-scan-plus-filter vs every matching IndexScan."""
        table_rows = float(len(self.db.table(scan.table_name)))
        selectivities = [
            self.conjunct_selectivity(conjunct, scan)
            for conjunct in conjuncts
        ]
        out_rows = table_rows
        for selectivity in selectivities:
            out_rows *= selectivity

        # candidate 0: sequential scan, all conjuncts as one residual filter
        seq_cost = table_rows * SEQ_ROW \
            + table_rows * len(conjuncts) * FILTER_EVAL
        candidates = [{
            "action": "seq-scan",
            "cost": seq_cost,
            "rows": out_rows,
            "build": lambda: self._build_seq(scan, conjuncts, table_rows,
                                             out_rows, seq_cost),
        }]

        descent = INDEX_NODE * max(1, int(table_rows).bit_length())
        for position, conjunct in enumerate(conjuncts):
            probe = _match_index(conjunct, scan, self.db)
            if probe is None:
                continue
            index, op, key_expr, column = probe
            matched = table_rows * self._column_selectivity(
                scan.table_name, column, op, key_expr
            )
            residual = conjuncts[:position] + conjuncts[position + 1:]
            cost = descent + matched * INDEX_ROW \
                + matched * len(residual) * FILTER_EVAL
            candidates.append({
                "action": "index-scan(%s)" % index.name,
                "cost": cost,
                "rows": out_rows,
                "build": (lambda index=index, op=op, key_expr=key_expr,
                          column=column, residual=residual, matched=matched,
                          cost=cost: self._build_index(
                              scan, index, op, key_expr, column, residual,
                              matched, out_rows, cost)),
            })

        chosen = min(candidates, key=lambda candidate: candidate["cost"])
        built = chosen["build"]()
        self._record_access_path(scan, chosen, candidates, table_rows, built)
        return built

    def _build_seq(self, scan, conjuncts, table_rows, out_rows, cost):
        new_scan = _stamp(Scan(scan.table_name, scan.alias),
                          table_rows, table_rows * SEQ_ROW)
        if not conjuncts:
            return new_scan
        return _stamp(Filter(new_scan, _and_tree(conjuncts)), out_rows, cost)

    def _build_index(self, scan, index, op, key_expr, column, residual,
                     matched, out_rows, cost):
        probe = _stamp(
            IndexScan(scan.table_name, index.name, op, key_expr,
                      alias=scan.alias, column_name=column),
            matched,
            cost - matched * len(residual) * FILTER_EVAL,
        )
        if not residual:
            return probe
        return _stamp(Filter(probe, _and_tree(residual)), out_rows, cost)

    def _record_access_path(self, scan, chosen, candidates, table_rows,
                            built):
        if self.ledger is None:
            return
        from repro.obs.decisions import ACCESS_PATH

        detail = {
            "table_rows": table_rows,
            "est_rows": round(chosen["rows"], 1),
            "est_cost": round(chosen["cost"], 1),
            "alternatives": [
                "%s cost=%.1f" % (candidate["action"], candidate["cost"])
                for candidate in candidates
            ],
            "analyzed": self.db.stats.table_stats(scan.table_name)
            is not None,
        }

        def record():
            decision = self.ledger.record(
                ACCESS_PATH,
                self.STAGE,
                "%s %s" % (scan.table_name, scan.alias),
                chosen["action"],
                reason="cheapest of %d access path(s) by estimated cost"
                       % len(candidates),
                detail=detail,
            )
            decision.provenance.sql_node = built

        self._defer(record)

    # -- join strategy ---------------------------------------------------------

    def plan_join(self, join, conjuncts):
        """Cost NestedLoopJoin-with-pushed-predicates vs HashJoin on an
        extracted equi-conjunct; build (and record) the cheaper one."""
        all_conjuncts = list(conjuncts)
        if join.condition is not None:
            all_conjuncts.extend(_split_conjuncts(join.condition))
        left_aliases = _aliases_of(join.left)
        right_aliases = _aliases_of(join.right)

        left_only, right_only, equi, residual = [], [], [], []
        for conjunct in all_conjuncts:
            refs, opaque = _referenced_aliases(conjunct)
            if not opaque and refs and refs <= left_aliases:
                left_only.append(conjunct)
            elif not opaque and refs and refs <= right_aliases:
                right_only.append(conjunct)
            elif self._equi_split(conjunct, left_aliases,
                                  right_aliases) is not None:
                equi.append(conjunct)
            else:
                residual.append(conjunct)

        left_mark = len(self._pending)
        left_plan = self.push_into(join.left, left_only)
        left_rows, left_cost = self.estimate(left_plan)

        # candidate A: nested loop; everything except left-only conjuncts
        # is pushed into the (re-opened per left row) right side, where an
        # equi conjunct can become a correlated IndexScan probe.
        nlj_mark = len(self._pending)
        nlj_right = self.push_into(join.right, right_only + equi + residual)
        right_open_rows, right_open_cost = self.estimate(nlj_right)
        nlj_rows = left_rows * right_open_rows
        nlj_cost = left_cost + max(1.0, left_rows) * right_open_cost
        nlj = _stamp(NestedLoopJoin(left_plan, nlj_right, None),
                     nlj_rows, nlj_cost)

        hash_candidate = None
        hash_mark = len(self._pending)
        if equi and _is_uncorrelated(join.right, right_aliases):
            hash_candidate = self._hash_candidate(
                join, left_plan, left_rows, left_cost,
                right_only, equi, residual, left_aliases, right_aliases,
            )

        struct_mark = len(self._pending)
        struct_candidate = self._structural_candidate(
            join, left_only, right_only, residual)

        if struct_candidate is not None and \
                struct_candidate.estimated_cost < nlj_cost and (
                    hash_candidate is None
                    or struct_candidate.estimated_cost
                    < hash_candidate.estimated_cost):
            # the tree-walk join disappears entirely: index range scans
            # feeding a stack merge replace both sides and the predicate
            del self._pending[left_mark:struct_mark]
            self._record_structural(join, "structural-join", nlj_cost,
                                    struct_candidate, struct_candidate)
            return struct_candidate
        if hash_candidate is not None and \
                hash_candidate.estimated_cost < nlj_cost:
            chosen, action = hash_candidate, "hash-join"
            # drop decisions recorded while costing the rejected
            # nested-loop candidate's inner side
            del self._pending[nlj_mark:hash_mark]
        else:
            chosen, action = nlj, "nested-loop"
            del self._pending[hash_mark:]
        if struct_candidate is not None:
            self._record_structural(join, "tree-walk", nlj_cost,
                                    struct_candidate, chosen)
        self._record_join(join, left_aliases, right_aliases, action,
                          nlj_cost, hash_candidate, chosen, len(equi))
        return chosen

    def _structural_candidate(self, join, left_only, right_only, residual):
        """A StructuralJoin replacement for the naive descendant pattern:
        ``Scan(nodes d) x Scan(nodes a)`` filtered on element names plus a
        ``TreeContains(a, d)`` walk.  Returns a stamped plan, or None when
        the shape does not match or no structural index is registered.

        Only the descendant-on-the-left orientation is handled: that is
        the order ``StructuralJoin`` emits (descendant-major, ancestors
        ascending), so the replacement is byte-identical to the walk."""
        walks = [conjunct for conjunct in residual
                 if isinstance(conjunct, TreeContains)]
        if len(walks) != 1:
            return None
        tc = walks[0]
        if not isinstance(join.left, Scan) or not isinstance(join.right,
                                                             Scan):
            return None
        if join.left.table_name != tc.table_name \
                or join.right.table_name != tc.table_name:
            return None
        if join.left.alias != tc.desc_alias \
                or join.right.alias != tc.anc_alias:
            return None
        sindex = self.db.structural_index(tc.table_name)
        if sindex is None:
            return None

        desc_eq, desc_rest = _alias_const_equalities(left_only,
                                                     tc.desc_alias)
        anc_eq, anc_rest = _alias_const_equalities(right_only, tc.anc_alias)
        if desc_eq.get("kind") != "element" or "name" not in desc_eq:
            return None
        if anc_eq.get("kind") != "element" or "name" not in anc_eq:
            return None
        desc_name = desc_eq["name"]
        anc_name = anc_eq["name"]

        doc_id = None
        if "doc_id" in desc_eq and desc_eq["doc_id"] == anc_eq.get(
                "doc_id"):
            doc_id = desc_eq["doc_id"]
        else:
            # unconsumed doc predicates stay as residual filters
            desc_rest.extend(c for c in left_only
                             if _alias_const_equality(c, tc.desc_alias)
                             == ("doc_id", desc_eq.get("doc_id")))
            anc_rest.extend(c for c in right_only
                            if _alias_const_equality(c, tc.anc_alias)
                            == ("doc_id", anc_eq.get("doc_id")))

        table_rows = float(len(self.db.table(tc.table_name)))
        descent = INDEX_NODE * max(1, int(table_rows).bit_length())
        n_desc = float(sindex.count_name(desc_name))
        n_anc = float(sindex.count_name(anc_name))
        desc_scan = _stamp(
            StructuralScan(tc.table_name, desc_name, alias=tc.desc_alias,
                           doc_id=doc_id),
            n_desc, descent + n_desc * (STRUCT_ENTRY + INDEX_ROW))
        anc_scan = _stamp(
            StructuralScan(tc.table_name, anc_name, alias=tc.anc_alias,
                           doc_id=doc_id),
            n_anc, descent + n_anc * (STRUCT_ENTRY + INDEX_ROW))
        out_rows = max(1.0, n_desc)  # ~one matching ancestor per descendant
        joined = _stamp(
            StructuralJoin(desc_scan, anc_scan, tc.desc_alias,
                           tc.anc_alias),
            out_rows,
            desc_scan.estimated_cost + anc_scan.estimated_cost
            + (n_desc + n_anc) * STRUCT_ENTRY + out_rows * FILTER_EVAL)

        extras = desc_rest + anc_rest + [
            conjunct for conjunct in residual if conjunct is not tc]
        if not extras:
            return joined
        rows = joined.estimated_rows
        for conjunct in extras:
            rows *= self.conjunct_selectivity(conjunct, None)
        return _stamp(
            Filter(joined, _and_tree(extras)),
            rows,
            joined.estimated_cost
            + joined.estimated_rows * len(extras) * FILTER_EVAL)

    def _record_structural(self, join, action, nlj_cost, candidate,
                           chosen):
        if self.ledger is None:
            return
        from repro.obs.decisions import STRUCTURAL_PATH

        inner = candidate
        while isinstance(inner, Filter):
            inner = inner.child
        detail = {
            "tree_walk_cost": round(nlj_cost, 1),
            "structural_cost": round(candidate.estimated_cost, 1),
            "est_rows": round(candidate.estimated_rows, 1),
            "descendant": inner.descendant.name,
            "ancestor": inner.ancestor.name,
        }
        if action == "structural-join":
            reason = ("label-range scans + stack merge, estimated cost "
                      "%.1f beats the %.1f parent-chain walk"
                      % (candidate.estimated_cost, nlj_cost))
        else:
            reason = ("parent-chain walk estimated cheaper (%.1f vs %.1f)"
                      % (nlj_cost, candidate.estimated_cost))

        def record():
            decision = self.ledger.record(
                STRUCTURAL_PATH,
                self.STAGE,
                "%s //%s//%s" % (inner.descendant.table_name,
                                 inner.ancestor.name,
                                 inner.descendant.name),
                action,
                reason=reason,
                detail=detail,
            )
            decision.provenance.sql_node = chosen

        self._defer(record)

    def _hash_candidate(self, join, left_plan, left_rows, left_cost,
                        right_only, equi, residual, left_aliases,
                        right_aliases):
        right_plan = self.push_into(join.right, right_only)
        right_rows, right_cost = self.estimate(right_plan)
        left_key, right_key = self._equi_split(
            equi[0], left_aliases, right_aliases
        )
        extra = equi[1:] + residual
        selectivity = self._join_selectivity(left_key, right_key)
        out_rows = left_rows * right_rows * selectivity
        for conjunct in extra:
            out_rows *= self.conjunct_selectivity(conjunct, None)
        cost = (
            left_cost + right_cost
            + right_rows * HASH_BUILD_ROW
            + left_rows * HASH_PROBE
            + left_rows * right_rows * selectivity * len(extra) * FILTER_EVAL
        )
        return _stamp(
            HashJoin(left_plan, right_plan, left_key, right_key,
                     condition=_and_tree(extra) if extra else None),
            out_rows, cost,
        )

    def _equi_split(self, conjunct, left_aliases, right_aliases):
        """``(left_key, right_key)`` when the conjunct is an equality with
        one side referencing only left aliases and the other only right
        aliases; None otherwise."""
        if not isinstance(conjunct, BinOp) or conjunct.op != "=":
            return None
        left_refs, left_opaque = _referenced_aliases(conjunct.left)
        right_refs, right_opaque = _referenced_aliases(conjunct.right)
        if left_opaque or right_opaque or not left_refs or not right_refs:
            return None
        if left_refs <= left_aliases and right_refs <= right_aliases:
            return conjunct.left, conjunct.right
        if left_refs <= right_aliases and right_refs <= left_aliases:
            return conjunct.right, conjunct.left
        return None

    def _join_selectivity(self, left_key, right_key):
        """1/max(ndv) over the joined key columns, defaulting per side."""
        distincts = []
        for key in (left_key, right_key):
            if isinstance(key, ColumnRef) and key.table is not None:
                stats = self._column_stats_by_alias(key.table, key.column)
                if stats is not None and stats.distinct:
                    distincts.append(stats.distinct)
        if distincts:
            return 1.0 / max(distincts)
        return DEFAULT_EQ_SELECTIVITY

    def _column_stats_by_alias(self, alias, column):
        # aliases usually equal the table name in generated plans; fall
        # back to a catalog-wide search when they don't
        if self.db.has_table(alias):
            return self.db.stats.column_stats(alias, column)
        for name in self.db.stats.analyzed_tables():
            stats = self.db.stats.column_stats(name, column)
            if stats is not None:
                return stats
        return None

    def _record_join(self, join, left_aliases, right_aliases, action,
                     nlj_cost, hash_candidate, chosen, equi_count):
        if self.ledger is None:
            return
        from repro.obs.decisions import JOIN_STRATEGY

        detail = {
            "nested_loop_cost": round(nlj_cost, 1),
            "est_rows": round(chosen.estimated_rows, 1),
            "equi_conjuncts": equi_count,
        }
        if hash_candidate is not None:
            detail["hash_cost"] = round(hash_candidate.estimated_cost, 1)
            reason = "estimated cost %.1f beats %.1f" % (
                (detail["hash_cost"], nlj_cost)
                if action == "hash-join"
                else (nlj_cost, detail["hash_cost"])
            )
        elif equi_count:
            reason = "right side is correlated; hash build not applicable"
        else:
            reason = "no equi-join conjunct; nested loop is the only path"
        def record():
            decision = self.ledger.record(
                JOIN_STRATEGY,
                self.STAGE,
                "%s >< %s" % ("+".join(sorted(left_aliases)) or "?",
                              "+".join(sorted(right_aliases)) or "?"),
                action,
                reason=reason,
                detail=detail,
            )
            decision.provenance.sql_node = chosen

        self._defer(record)

    # -- Limit(Sort) fusion ----------------------------------------------------

    def fuse_topn(self, limit):
        sort = limit.child
        child = self.optimize_plan(sort.child)
        rows, cost = self.estimate(child)
        sort_cost = cost + rows * max(1.0, math.log2(rows + 1)) * SORT_ROW
        heap_cost = cost + rows * max(
            1.0, math.log2(limit.count + 1)
        ) * SORT_ROW
        fused = _stamp(TopN(child, sort.keys, limit.count),
                       min(limit.count, rows), heap_cost)
        if self.ledger is not None:
            from repro.obs.decisions import TOPN_FUSION

            detail = {
                "est_input_rows": round(rows, 1),
                "sort_cost": round(sort_cost, 1),
                "topn_cost": round(heap_cost, 1),
            }

            def record():
                decision = self.ledger.record(
                    TOPN_FUSION,
                    self.STAGE,
                    "LIMIT %d over SORT" % limit.count,
                    "top-n",
                    reason="bounded heap keeps %d rows instead of "
                           "sorting all" % limit.count,
                    detail=detail,
                )
                decision.provenance.sql_node = fused

            self._defer(record)
        return fused

    # -- estimation ------------------------------------------------------------

    def estimate(self, plan):
        """(estimated rows, estimated cost) — reads the stamps when the
        node was built by this pass, derives them otherwise."""
        rows = getattr(plan, "estimated_rows", None)
        cost = getattr(plan, "estimated_cost", None)
        if rows is not None and cost is not None:
            return rows, cost
        return self._derive(plan)

    def _derive(self, plan):
        if isinstance(plan, Scan):
            rows = float(len(self.db.table(plan.table_name)))
            return rows, rows * SEQ_ROW
        if isinstance(plan, IndexScan):
            table_rows = float(len(self.db.table(plan.table_name)))
            column = plan.column_name or self.db.index(
                plan.index_name
            ).column_name
            matched = table_rows * self._column_selectivity(
                plan.table_name, column, plan.op, plan.key_expr
            )
            descent = INDEX_NODE * max(1, int(table_rows).bit_length())
            return matched, descent + matched * INDEX_ROW
        if isinstance(plan, Filter):
            child_rows, child_cost = self.estimate(plan.child)
            conjuncts = _split_conjuncts(plan.predicate)
            rows = child_rows
            scan = plan.child if isinstance(plan.child,
                                            (Scan, IndexScan)) else None
            for conjunct in conjuncts:
                rows *= self.conjunct_selectivity(conjunct, scan)
            return rows, child_cost + child_rows * len(conjuncts) * FILTER_EVAL
        if isinstance(plan, NestedLoopJoin):
            left_rows, left_cost = self.estimate(plan.left)
            right_rows, right_cost = self.estimate(plan.right)
            selectivity = DEFAULT_EQ_SELECTIVITY if plan.condition is not None \
                else 1.0
            return (
                left_rows * right_rows * selectivity,
                left_cost + max(1.0, left_rows) * right_cost,
            )
        if isinstance(plan, HashJoin):
            left_rows, left_cost = self.estimate(plan.left)
            right_rows, right_cost = self.estimate(plan.right)
            selectivity = self._join_selectivity(plan.left_key,
                                                 plan.right_key)
            return (
                left_rows * right_rows * selectivity,
                left_cost + right_cost + right_rows * HASH_BUILD_ROW
                + left_rows * HASH_PROBE,
            )
        if isinstance(plan, HashLeftJoin):
            return self._derive_hash_left(plan)
        if isinstance(plan, Sort):
            rows, cost = self.estimate(plan.child)
            return rows, cost + rows * max(1.0, math.log2(rows + 1)) * SORT_ROW
        if isinstance(plan, TopN):
            rows, cost = self.estimate(plan.child)
            return (
                min(float(plan.count), rows),
                cost + rows * max(1.0, math.log2(plan.count + 1)) * SORT_ROW,
            )
        if isinstance(plan, Limit):
            rows, cost = self.estimate(plan.child)
            return min(float(plan.count), rows), cost
        if isinstance(plan, Aggregate):
            rows, cost = self.estimate(plan.child)
            return self._group_rows(plan, rows), cost + rows * FILTER_EVAL
        if isinstance(plan, StructuralScan):
            sindex = self.db.structural_index(plan.table_name)
            rows = float(sindex.count_name(plan.name)) if sindex else 0.0
            table_rows = float(len(self.db.table(plan.table_name)))
            descent = INDEX_NODE * max(1, int(table_rows).bit_length())
            return rows, descent + rows * (STRUCT_ENTRY + INDEX_ROW)
        if isinstance(plan, StructuralJoin):
            desc_rows, desc_cost = self.estimate(plan.descendant)
            anc_rows, anc_cost = self.estimate(plan.ancestor)
            out_rows = max(1.0, desc_rows)
            return out_rows, (desc_cost + anc_cost
                              + (desc_rows + anc_rows) * STRUCT_ENTRY
                              + out_rows * FILTER_EVAL)
        return 1.0, 1.0  # unknown operator: neutral

    def _derive_hash_left(self, plan):
        left_rows, left_cost = self.estimate(plan.left)
        right_rows, right_cost = self.estimate(plan.right)
        # left-preserving over unique (grouped) build keys: exactly one
        # output row per left row, matched or defaulted
        return left_rows, (
            left_cost + right_cost
            + right_rows * HASH_BUILD_ROW
            + left_rows * HASH_PROBE
        )

    def _group_rows(self, plan, input_rows):
        """Group-count estimate for an Aggregate over ``input_rows``:
        the ndv of the widest group-key column when ANALYZE stats know
        it, else the textbook tenth of the input."""
        if not plan.group_by:
            return 1.0
        distincts = []
        for _, expr in plan.group_by:
            if isinstance(expr, ColumnRef) and expr.table is not None:
                stats = self._column_stats_by_alias(expr.table, expr.column)
                if stats is not None and stats.distinct:
                    distincts.append(float(stats.distinct))
        if distincts:
            return max(1.0, min(input_rows, max(distincts)))
        return max(1.0, input_rows * 0.1)

    def conjunct_selectivity(self, conjunct, scan):
        """Selectivity of one conjunct, column-aware when ``scan`` names
        the table it filters."""
        if not isinstance(conjunct, BinOp) \
                or conjunct.op not in _INDEXABLE_OPS:
            return DEFAULT_SELECTIVITY
        if scan is not None:
            table_name = scan.table_name
            left, right = conjunct.left, conjunct.right
            if _is_scan_column(left, scan) \
                    and not _references_alias(right, scan.alias):
                return self._column_selectivity(
                    table_name, left.column, conjunct.op, right
                )
            if _is_scan_column(right, scan) \
                    and not _references_alias(left, scan.alias):
                return self._column_selectivity(
                    table_name, right.column, _FLIP[conjunct.op], left
                )
        return (DEFAULT_EQ_SELECTIVITY if conjunct.op == "="
                else DEFAULT_RANGE_SELECTIVITY)

    def _column_selectivity(self, table_name, column, op, key_expr):
        stats = self.db.stats.column_stats(table_name, column)
        key = key_expr.value if isinstance(key_expr, Const) else None
        if op == "=":
            if stats is not None and stats.histogram is not None \
                    and isinstance(key, (int, float)):
                return stats.histogram.selectivity("=", key)
            if stats is not None and stats.distinct:
                return 1.0 / stats.distinct
            return DEFAULT_EQ_SELECTIVITY
        # range operator
        if stats is not None and isinstance(key, (int, float)):
            if stats.histogram is not None:
                return stats.histogram.selectivity(op, key)
            if isinstance(stats.min, (int, float)) \
                    and isinstance(stats.max, (int, float)) \
                    and stats.max > stats.min:
                fraction = (key - stats.min) / float(stats.max - stats.min)
                fraction = min(1.0, max(0.0, fraction))
                return fraction if op in ("<", "<=") else 1.0 - fraction
        return DEFAULT_RANGE_SELECTIVITY
