"""Derive structural information from SQL/XML view definitions (§3.2).

"If the input XMLType is generated from relational or object-relational
data ... we can get the XML structural information from the underlying
relational or object relational schema."  Here the information comes from
the view's XML construction expression itself: an ``XMLElement`` tree with
nested elements (occurs 1), ``XMLForest`` members (occurs ?), and
``XMLAgg`` scalar subqueries (occurs *).

Besides the :class:`~repro.schema.model.StructuralSchema`, the inference
returns a mapping from each element declaration to the construction node
that produces it — the XQuery→SQL rewrite navigates this map instead of
re-deriving it.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.rdb.expressions import CaseWhen, Const, ScalarSubquery, SqlExpr
from repro.rdb.sqlxml import XMLAgg, XMLConcat, XMLElement, XMLForest, XMLText
from repro.schema.model import (
    MANY,
    ONE,
    OPTIONAL,
    SEQUENCE,
    ElementDecl,
    Particle,
    StructuralSchema,
)


class ElementSource:
    """How one element declaration is produced by the view.

    :ivar constructor: the :class:`XMLElement` that builds it;
    :ivar text_expr: for leaves, the scalar expression producing the text;
    :ivar subquery: the :class:`ScalarSubquery` whose ``XMLAgg`` repeats
        this element (None for singly-occurring elements);
    :ivar attribute_exprs: ``{attr_name: expr}``.
    """

    __slots__ = ("constructor", "text_expr", "subquery", "attribute_exprs")

    def __init__(self, constructor, text_expr=None, subquery=None,
                 attribute_exprs=None):
        self.constructor = constructor
        self.text_expr = text_expr
        self.subquery = subquery
        self.attribute_exprs = attribute_exprs or {}


class ViewStructure:
    """Inference result: schema plus declaration→source map."""

    def __init__(self, schema, sources):
        self.schema = schema
        self._sources = sources  # id(decl) -> ElementSource

    def source_of(self, decl):
        return self._sources[id(decl)]


FRAGMENT_ROOT = "#fragment"


def infer_view_structure(view_query, fragment_ok=False):
    """Infer structure from an XMLType view query (single XML output).

    With ``fragment_ok`` a multi-rooted construction (e.g. the output of a
    rewritten XSLT view, paper example 2) is wrapped in a synthetic
    ``#fragment`` declaration whose children are the top-level elements —
    this is the "static typing result of the equivalent XQuery" (§3.2).
    """
    if len(view_query.outputs) != 1:
        raise RewriteError(
            "XMLType views must have exactly one output column"
        )
    _, construction = view_query.outputs[0]
    sources = {}
    particles = _infer_content(construction, sources)
    if len(particles) == 1 and particles[0].occurs == ONE:
        root = particles[0].decl
        return ViewStructure(StructuralSchema(root), sources)
    if not fragment_ok:
        raise RewriteError(
            "view output must construct exactly one root element"
        )
    root = ElementDecl(FRAGMENT_ROOT, group=SEQUENCE, particles=particles)
    sources[id(root)] = ElementSource(None)
    return ViewStructure(StructuralSchema(root), sources)


def _infer_content(expr, sources, occurs=ONE):
    """Particles contributed by one content expression."""
    if isinstance(expr, XMLElement):
        return [Particle(_infer_element(expr, sources, None), occurs)]
    if isinstance(expr, XMLForest):
        particles = []
        for name, item_expr in expr.items:
            decl = ElementDecl(name, has_text=True)
            sources[id(decl)] = ElementSource(None, text_expr=item_expr)
            particles.append(Particle(decl, OPTIONAL))
        return particles
    if isinstance(expr, XMLConcat):
        particles = []
        for item in expr.items:
            particles.extend(_infer_content(item, sources, occurs))
        return particles
    if isinstance(expr, ScalarSubquery):
        return _infer_subquery(expr, sources)
    if isinstance(expr, CaseWhen):
        return _infer_case(expr, sources)
    if isinstance(expr, (XMLText, SqlExpr)):
        return []  # scalar content: text, handled by the caller
    raise RewriteError(
        "unsupported construct %r in view definition" % type(expr).__name__
    )


def _infer_element(element_expr, sources, subquery):
    particles = []
    text_exprs = []
    for item in element_expr.content:
        if isinstance(
            item,
            (XMLElement, XMLForest, XMLConcat, ScalarSubquery, CaseWhen),
        ):
            particles.extend(_infer_content(item, sources))
        elif isinstance(item, SqlExpr):
            text_exprs.append(item)
        else:
            raise RewriteError(
                "unsupported content %r in XMLElement" % type(item).__name__
            )
    decl = ElementDecl(
        element_expr.name,
        group=SEQUENCE if particles else None,
        particles=particles,
        has_text=bool(text_exprs),
        attributes=[name for name, _ in element_expr.attributes],
    )
    sources[id(decl)] = ElementSource(
        element_expr,
        text_expr=text_exprs[0] if len(text_exprs) == 1 else None,
        subquery=subquery,
        attribute_exprs=dict(element_expr.attributes),
    )
    return decl


def _infer_case(expr, sources):
    """Conditional construction: every branch's elements become optional.

    The storage reconstruction view guards optional/choice children with
    ``CASE WHEN col IS NOT NULL THEN XMLElement(...) END``; each branch's
    element keeps a per-branch guarded constructor so copy semantics stay
    exact.
    """
    particles = []
    branch_pairs = [(condition, value) for condition, value in expr.whens]
    if expr.otherwise is not None:
        branch_pairs.append((None, expr.otherwise))
    for condition, branch in branch_pairs:
        if isinstance(branch, Const) and branch.value is None:
            continue
        for particle in _infer_content(branch, sources):
            source = sources.get(id(particle.decl))
            if (
                source is not None
                and source.constructor is not None
                and condition is not None
            ):
                source.constructor = CaseWhen(
                    [(condition, source.constructor)], Const(None)
                )
            occurs = OPTIONAL if particle.occurs == ONE else MANY
            particles.append(Particle(particle.decl, occurs))
    return particles


def _infer_subquery(subquery, sources):
    """A scalar subquery inside content: XMLAgg(...) → occurs *; a plain
    XML-producing subquery → occurs ?."""
    outputs = subquery.query.outputs
    if len(outputs) != 1:
        raise RewriteError("XML subquery must have one output")
    _, inner = outputs[0]
    if isinstance(inner, XMLAgg):
        aggregated = inner.expr
        if isinstance(aggregated, XMLElement):
            decl = _infer_element(aggregated, sources, subquery)
            return [Particle(decl, MANY)]
        raise RewriteError("XMLAgg over non-XMLElement is not supported")
    if isinstance(inner, XMLElement):
        decl = _infer_element(inner, sources, subquery)
        return [Particle(decl, OPTIONAL)]
    raise RewriteError(
        "unsupported subquery output %r" % type(inner).__name__
    )
