"""Scalar SQL expressions.

Expressions evaluate against an *environment*: a mapping from table alias
to a ``{column: value}`` dict for the current row of that alias.  Correlated
subqueries simply see the outer environment merged in.

Every expression renders itself to SQL text (``to_sql``) so rewritten plans
can be shown in the paper's Table 7 / Table 11 form.
"""

from __future__ import annotations

from repro.errors import DatabaseError


class SqlExpr:
    """Base class for scalar expressions."""

    def evaluate(self, env, db, stats):
        raise NotImplementedError

    def to_sql(self):
        raise NotImplementedError

    def child_exprs(self):
        return ()

    def iter_tree(self):
        yield self
        for child in self.child_exprs():
            for node in child.iter_tree():
                yield node

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.to_sql())


class Const(SqlExpr):
    """A literal value."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, env, db, stats):
        return self.value

    def to_sql(self):
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'%s'" % self.value.replace("'", "''")
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, float) and self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


class ColumnRef(SqlExpr):
    """A (possibly alias-qualified) column reference."""

    def __init__(self, column, table=None):
        self.column = column
        self.table = table

    def evaluate(self, env, db, stats):
        if self.table is not None:
            row = env.get(self.table)
            if row is None:
                raise DatabaseError(
                    "alias %r is not in scope (have: %s)"
                    % (self.table, ", ".join(sorted(env)) or "none")
                )
            if self.column not in row:
                raise DatabaseError(
                    "no column %r in alias %r" % (self.column, self.table)
                )
            return row[self.column]
        matches = [row for row in env.values() if self.column in row]
        if not matches:
            raise DatabaseError("unknown column %r" % self.column)
        if len(matches) > 1:
            raise DatabaseError("ambiguous column %r" % self.column)
        return matches[0][self.column]

    def to_sql(self):
        if self.table:
            return '"%s"."%s"' % (self.table.upper(), self.column.upper())
        return '"%s"' % self.column.upper()


class BinOp(SqlExpr):
    """Binary operators: comparisons, arithmetic, AND/OR, || concat."""

    _COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
    _ARITHMETIC = {"+", "-", "*", "/"}

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def child_exprs(self):
        return (self.left, self.right)

    def evaluate(self, env, db, stats):
        op = self.op
        if op == "AND":
            return bool(self.left.evaluate(env, db, stats)) and bool(
                self.right.evaluate(env, db, stats)
            )
        if op == "OR":
            return bool(self.left.evaluate(env, db, stats)) or bool(
                self.right.evaluate(env, db, stats)
            )
        left = self.left.evaluate(env, db, stats)
        right = self.right.evaluate(env, db, stats)
        if op == "||":
            return _text(left) + _text(right)
        if left is None or right is None:
            return None if op in self._ARITHMETIC else False
        if op in self._COMPARISONS:
            if isinstance(left, str) or isinstance(right, str):
                left, right = _text(left), _text(right)
            return self._compare(op, left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise DatabaseError("division by zero")
            return left / right
        raise DatabaseError("unknown operator %r" % op)

    @staticmethod
    def _compare(op, left, right):
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    def to_sql(self):
        return "%s %s %s" % (self.left.to_sql(), self.op, self.right.to_sql())


class Not(SqlExpr):
    def __init__(self, operand):
        self.operand = operand

    def child_exprs(self):
        return (self.operand,)

    def evaluate(self, env, db, stats):
        return not bool(self.operand.evaluate(env, db, stats))

    def to_sql(self):
        return "NOT (%s)" % self.operand.to_sql()


class IsNull(SqlExpr):
    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated

    def child_exprs(self):
        return (self.operand,)

    def evaluate(self, env, db, stats):
        result = self.operand.evaluate(env, db, stats) is None
        return not result if self.negated else result

    def to_sql(self):
        return "%s IS %sNULL" % (
            self.operand.to_sql(), "NOT " if self.negated else ""
        )


class CaseWhen(SqlExpr):
    """``CASE WHEN cond THEN value ... ELSE value END``."""

    def __init__(self, whens, otherwise=None):
        self.whens = whens  # list of (condition, value) expr pairs
        self.otherwise = otherwise

    def child_exprs(self):
        out = []
        for condition, value in self.whens:
            out.extend((condition, value))
        if self.otherwise is not None:
            out.append(self.otherwise)
        return tuple(out)

    def evaluate(self, env, db, stats):
        for condition, value in self.whens:
            if bool(condition.evaluate(env, db, stats)):
                return value.evaluate(env, db, stats)
        if self.otherwise is not None:
            return self.otherwise.evaluate(env, db, stats)
        return None

    def to_sql(self):
        parts = ["CASE"]
        for condition, value in self.whens:
            parts.append("WHEN %s THEN %s" % (condition.to_sql(), value.to_sql()))
        if self.otherwise is not None:
            parts.append("ELSE %s" % self.otherwise.to_sql())
        parts.append("END")
        return " ".join(parts)


class FuncCall(SqlExpr):
    """A small library of scalar SQL functions."""

    def __init__(self, name, args):
        self.name = name.upper()
        self.args = args

    def child_exprs(self):
        return tuple(self.args)

    def evaluate(self, env, db, stats):
        values = [arg.evaluate(env, db, stats) for arg in self.args]
        name = self.name
        if name == "UPPER":
            return _text(values[0]).upper()
        if name == "LOWER":
            return _text(values[0]).lower()
        if name == "LENGTH":
            return float(len(_text(values[0])))
        if name == "ABS":
            return abs(values[0])
        if name == "ROUND":
            digits = int(values[1]) if len(values) > 1 else 0
            return round(values[0], digits)
        if name == "SUBSTR":
            text = _text(values[0])
            start = int(values[1]) - 1
            if len(values) > 2:
                return text[start:start + int(values[2])]
            return text[start:]
        if name == "CONCAT":
            return "".join(_text(value) for value in values)
        if name == "COALESCE":
            for value in values:
                if value is not None:
                    return value
            return None
        if name == "TO_CHAR":
            return _text(values[0])
        if name == "MOD":
            return values[0] % values[1]
        raise DatabaseError("unknown SQL function %s()" % name)

    def to_sql(self):
        return "%s(%s)" % (
            self.name, ", ".join(arg.to_sql() for arg in self.args)
        )


class TreeContains(SqlExpr):
    """Structural containment: is ``anc_alias``'s row a proper ancestor of
    ``desc_alias``'s row in the shredded node table?

    Evaluation is the *naive* semantics the paper's tree-walk baseline pays
    for: walk the descendant's ``parent_id`` chain with one ``node_id``
    index probe per hop until the ancestor (or the root) is reached.  The
    cost planner recognises a join on this predicate and, when a structural
    path index exists, replaces the walk with a
    :class:`~repro.rdb.plan.StructuralJoin` over containment labels.
    """

    def __init__(self, table_name, anc_alias, desc_alias):
        self.table_name = table_name
        self.anc_alias = anc_alias
        self.desc_alias = desc_alias
        # Exposed as children so alias-reference analysis (conjunct
        # classification, correlation checks) sees both sides.
        self._refs = (
            ColumnRef("node_id", anc_alias),
            ColumnRef("parent_id", desc_alias),
        )

    def child_exprs(self):
        return self._refs

    def evaluate(self, env, db, stats):
        anc = env[self.anc_alias]
        desc = env[self.desc_alias]
        if anc["doc_id"] != desc["doc_id"]:
            return False
        target = anc["node_id"]
        table = db.table(self.table_name)
        index = db.find_index(self.table_name, "node_id")
        if index is None:
            raise DatabaseError(
                "TREE_CONTAINS needs a node_id index on %r"
                % self.table_name)
        parent_position = table.schema.position_of("parent_id")
        parent = desc["parent_id"]
        while parent:
            if parent == target:
                return True
            row_ids = index.lookup_eq(parent, stats=stats)
            if not row_ids:
                return False
            stats.rows_scanned += 1
            parent = table.fetch(row_ids[0])[parent_position]
        return False

    def to_sql(self):
        return "TREE_CONTAINS(%s, %s)" % (self.anc_alias, self.desc_alias)


class ScalarSubquery(SqlExpr):
    """A correlated scalar subquery: ``(SELECT expr FROM ... WHERE ...)``.

    If the select expression is an aggregate (including ``XMLAgg``), all
    matching rows feed the aggregate; otherwise at most one row may match.
    """

    def __init__(self, query):
        self.query = query  # a plan.Query with exactly one output

    def child_exprs(self):
        return ()

    def evaluate(self, env, db, stats):
        values = self.query.execute_scalar(db, env, stats)
        return values

    def to_sql(self):
        return "(%s)" % self.query.to_sql()


def _text(value):
    if value is None:
        return ""
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# Convenience constructors used throughout the rewrite and tests.

def col(name, table=None):
    return ColumnRef(name, table)


def const(value):
    return Const(value)


def eq(left, right):
    return BinOp("=", left, right)


def gt(left, right):
    return BinOp(">", left, right)


def and_(left, right):
    return BinOp("AND", left, right)


def concat(*parts):
    expr = parts[0]
    for part in parts[1:]:
        expr = BinOp("||", expr, part)
    return expr
