"""Column types and table schemas for the relational engine."""

from __future__ import annotations

from repro.errors import CatalogError, DatabaseError
from repro.xmlmodel.nodes import Node

INT = "int"
FLOAT = "float"
TEXT = "text"
XML = "xml"

_TYPES = frozenset([INT, FLOAT, TEXT, XML])


class Column:
    """A typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name, type_=TEXT):
        if type_ not in _TYPES:
            raise CatalogError("unknown column type %r" % type_)
        self.name = name
        self.type = type_

    def coerce(self, value):
        """Coerce a Python value to this column's storage type."""
        if value is None:
            return None
        if self.type == INT:
            return int(value)
        if self.type == FLOAT:
            return float(value)
        if self.type == TEXT:
            return value if isinstance(value, str) else str(value)
        if self.type == XML:
            if not isinstance(value, (Node, str)):
                raise DatabaseError(
                    "XML column %r expects a node or markup text" % self.name
                )
            return value
        raise AssertionError("unreachable")

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.type)


class TableSchema:
    """Ordered column list with name lookup."""

    def __init__(self, name, columns):
        self.name = name
        self.columns = list(columns)
        self._index = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise CatalogError(
                    "duplicate column %r in table %r" % (column.name, name)
                )
            self._index[column.name] = position

    def position_of(self, column_name):
        if column_name not in self._index:
            raise CatalogError(
                "no column %r in table %r" % (column_name, self.name)
            )
        return self._index[column_name]

    def column(self, column_name):
        return self.columns[self.position_of(column_name)]

    def has_column(self, column_name):
        return column_name in self._index

    def column_names(self):
        return [column.name for column in self.columns]

    def coerce_row(self, values):
        if len(values) != len(self.columns):
            raise DatabaseError(
                "table %r expects %d values, got %d"
                % (self.name, len(self.columns), len(values))
            )
        return tuple(
            column.coerce(value)
            for column, value in zip(self.columns, values)
        )
