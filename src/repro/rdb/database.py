"""The database facade: catalog, DDL/DML, views, query execution."""

from __future__ import annotations

import itertools

from repro.errors import CatalogError
from repro.obs.feedback import FeedbackController
from repro.rdb.btree import BTreeIndex
from repro.rdb.plan import ExecutionStats, Query
from repro.rdb.planner import optimize_query
from repro.rdb.stats import StatisticsCatalog
from repro.rdb.table import HeapTable
from repro.rdb.types import Column, TableSchema


class View:
    """A named query.  XMLType views (paper Table 3) are plain views whose
    single output column is an XML construction expression; ``metadata``
    carries whatever the rewrite needs (e.g. the inferred structural
    schema)."""

    def __init__(self, name, query, metadata=None):
        self.name = name
        self.query = query
        self.metadata = metadata or {}

    @property
    def xml_output(self):
        """(name, expr) of the single output column, for XMLType views."""
        if len(self.query.outputs) != 1:
            raise CatalogError(
                "view %r has %d output columns, expected 1"
                % (self.name, len(self.query.outputs))
            )
        return self.query.outputs[0]

    def fingerprint(self):
        """Stable hash of the view definition (name + defining query) —
        the cache-key component the serving layer uses for view sources."""
        import hashlib

        return hashlib.sha256(
            ("view:%s:%s" % (self.name, self.query.fingerprint()))
            .encode("utf-8")
        ).hexdigest()


class Database:
    """An in-process database instance."""

    def __init__(self):
        self._tables = {}
        self._indexes = {}
        self._views = {}
        self._structural = {}  # table name -> StructuralPathIndex
        self._index_names = itertools.count(1)
        self.stats = StatisticsCatalog(self)
        # Q-error feedback loop; observe-only until a FeedbackPolicy is
        # enabled (db.feedback.enable(...))
        self.feedback = FeedbackController(self)

    # -- DDL ----------------------------------------------------------------

    def create_table(self, name, columns):
        """``columns`` is a list of Column or (name, type) pairs."""
        if name in self._tables:
            raise CatalogError("table %r already exists" % name)
        columns = [
            column if isinstance(column, Column) else Column(*column)
            for column in columns
        ]
        table = HeapTable(TableSchema(name, columns))
        self._tables[name] = table
        return table

    def drop_table(self, name):
        self.table(name)  # raises if missing
        del self._tables[name]
        for index_name in [
            index_name
            for index_name, index in self._indexes.items()
            if index.table_name == name
        ]:
            del self._indexes[index_name]
        self._structural.pop(name, None)
        self.stats.note_ddl(name)

    def create_index(self, table_name, column_name, index_name=None):
        """Build a B-tree index over existing rows; maintained on insert."""
        table = self.table(table_name)
        position = table.schema.position_of(column_name)
        if index_name is None:
            index_name = "idx_%s_%s" % (table_name, column_name)
        if index_name in self._indexes:
            raise CatalogError("index %r already exists" % index_name)
        index = BTreeIndex(index_name, table_name, column_name)
        index.build(
            (row[position], row_id) for row_id, row in table.scan()
        )
        self._indexes[index_name] = index
        self.stats.note_ddl(table_name)
        return index

    def register_structural_index(self, index):
        """Attach a :class:`~repro.rdb.structindex.StructuralPathIndex` to
        its table.  DDL for fingerprint/stats purposes: plan caches keyed
        on the catalog fingerprint see a different physical design."""
        table_name = index.table_name
        self.table(table_name)  # raises if missing
        if table_name in self._structural:
            raise CatalogError(
                "table %r already has a structural index" % table_name)
        self._structural[table_name] = index
        self.stats.note_ddl(table_name)
        return index

    def structural_index(self, table_name):
        """The table's structural path index, or None."""
        return self._structural.get(table_name)

    def create_view(self, name, query, metadata=None):
        if name in self._views:
            raise CatalogError("view %r already exists" % name)
        view = View(name, query, metadata)
        self._views[name] = view
        return view

    # -- DML -----------------------------------------------------------------

    def insert(self, table_name, *rows):
        table = self.table(table_name)
        row_ids = []
        for values in rows:
            row_id = table.insert(values)
            row_ids.append(row_id)
            stored = table.fetch(row_id)
            for index in self._indexes.values():
                if index.table_name == table_name:
                    position = table.schema.position_of(index.column_name)
                    index.insert(stored[position], row_id)
        if rows:
            self.stats.note_dml(table_name)
        return row_ids

    # -- catalog lookups ------------------------------------------------------

    def table(self, name):
        if name not in self._tables:
            raise CatalogError("no table %r" % name)
        return self._tables[name]

    def table_names(self):
        return sorted(self._tables)

    def has_table(self, name):
        return name in self._tables

    def index(self, name):
        if name not in self._indexes:
            raise CatalogError("no index %r" % name)
        return self._indexes[name]

    def find_index(self, table_name, column_name):
        """Any index on (table, column), or None."""
        for index in self._indexes.values():
            if (
                index.table_name == table_name
                and index.column_name == column_name
            ):
                return index
        return None

    def indexes_on(self, table_name):
        """All indexes over one table, sorted by (column, name) — the
        deterministic order storage fingerprints hash over."""
        return sorted(
            (
                index for index in self._indexes.values()
                if index.table_name == table_name
            ),
            key=lambda index: (index.column_name, index.name),
        )

    def view(self, name):
        if name not in self._views:
            raise CatalogError("no view %r" % name)
        return self._views[name]

    def has_view(self, name):
        return name in self._views

    # -- statistics ------------------------------------------------------------

    def analyze(self, table_name=None):
        """Compute and cache optimizer statistics (ANALYZE)."""
        return self.stats.analyze(table_name)

    def stats_version(self):
        """Monotonic statistics version; bumps on ANALYZE and on DML/DDL
        that invalidates analyzed statistics.  Plan caches key on this."""
        return self.stats.version

    def fingerprint(self):
        """Stable hash of the catalog shape: every table schema, index
        and view definition.  Anything that changes what the optimizer
        could pick (a new index, a different view) changes this value.
        The serve tier's persistent artifact store embeds it in entry
        headers, so a plan compiled against one catalog is never loaded
        into a process serving a different one."""
        import hashlib

        parts = []
        for name in sorted(self._tables):
            schema = self._tables[name].schema
            parts.append("table:%s(%s)" % (name, ",".join(
                "%s:%s" % (column.name, column.type)
                for column in schema.columns
            )))
        for name in sorted(self._indexes):
            index = self._indexes[name]
            parts.append("index:%s(%s.%s)" % (name, index.table_name,
                                              index.column_name))
        for name in sorted(self._structural):
            parts.append(self._structural[name].fingerprint_token())
        for name in sorted(self._views):
            parts.append("view:%s" % self._views[name].fingerprint())
        return hashlib.sha256(";".join(parts).encode("utf-8")).hexdigest()

    # -- execution -------------------------------------------------------------

    def execute(self, query, env=None, optimize=True, stats=None, level=None):
        """Execute a :class:`Query`; returns (rows, stats).  Pass a
        prepared :class:`ExecutionStats` (e.g. with a
        :class:`~repro.rdb.plan.PlanProfiler` attached) to collect into."""
        if optimize:
            query = optimize_query(query, self, level=level)
        return query.execute(self, env=env, stats=stats or ExecutionStats())

    def optimize(self, query, level=None, ledger=None, decorrelate=None):
        return optimize_query(query, self, level=level, ledger=ledger,
                              decorrelate=decorrelate)

    def explain(self, query, analyze=False, env=None, level=None):
        """EXPLAIN (or EXPLAIN ANALYZE) a :class:`Query` or a SQL SELECT
        string, as text: the optimised operator tree with ``#n`` node
        ids and per-node cost estimates; with ``analyze=True`` the query
        runs and actual row counts/timings appear next to the estimates.
        A thin shim over :meth:`explain_report`, which returns the
        :class:`~repro.obs.explain.ExplainReport` itself."""
        return self.explain_report(query, analyze=analyze, env=env,
                                   level=level).render()

    def explain_report(self, query, analyze=False, env=None, level=None):
        """The structured EXPLAIN surface for one query: an
        :class:`~repro.obs.explain.ExplainReport` over the optimised
        plan (executed here when ``analyze=True``), with ``.render()``
        for the text and ``.to_json()`` for the structured form."""
        from repro.obs.explain import ExplainReport
        from repro.rdb.plan import assign_plan_node_ids

        if isinstance(query, str):
            from repro.rdb.sql_parser import parse_select

            query = parse_select(query)
        query = self.optimize(query, level=level)
        assign_plan_node_ids(query)
        return ExplainReport.for_query(self, query, analyze=analyze, env=env)

    def sql(self, statement, env=None):
        """Parse and execute one SQL statement (see
        :mod:`repro.rdb.sql_parser` for the supported subset)."""
        from repro.rdb.sql_parser import execute_sql

        return execute_sql(self, statement, env=env)
