"""Structural path index: root-to-node paths mapped to label ranges.

The index is the physical-design answer to descendant-axis (``//``) steps:
instead of walking parent chains, an element name resolves to the set of
root-to-node *paths* it appears under, and each path holds a B-tree over
``(doc_id, start)`` containment-label keys (see
:mod:`repro.xmlmodel.labels`).  A descendant step then becomes a merged
index range scan in document order — the input a stack-based structural
join (:class:`repro.rdb.plan.StructuralJoin`) consumes without sorting.

Maintained incrementally at ingest (DOM or streaming — both insert elements
in preorder, so per-path B-tree appends are already sorted), and registered
with the owning :class:`~repro.rdb.database.Database` so its presence and
entry count participate in catalog/storage fingerprints, invalidating the
serve tier's plan cache exactly like any other DDL.
"""

from __future__ import annotations

import heapq

from repro.obs.metrics import global_metrics
from repro.rdb.btree import BTreeIndex


class StructuralPathIndex:
    """Per-table index: path → B-tree of ``(doc_id, start)`` → row id."""

    def __init__(self, table_name):
        self.table_name = table_name
        self._by_path = {}    # path -> BTreeIndex
        self._by_name = {}    # element name -> sorted list of paths
        self._entries = 0

    def __len__(self):
        return self._entries

    # -- maintenance ---------------------------------------------------------

    def add(self, path, name, doc_id, start, row_id):
        """Record one element occurrence.  ``path`` is the root-to-node
        path (e.g. ``/tree/node/label``); ``name`` its last segment."""
        index = self._by_path.get(path)
        if index is None:
            index = BTreeIndex(
                "sidx_%s%s" % (self.table_name, path.replace("/", "_")),
                self.table_name, "($doc,$start)")
            self._by_path[path] = index
            paths = self._by_name.setdefault(name, [])
            paths.append(path)
            paths.sort()
        index.insert((doc_id, start), row_id)
        self._entries += 1
        global_metrics().gauge("structural.index.entries").set(self._entries)

    # -- lookups -------------------------------------------------------------

    def paths(self):
        return sorted(self._by_path)

    def paths_for(self, name):
        """All indexed root-to-node paths ending in *name*."""
        return list(self._by_name.get(name, ()))

    def count_name(self, name):
        """Number of indexed occurrences of *name* (cost estimation)."""
        return sum(
            len(self._by_path[path]) for path in self._by_name.get(name, ()))

    def scan_name(self, name, doc_id=None, stats=None):
        """Yield ``((doc_id, start), row_id)`` for every element named
        *name*, merged across its paths into ``(doc_id, start)`` order —
        i.e. document order.  With *doc_id*, restricted to one document
        via a range probe per path."""
        streams = []
        for path in self._by_name.get(name, ()):
            index = self._by_path[path]
            if doc_id is None:
                pairs = index.lookup_range_items(stats=stats)
            else:
                pairs = index.lookup_range_items(
                    low=(doc_id, 0), high=(doc_id + 1, 0),
                    low_inclusive=True, high_inclusive=False, stats=stats)
            if pairs:
                streams.append(pairs)
            if stats is not None:
                stats.struct_range_scans += 1
        global_metrics().counter("structural.index.range_scans").inc(
            max(1, len(streams)))
        if len(streams) == 1:
            yield from streams[0]
        elif streams:
            yield from heapq.merge(*streams)

    def fingerprint_token(self):
        """Deterministic catalog-shape token: the indexed path set.  Entry
        counts deliberately do not participate — row-count changes bump the
        statistics version instead, mirroring value indexes."""
        return "structpath:%s(%s)" % (
            self.table_name, ",".join(sorted(self._by_path)))
