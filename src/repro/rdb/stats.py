"""ANALYZE statistics: the catalog the cost-based planner estimates from.

Real relational optimizers (and the engines the paper targets) pick access
paths from *statistics*, not rules: per-table row counts, per-column
distinct-value counts and min/max bounds, and histograms over indexed
columns.  :class:`StatisticsCatalog` is that subsystem for the in-process
engine:

* ``analyze(table)`` (or ``analyze()`` for every table) computes and
  caches a :class:`TableStats` per table — row count, per-column
  :class:`ColumnStats` (distinct count, null count, min/max) and, for
  columns that carry a B-tree index, an equi-width :class:`Histogram`
  the planner uses for range-selectivity estimation;
* DML on an analyzed table drops its cached stats (the numbers are no
  longer trustworthy) — the planner falls back to live row counts and
  default selectivities until the next ``ANALYZE``;
* every change the optimizer could *observe* — an ``ANALYZE``, or DML
  that invalidated analyzed stats — bumps a monotonically increasing
  ``version``.  Storage fingerprints and the serving layer's plan-cache
  key incorporate that version, so a compiled plan chosen under stale
  statistics is never served again once the statistics move.

Estimation itself (selectivity formulas, cost constants) lives in
:mod:`repro.rdb.planner`; this module only owns the numbers.
"""

from __future__ import annotations

#: bucket count for equi-width histograms over indexed numeric columns
HISTOGRAM_BUCKETS = 16


class Histogram:
    """Equi-width histogram over a numeric column's non-NULL values."""

    __slots__ = ("low", "high", "width", "counts", "total")

    def __init__(self, values, buckets=HISTOGRAM_BUCKETS):
        self.low = min(values)
        self.high = max(values)
        self.total = len(values)
        span = float(self.high - self.low)
        if span <= 0.0:
            # single-valued column: one bucket holding everything
            self.width = 1.0
            self.counts = [self.total]
            return
        self.width = span / buckets
        self.counts = [0] * buckets
        for value in values:
            position = int((value - self.low) / self.width)
            if position >= buckets:  # value == high lands in the last bucket
                position = buckets - 1
            self.counts[position] += 1

    def selectivity(self, op, key):
        """Estimated fraction of rows satisfying ``column op key``."""
        if self.total == 0:
            return 0.0
        if op == "=":
            if key < self.low or key > self.high:
                return 0.0
            bucket = self._bucket_of(key)
            # assume uniformity inside the bucket: one distinct value's share
            return self.counts[bucket] / float(self.total) / max(
                1.0, self.width
            ) if self.width > 1.0 else self.counts[bucket] / float(self.total)
        if op in ("<", "<="):
            return self._fraction_below(key, inclusive=(op == "<="))
        if op in (">", ">="):
            return 1.0 - self._fraction_below(key, inclusive=(op == ">"))
        return 1.0

    def _bucket_of(self, key):
        position = int((key - self.low) / self.width)
        return min(max(position, 0), len(self.counts) - 1)

    def _fraction_below(self, key, inclusive):
        if key < self.low or (key == self.low and not inclusive):
            return 0.0
        if key > self.high or (key == self.high and inclusive):
            return 1.0
        bucket = self._bucket_of(key)
        below = sum(self.counts[:bucket])
        # linear interpolation inside the boundary bucket
        bucket_low = self.low + bucket * self.width
        fraction = (key - bucket_low) / self.width
        below += self.counts[bucket] * min(max(fraction, 0.0), 1.0)
        return min(1.0, below / float(self.total))


class ColumnStats:
    """Distinct/null counts and value bounds for one column."""

    __slots__ = ("column_name", "distinct", "null_count", "min", "max",
                 "histogram")

    def __init__(self, column_name, distinct, null_count, min_value,
                 max_value, histogram=None):
        self.column_name = column_name
        self.distinct = distinct
        self.null_count = null_count
        self.min = min_value
        self.max = max_value
        self.histogram = histogram

    def as_dict(self):
        return {
            "column": self.column_name,
            "distinct": self.distinct,
            "nulls": self.null_count,
            "min": self.min,
            "max": self.max,
            "histogram_buckets": (
                len(self.histogram.counts) if self.histogram else 0
            ),
        }


class TableStats:
    """ANALYZE output for one table."""

    __slots__ = ("table_name", "row_count", "columns", "version")

    def __init__(self, table_name, row_count, columns, version):
        self.table_name = table_name
        self.row_count = row_count
        self.columns = columns          # {column_name: ColumnStats}
        self.version = version          # catalog version when computed

    def column(self, column_name):
        return self.columns.get(column_name)

    def as_dict(self):
        return {
            "table": self.table_name,
            "rows": self.row_count,
            "columns": {
                name: stats.as_dict()
                for name, stats in sorted(self.columns.items())
            },
        }


class StatisticsCatalog:
    """Per-database statistics store with change versioning.

    ``version`` increases whenever the numbers the planner could have
    consumed change: on every ``analyze()`` and whenever DML/DDL drops a
    table's cached stats.  It never decreases, so it is safe to embed in
    cache keys and fingerprints.
    """

    def __init__(self, db):
        self._db = db
        self._tables = {}   # table_name -> TableStats
        self.version = 0

    # -- computing ---------------------------------------------------------------

    def analyze(self, table_name=None):
        """Compute (and cache) statistics; returns the TableStats computed
        (a single one, or ``{name: TableStats}`` for a whole-database
        ANALYZE)."""
        self.version += 1
        if table_name is not None:
            self._tables[table_name] = self._compute(table_name)
            return self._tables[table_name]
        out = {}
        for name in self._db.table_names():
            out[name] = self._tables[name] = self._compute(name)
        return out

    def _compute(self, table_name):
        table = self._db.table(table_name)
        indexed = {
            index.column_name for index in self._db.indexes_on(table_name)
        }
        names = table.schema.column_names()
        per_column = {name: [] for name in names}
        row_count = 0
        for _, row in table.scan():
            row_count += 1
            for name, value in zip(names, row):
                per_column[name].append(value)
        columns = {}
        for name in names:
            values = [value for value in per_column[name] if value is not None]
            null_count = row_count - len(values)
            histogram = None
            if not values:
                columns[name] = ColumnStats(name, 0, null_count, None, None)
                continue
            numeric = all(
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                for value in values
            )
            if numeric:
                min_value, max_value = min(values), max(values)
                if name in indexed:
                    histogram = Histogram(values)
            else:
                text = [str(value) for value in values]
                min_value, max_value = min(text), max(text)
            columns[name] = ColumnStats(
                name, len(set(values)), null_count, min_value, max_value,
                histogram=histogram,
            )
        return TableStats(table_name, row_count, columns, self.version)

    # -- lookup ------------------------------------------------------------------

    def table_stats(self, table_name):
        """Cached ANALYZE output, or None when never analyzed (or since
        invalidated)."""
        return self._tables.get(table_name)

    def column_stats(self, table_name, column_name):
        stats = self._tables.get(table_name)
        return stats.column(column_name) if stats is not None else None

    def analyzed_tables(self):
        return sorted(self._tables)

    # -- invalidation ------------------------------------------------------------

    def note_dml(self, table_name):
        """DML touched ``table_name``: analyzed stats are stale, drop them
        (bumping the version so cached plans chosen under them die too).
        A table that was never analyzed doesn't bump — the planner was
        already running on live row counts and defaults."""
        if self._tables.pop(table_name, None) is not None:
            self.version += 1

    def note_ddl(self, table_name):
        """Index/table DDL: histogram coverage changed, drop cached stats
        so the next ANALYZE rebuilds them for the new index set."""
        self.note_dml(table_name)

    def invalidate(self, table_name=None):
        """Explicitly drop cached stats (all tables when None)."""
        if table_name is not None:
            self.note_dml(table_name)
            return
        if self._tables:
            self._tables.clear()
            self.version += 1
