"""SQL/XML publishing functions (SQL:2003 part 14, as in the paper).

``XMLElement``, ``XMLAttributes``, ``XMLForest``, ``XMLConcat``,
``XMLComment`` construct XML values from relational data; ``XMLAgg`` and
the classic SQL aggregates (COUNT/SUM/AVG/MIN/MAX) are aggregate
expressions evaluated by the executor's aggregate machinery.

XML values flowing through the engine are DOM nodes (or lists of nodes);
scalar values inserted into XML content become text nodes.

Every publishing function supports two evaluation modes:

* ``evaluate(env, db, stats)`` — materialize the value as DOM nodes (the
  classic path, used by predicates, functional comparison and callers
  that need the tree);
* ``stream_pieces(env, db, stats, escape)`` — the incremental emitter:
  yield serialized markup pieces directly, never building the result
  subtree.  Concatenating the pieces is byte-identical to serializing
  the ``evaluate`` result, but peak memory is bounded by the largest
  *single* piece (one scalar, one attribute list, one copied stored
  subtree) instead of the whole result document.  ``XMLAgg`` keeps its
  group *lazily* — it accumulates ``(order keys, row environment)``
  pairs and only renders each row when finalized, so the streaming path
  (:meth:`repro.rdb.plan.Query.stream_pieces`) emits one aggregated
  element at a time.
"""

from __future__ import annotations

from repro.errors import DatabaseError
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import Node, NodeKind, QName
from repro.xmlmodel.serializer import escape_attribute, escape_text, serialize
from repro.rdb.expressions import ScalarSubquery, SqlExpr, _text

# env key under which aggregate accumulator state is passed during the
# final evaluation of an aggregate query.
AGG_STATE = "\0agg-state"


class XmlExpr(SqlExpr):
    """Marker base class for XML-producing expressions."""


def append_xml_value(builder, value):
    """Append an evaluated SQL value to XML content under construction."""
    if value is None:
        return
    if isinstance(value, Node):
        if value.kind == NodeKind.DOCUMENT:
            for child in value.children:
                builder.copy_node(child)
        else:
            builder.copy_node(value)
    elif isinstance(value, list):
        for item in value:
            append_xml_value(builder, item)
    else:
        builder.text(_text(value))


def plain_text(value):
    """Top-level scalar rendering: unescaped, SQL floats carrying integral
    values printed as integers.  This is how ``TransformResult.
    serialized_rows`` renders non-node row items, so the streaming path
    must use the same function for byte-identical output."""
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    if value is None:
        return ""
    return str(value)


def _lexical(name):
    """The serialized tag/attribute name for a string or QName."""
    return name.lexical if isinstance(name, QName) else str(name)


def stream_value_pieces(value, escape=True):
    """Yield serialized pieces of an already-evaluated SQL value.

    ``escape=True`` renders the value as *element content* (the
    :func:`append_xml_value` + serializer semantics: nodes serialize,
    scalars become escaped text, ``None`` disappears).  ``escape=False``
    is the top-level row mode used by :meth:`repro.rdb.plan.Query.
    stream_pieces`, matching how ``core.transform`` renders result rows
    (nodes serialize, scalars stay unescaped :func:`plain_text`).
    """
    if value is None:
        return
    if isinstance(value, Node):
        if value.kind == NodeKind.DOCUMENT:
            for child in value.children:
                yield serialize(child)
        elif value.kind == NodeKind.ATTRIBUTE:
            # Materialization splices attribute nodes into the enclosing
            # start tag; a piece stream has already emitted it.  No plan
            # the rewrite generates puts attribute nodes in content.
            raise DatabaseError(
                "cannot stream an attribute node as element content"
            )
        else:
            yield serialize(value)
    elif isinstance(value, list):
        for item in value:
            for piece in stream_value_pieces(item, escape=escape):
                yield piece
    elif escape:
        yield escape_text(_text(value))
    else:
        yield plain_text(value)


def stream_expr_pieces(expr, env, db, stats, escape=True):
    """Yield serialized pieces of ``expr`` evaluated against ``env``.

    Publishing functions stream natively (their ``stream_pieces``
    method); correlated scalar subqueries stream through
    :meth:`repro.rdb.plan.Query.stream_scalar_pieces` so aggregated
    groups (the per-repeating-element ``XMLAgg`` subqueries the SQL
    merge builds) never materialize; every other expression is evaluated
    and rendered by :func:`stream_value_pieces`.
    """
    stream = getattr(expr, "stream_pieces", None)
    if stream is not None:
        return stream(env, db, stats, escape=escape)
    if isinstance(expr, ScalarSubquery):
        return expr.query.stream_scalar_pieces(db, env, stats, escape=escape)
    return stream_value_pieces(expr.evaluate(env, db, stats), escape=escape)


class XMLElement(XmlExpr):
    """``XMLElement("name", XMLAttributes(...), content...)``."""

    def __init__(self, name, *content, attributes=None):
        self.name = name
        self.attributes = attributes or []  # list of (attr_name, expr)
        self.content = list(content)

    def child_exprs(self):
        return tuple(expr for _, expr in self.attributes) + tuple(self.content)

    def evaluate(self, env, db, stats):
        builder = TreeBuilder()
        builder.start_element(self.name)
        for attr_name, expr in self.attributes:
            value = expr.evaluate(env, db, stats)
            if value is not None:
                builder.attribute(attr_name, _text(value))
        for expr in self.content:
            append_xml_value(builder, expr.evaluate(env, db, stats))
        builder.end_element()
        if stats is not None:
            stats.xml_elements += 1
        return builder.finish().children[0]

    def stream_pieces(self, env, db, stats, escape=True):
        """Incremental twin of :meth:`evaluate`: yield the element's
        markup piece by piece.  Attributes are evaluated eagerly (they
        belong to the start tag); content streams recursively, and the
        start tag is closed lazily so an element whose content renders
        empty self-closes exactly like the serializer would."""
        tag = _lexical(self.name)
        head = ["<%s" % tag]
        for attr_name, expr in self.attributes:
            value = expr.evaluate(env, db, stats)
            if value is not None:
                head.append(' %s="%s"' % (
                    _lexical(attr_name), escape_attribute(_text(value))
                ))
        yield "".join(head)
        opened = False
        for expr in self.content:
            for piece in stream_expr_pieces(expr, env, db, stats,
                                            escape=True):
                if not piece:
                    continue
                if not opened:
                    opened = True
                    yield ">"
                yield piece
        if stats is not None:
            stats.xml_elements += 1
        yield "</%s>" % tag if opened else "/>"

    def to_sql(self):
        parts = ['"%s"' % self.name]
        if self.attributes:
            rendered = ", ".join(
                "%s AS \"%s\"" % (expr.to_sql(), attr_name)
                for attr_name, expr in self.attributes
            )
            parts.append("XMLAttributes(%s)" % rendered)
        parts.extend(expr.to_sql() for expr in self.content)
        return "XMLElement(%s)" % ", ".join(parts)


class XMLForest(XmlExpr):
    """``XMLForest(expr AS name, ...)`` — one element per non-null item."""

    def __init__(self, items):
        self.items = items  # list of (name, expr)

    def child_exprs(self):
        return tuple(expr for _, expr in self.items)

    def evaluate(self, env, db, stats):
        out = []
        for name, expr in self.items:
            value = expr.evaluate(env, db, stats)
            if value is None:
                continue
            builder = TreeBuilder()
            builder.start_element(name)
            append_xml_value(builder, value)
            builder.end_element()
            if stats is not None:
                stats.xml_elements += 1
            out.append(builder.finish().children[0])
        return out

    def stream_pieces(self, env, db, stats, escape=True):
        for name, expr in self.items:
            value = expr.evaluate(env, db, stats)
            if value is None:
                continue
            tag = _lexical(name)
            yield "<%s" % tag
            opened = False
            for piece in stream_value_pieces(value, escape=True):
                if not piece:
                    continue
                if not opened:
                    opened = True
                    yield ">"
                yield piece
            if stats is not None:
                stats.xml_elements += 1
            yield "</%s>" % tag if opened else "/>"

    def to_sql(self):
        return "XMLForest(%s)" % ", ".join(
            '%s AS "%s"' % (expr.to_sql(), name) for name, expr in self.items
        )


class XMLConcat(XmlExpr):
    """``XMLConcat(a, b, ...)`` — concatenation of XML values."""

    def __init__(self, items):
        self.items = items

    def child_exprs(self):
        return tuple(self.items)

    def evaluate(self, env, db, stats):
        out = []
        for expr in self.items:
            value = expr.evaluate(env, db, stats)
            if value is None:
                continue
            if isinstance(value, list):
                out.extend(value)
            else:
                out.append(value)
        return out

    def stream_pieces(self, env, db, stats, escape=True):
        for expr in self.items:
            for piece in stream_expr_pieces(expr, env, db, stats,
                                            escape=escape):
                yield piece

    def to_sql(self):
        return "XMLConcat(%s)" % ", ".join(expr.to_sql() for expr in self.items)


class XMLComment(XmlExpr):
    def __init__(self, expr):
        self.expr = expr

    def child_exprs(self):
        return (self.expr,)

    def evaluate(self, env, db, stats):
        builder = TreeBuilder()
        builder.comment(_text(self.expr.evaluate(env, db, stats)))
        return builder.finish().children[0]

    def stream_pieces(self, env, db, stats, escape=True):
        yield "<!--%s-->" % _text(self.expr.evaluate(env, db, stats))

    def to_sql(self):
        return "XMLComment(%s)" % self.expr.to_sql()


class XMLText(XmlExpr):
    """A bare text node (convenience for generated plans)."""

    def __init__(self, expr):
        self.expr = expr

    def child_exprs(self):
        return (self.expr,)

    def evaluate(self, env, db, stats):
        value = self.expr.evaluate(env, db, stats)
        return None if value is None else _text(value)

    def stream_pieces(self, env, db, stats, escape=True):
        for piece in stream_value_pieces(self.evaluate(env, db, stats),
                                         escape=escape):
            yield piece

    def to_sql(self):
        return self.expr.to_sql()


# -- aggregates ----------------------------------------------------------------


class AggregateExpr(SqlExpr):
    """Base for aggregate expressions; the executor drives accumulation.

    ``final`` receives ``db``/``stats`` because :class:`XMLAgg` defers
    rendering its group to finalization (see below); the scalar
    aggregates ignore both.
    """

    def new_state(self):
        raise NotImplementedError

    def accumulate(self, state, env, db, stats):
        raise NotImplementedError

    def final(self, state, db, stats):
        raise NotImplementedError

    def _state(self, env):
        states = env.get(AGG_STATE)
        if states is None or id(self) not in states:
            raise DatabaseError(
                "aggregate %s used outside an aggregate query" % self.to_sql()
            )
        return states[id(self)]

    def evaluate(self, env, db, stats):
        return self.final(self._state(env), db, stats)


class XMLAgg(AggregateExpr):
    """``XMLAgg(xml_expr [ORDER BY ...])`` — aggregates XML values into a
    sequence (document order of the group).

    Accumulation is *lazy*: the state holds ``(order keys, row env)``
    pairs, and the per-row XML value is only rendered at finalization —
    or, on the streaming path, emitted one row at a time by
    :meth:`stream_pieces` without ever building the group's nodes.  Row
    environments are safe to retain: plan operators yield fresh dicts
    and never mutate a row after yielding it.
    """

    def __init__(self, expr, order_by=None):
        self.expr = expr
        self.order_by = order_by or []  # list of (expr, descending)

    def child_exprs(self):
        return (self.expr,) + tuple(expr for expr, _ in self.order_by)

    def new_state(self):
        return []

    def accumulate(self, state, env, db, stats):
        keys = tuple(
            expr.evaluate(env, db, stats) for expr, _ in self.order_by
        )
        state.append((keys, env))

    def _ordered(self, state):
        rows = state
        if self.order_by:
            for position in range(len(self.order_by) - 1, -1, -1):
                descending = self.order_by[position][1]
                rows = sorted(
                    rows, key=lambda row: row[0][position], reverse=descending
                )
        return rows

    def final(self, state, db, stats):
        out = []
        for _, env in self._ordered(state):
            value = self.expr.evaluate(env, db, stats)
            if value is None:
                continue
            if isinstance(value, list):
                out.extend(value)
            else:
                out.append(value)
        return out

    def stream_pieces(self, env, db, stats, escape=True):
        for _, row_env in self._ordered(self._state(env)):
            for piece in stream_expr_pieces(self.expr, row_env, db, stats,
                                            escape=escape):
                yield piece

    def to_sql(self):
        text = "XMLAgg(%s" % self.expr.to_sql()
        if self.order_by:
            text += " ORDER BY " + ", ".join(
                expr.to_sql() + (" DESC" if descending else "")
                for expr, descending in self.order_by
            )
        return text + ")"


class AggCall(AggregateExpr):
    """COUNT/SUM/AVG/MIN/MAX (COUNT(*) via expr=None)."""

    def __init__(self, name, expr=None):
        self.name = name.upper()
        if self.name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise DatabaseError("unknown aggregate %s" % name)
        self.expr = expr

    def child_exprs(self):
        return (self.expr,) if self.expr is not None else ()

    def new_state(self):
        return []

    def accumulate(self, state, env, db, stats):
        if self.expr is None:
            state.append(1)
            return
        value = self.expr.evaluate(env, db, stats)
        if value is not None:
            state.append(value)

    def final(self, state, db=None, stats=None):
        if self.name == "COUNT":
            return float(len(state))
        if not state:
            return None
        if self.name == "SUM":
            return float(sum(state))
        if self.name == "AVG":
            return float(sum(state)) / len(state)
        if self.name == "MIN":
            return min(state)
        return max(state)

    def to_sql(self):
        inner = "*" if self.expr is None else self.expr.to_sql()
        return "%s(%s)" % (self.name, inner)


class ListAgg(AggregateExpr):
    """``LISTAGG(expr, separator) WITHIN GROUP (ORDER BY ...)`` — string
    aggregation (used when a whole repeating subtree is taken as text)."""

    def __init__(self, expr, separator="", order_by=None):
        self.expr = expr
        self.separator = separator
        self.order_by = order_by or []  # list of (expr, descending)

    def child_exprs(self):
        return (self.expr,) + tuple(expr for expr, _ in self.order_by)

    def new_state(self):
        return []

    def accumulate(self, state, env, db, stats):
        value = self.expr.evaluate(env, db, stats)
        keys = tuple(expr.evaluate(env, db, stats) for expr, _ in self.order_by)
        state.append((keys, _text(value)))

    def final(self, state, db=None, stats=None):
        rows = state
        if self.order_by:
            for position in range(len(self.order_by) - 1, -1, -1):
                descending = self.order_by[position][1]
                rows = sorted(
                    rows, key=lambda row: row[0][position], reverse=descending
                )
        return self.separator.join(text for _, text in rows)

    def to_sql(self):
        text = "LISTAGG(%s, '%s')" % (self.expr.to_sql(), self.separator)
        if self.order_by:
            text += " WITHIN GROUP (ORDER BY %s)" % ", ".join(
                expr.to_sql() + (" DESC" if descending else "")
                for expr, descending in self.order_by
            )
        return text


def find_aggregates(expr):
    """All aggregate nodes in an expression tree (not crossing subqueries)."""
    return [
        node for node in expr.iter_tree() if isinstance(node, AggregateExpr)
    ]
