"""B-tree index emulation.

Implemented as a sorted array with binary search (``bisect``): the same
O(log n) point/range probe behaviour as a B-tree, which is the property the
paper's Figure 2 depends on ("uses B-tree index to compute the predicate").
Probe and entry counts are reported so tests and benchmarks can assert plan
shape, not just wall-clock time.
"""

from __future__ import annotations

import bisect

from repro.errors import DatabaseError


class BTreeIndex:
    """A secondary index mapping column values to row ids."""

    def __init__(self, name, table_name, column_name):
        self.name = name
        self.table_name = table_name
        self.column_name = column_name
        self._keys = []     # sorted key values
        self._row_ids = []  # parallel to _keys

    def __len__(self):
        return len(self._keys)

    def insert(self, key, row_id):
        if key is None:
            return  # NULLs are not indexed
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._row_ids.insert(position, row_id)

    def build(self, pairs):
        """Bulk-load (key, row_id) pairs."""
        entries = sorted(
            (key, row_id) for key, row_id in pairs if key is not None
        )
        self._keys = [key for key, _ in entries]
        self._row_ids = [row_id for _, row_id in entries]

    def node_visits_per_probe(self):
        """Emulated B-tree node visits for one probe: the binary-search
        descent touches ~log2(n) positions, the analogue of root-to-leaf
        node reads in a real B-tree."""
        return max(1, len(self._keys).bit_length())

    # -- probes -------------------------------------------------------------

    def lookup_eq(self, key, stats=None):
        """Row ids with exactly this key, in insertion order of the range."""
        if stats is not None:
            stats.index_probes += 1
            stats.btree_node_visits += self.node_visits_per_probe()
        low = bisect.bisect_left(self._keys, key)
        high = bisect.bisect_right(self._keys, key)
        if stats is not None:
            stats.index_entries += high - low
        return self._row_ids[low:high]

    def lookup_range(self, low=None, high=None, low_inclusive=True,
                     high_inclusive=True, stats=None):
        """Row ids with keys in [low, high] (open ends with None)."""
        start, stop = self._range_bounds(
            low, high, low_inclusive, high_inclusive, stats)
        return self._row_ids[start:stop]

    def lookup_range_items(self, low=None, high=None, low_inclusive=True,
                           high_inclusive=True, stats=None):
        """(key, row_id) pairs in key order for keys in [low, high]."""
        start, stop = self._range_bounds(
            low, high, low_inclusive, high_inclusive, stats)
        return list(zip(self._keys[start:stop], self._row_ids[start:stop]))

    def _range_bounds(self, low, high, low_inclusive, high_inclusive, stats):
        if stats is not None:
            stats.index_probes += 1
            stats.btree_node_visits += self.node_visits_per_probe()
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        if stop < start:
            stop = start
        if stats is not None:
            stats.index_entries += stop - start
        return start, stop

    def lookup_op(self, op, value, stats=None):
        """Probe by comparison operator ('=', '<', '<=', '>', '>=')."""
        if op == "=":
            return self.lookup_eq(value, stats=stats)
        if op == "<":
            return self.lookup_range(high=value, high_inclusive=False,
                                     stats=stats)
        if op == "<=":
            return self.lookup_range(high=value, stats=stats)
        if op == ">":
            return self.lookup_range(low=value, low_inclusive=False,
                                     stats=stats)
        if op == ">=":
            return self.lookup_range(low=value, stats=stats)
        raise DatabaseError("index cannot serve operator %r" % op)
