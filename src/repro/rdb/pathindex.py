"""Path/value index for CLOB-stored XMLType (paper §7.4).

The paper lists "CLOB or BLOB storage with path/value index" among the
physical models to study.  The index maps simple root-to-leaf paths
(``/table/row/id``) and attribute paths (``/table/row/@key``) to the
documents containing a leaf with a given value, so value predicates can
select candidate documents *without parsing every CLOB* — the transform
itself still materialises the selected documents.

Values are indexed both as text and (when numeric) as numbers, so both
string equality and numeric range probes work.
"""

from __future__ import annotations

from repro.rdb.btree import BTreeIndex
from repro.xmlmodel.nodes import NodeKind


class PathValueIndex:
    """(path, value) → document ids."""

    def __init__(self):
        self._text = {}     # path -> BTreeIndex over string values
        self._number = {}   # path -> BTreeIndex over numeric values
        self.entries = 0

    def add_document(self, doc_id, document):
        """Index every leaf text and attribute of one document."""
        root_element = document.document_element
        if root_element is None:
            return
        self._walk(root_element, "", doc_id)

    def _walk(self, element, prefix, doc_id):
        path = "%s/%s" % (prefix, element.name.local)
        for attribute in element.attributes:
            self._insert(
                "%s/@%s" % (path, attribute.name.local),
                attribute.value,
                doc_id,
            )
        has_element_children = False
        for child in element.children:
            if child.kind == NodeKind.ELEMENT:
                has_element_children = True
                self._walk(child, path, doc_id)
        if not has_element_children:
            value = element.string_value()
            if value:
                self._insert(path, value, doc_id)
        else:
            # Mixed content: the element's own character data is a leaf
            # value too.  Only non-whitespace runs are indexed, so
            # pretty-printed documents don't index their indentation.
            direct_text = "".join(
                child.value for child in element.children
                if child.kind == NodeKind.TEXT
            )
            if direct_text.strip():
                self._insert(path, direct_text, doc_id)

    def _insert(self, path, value, doc_id):
        self.entries += 1
        text_index = self._text.get(path)
        if text_index is None:
            text_index = BTreeIndex("pv:%s" % path, "", path)
            self._text[path] = text_index
        text_index.insert(value, doc_id)
        number = _as_number(value)
        if number is not None:
            number_index = self._number.get(path)
            if number_index is None:
                number_index = BTreeIndex("pvn:%s" % path, "", path)
                self._number[path] = number_index
            number_index.insert(number, doc_id)

    def paths(self):
        return sorted(self._text)

    def lookup(self, path, op, value, stats=None):
        """Document ids whose leaf at ``path`` satisfies ``op value``.

        Numeric ``value`` probes the numeric index; strings probe the text
        index.  Returns a sorted, de-duplicated list.
        """
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            index = self._number.get(path)
            key = float(value)
        else:
            index = self._text.get(path)
            key = str(value)
        if index is None:
            return []
        doc_ids = index.lookup_op(op, key, stats=stats)
        return sorted(set(doc_ids))


def _as_number(text):
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


class IndexedClobStorage:
    """CLOB storage plus a path/value index maintained at load time.

    A thin composition over :class:`~repro.rdb.storage.ClobStorage`:
    documents are stored serialised, but ``find_documents`` can pre-filter
    by leaf value without parsing anything.
    """

    def __init__(self, db, name):
        from repro.rdb.storage import ClobStorage

        self._clob = ClobStorage(db, name)
        self.index = PathValueIndex()
        self.db = db

    def load(self, document):
        doc_id = self._clob.load(document)
        self.index.add_document(doc_id, document)
        return doc_id

    def load_many(self, documents):
        return [self.load(document) for document in documents]

    def document_ids(self):
        return self._clob.document_ids()

    def materialize(self, doc_id, stats=None):
        return self._clob.materialize(doc_id, stats=stats)

    def find_documents(self, path, op, value, stats=None):
        """Candidate document ids for a leaf-value predicate."""
        return self.index.lookup(path, op, value, stats=stats)

    def transform_matching(self, stylesheet, path, op, value):
        """Transform only the documents the path/value index selects.

        Returns ``(doc_id → result document, stats)`` — the §7.4 usage:
        the index prunes the document set; the transform itself is still
        functional (CLOB carries no structure for the rewrite).
        """
        from repro.rdb.plan import ExecutionStats
        from repro.xslt.stylesheet import Stylesheet, compile_stylesheet
        from repro.xslt.vm import XsltVM

        if not isinstance(stylesheet, Stylesheet):
            stylesheet = compile_stylesheet(stylesheet)
        stats = ExecutionStats()
        vm = XsltVM(stylesheet)
        results = {}
        for doc_id in self.find_documents(path, op, value, stats=stats):
            document = self.materialize(doc_id, stats=stats)
            results[doc_id] = vm.transform_document(document)
        return results, stats
