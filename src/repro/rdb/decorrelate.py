"""Subquery unnesting: correlated aggregate probes become flat joins.

The XQuery→SQL merge (:mod:`repro.core.sql_rewrite`) emits one correlated
``ScalarSubquery`` per repeating element — for every parent row the
executor re-runs ``XMLAgg(...) WHERE child.$parent = parent.$id``.  That
probe shape hides the join from the cost planner: the ~90x HashJoin win
only applied where the SQL was already join-shaped.

This pass applies "XQuery Join Graph Isolation" (Grust, Mayr, Rittinger):
a correlated *aggregating* subquery whose correlation predicate is a
conjunction of equi-comparisons is rewritten into

    HashLeftJoin(parent_plan,
                 Aggregate(subquery_body, group_by=child_keys),
                 left_keys=parent_keys)

and the ``ScalarSubquery`` site becomes a plain column reference into the
aggregate's output row.  The join must be *left-outer*: a parent row with
no children still produces one output row, carrying the aggregate's
empty-group defaults (COUNT()=0, XMLAgg=[], SUM/MIN/MAX=NULL) — exactly
the value the correlated probe returned.  Group keys are unique, so the
join is 1:1 and left-preserving: cardinality, document order and bytes
are unchanged, which the 40-case xsltmark property test asserts.

Safety is checked per site and any doubt keeps the probe correlated
(recorded as a ``decorrelate``/``keep-correlated`` ledger decision):

* the subquery has exactly one output and it aggregates;
* the body is built from relational operators whose grouping semantics
  we understand (no Sort/TopN/Limit below the aggregate);
* after peeling the root ``Filter`` chain, every conjunct is either
  *local* (references only subquery aliases → stays as one AND-tree
  residual Filter, the PR-5 convention) or a *correlation equi-join*
  (``child_side = parent_side`` with the parent side referencing only
  aliases visible in the parent plan);
* nothing else — body expressions, the aggregate output, its ORDER BY
  keys, nested subqueries at any depth — references the outer row.

Each rewrite is a first-class :class:`~repro.obs.decisions.DecisionLedger`
record (kind ``decorrelate``, stage ``plan-optimize``) whose provenance
points at the new join node; the FLWOR-variable binding is re-pointed at
the Aggregate, so per-variable provenance and the Q-error feedback loop
follow the surviving nodes.
"""

from __future__ import annotations

import copy

from repro.rdb.expressions import BinOp, ColumnRef, ScalarSubquery
from repro.rdb.plan import (
    Aggregate,
    Filter,
    HashJoin,
    HashLeftJoin,
    IndexScan,
    NestedLoopJoin,
    Query,
    Scan,
)
from repro.rdb.planner import _and_tree, _node_expressions, _split_conjuncts
from repro.rdb.sqlxml import find_aggregates

#: operators with grouping-safe row semantics below an Aggregate
_SAFE_BODY_NODES = (
    Scan, IndexScan, Filter, NestedLoopJoin, HashJoin, HashLeftJoin,
    Aggregate,
)

STAGE = "plan-optimize"


def decorrelate_query(query, db, ledger=None):
    """Unnest every eligible correlated aggregating subquery reachable
    from ``query``'s output expressions (recursively, deepest probes
    included); returns the rewritten :class:`Query` (``query`` itself
    when nothing was eligible).  Expression nodes are *copied along the
    rewritten paths* rather than mutated — callers routinely share
    output expression trees between Query objects (the combined-query
    entry points reuse the view's outputs), and those must keep their
    correlated form.  Untouched subtrees are shared with the input."""
    return _Decorrelator(db, ledger).run(query)


def _bound_aliases(plan):
    """Every alias bound anywhere inside a plan subtree."""
    return {
        node.alias
        for node in plan.iter_plan()
        if isinstance(node, (Scan, IndexScan, Aggregate))
    }


def _visible_aliases(plan):
    """Aliases present in the row environments a subtree *emits* — an
    Aggregate re-binds its input under its own alias, hiding the scans
    beneath it."""
    if isinstance(plan, Aggregate):
        return {plan.alias}
    if isinstance(plan, (Scan, IndexScan)):
        return {plan.alias}
    out = set()
    for child in plan.children():
        out |= _visible_aliases(child)
    return out


def _free_info(expr, bound):
    """``(free alias set, opaque flag)`` of one expression against the
    aliases ``bound`` by the enclosing subquery.  Unlike the planner's
    ``_referenced_aliases`` this *recurses into nested ScalarSubqueries*
    (each extends the bound set with its own plan's aliases), so a
    grandchild probe correlated only to its immediate parent reports no
    free aliases — while any unqualified column keeps the conservative
    opaque flag."""
    free = set()
    opaque = False
    for node in expr.iter_tree():
        if isinstance(node, ColumnRef):
            if node.table is None:
                opaque = True
            elif node.table not in bound:
                free.add(node.table)
        elif isinstance(node, ScalarSubquery):
            inner_free, inner_opaque = _query_free_info(node.query, bound)
            free |= inner_free
            opaque = opaque or inner_opaque
    return free, opaque


def _query_free_info(query, bound):
    inner_bound = bound | _bound_aliases(query.plan)
    free = set()
    opaque = False
    exprs = [expr for _, expr in query.outputs]
    for node in query.plan.iter_plan():
        exprs.extend(_node_expressions(node))
    for expr in exprs:
        expr_free, expr_opaque = _free_info(expr, inner_bound)
        free |= expr_free
        opaque = opaque or expr_opaque
    return free, opaque


def _swap_child(parent, old, new):
    """Replace the direct child expression ``old`` of ``parent`` (an
    expression node or an :class:`_ExprHolder`) with ``new``, in place.
    Expression classes keep children in plain attributes, lists, or
    lists/tuples of pairs — all are scanned by identity."""
    for name, value in vars(parent).items():
        if value is old:
            setattr(parent, name, new)
            return True
        if isinstance(value, list):
            for index, item in enumerate(value):
                if item is old:
                    value[index] = new
                    return True
                if isinstance(item, tuple) and any(
                    part is old for part in item
                ):
                    value[index] = tuple(
                        new if part is old else part for part in item
                    )
                    return True
        elif isinstance(value, tuple) and any(
            part is old for part in value
        ):
            setattr(
                parent, name,
                tuple(new if part is old else part for part in value),
            )
            return True
    return False


def _contains_child(parent, child):
    """Whether :func:`_swap_child` would find ``child`` in ``parent`` —
    the read-only feasibility check run *before* any cloning."""
    for value in vars(parent).values():
        if value is child:
            return True
        if isinstance(value, (list, tuple)):
            for item in value:
                if item is child:
                    return True
                if isinstance(item, tuple) and any(
                    part is child for part in item
                ):
                    return True
    return False


def _clone_expr(node):
    """A shallow copy whose list containers are private, so swapping a
    child inside the clone never writes through to the original."""
    clone = copy.copy(node)
    for name, value in vars(clone).items():
        if isinstance(value, list):
            setattr(clone, name, list(value))
    return clone


class _ExprHolder:
    """A mutable root container so top-level output expressions have a
    parent :func:`_swap_child` can rewrite.  ``dirty`` records whether a
    top-level expression itself was swapped (the one rewrite the clone
    count cannot see)."""

    def __init__(self, exprs):
        self.exprs = list(exprs)
        self.dirty = False


class _Blocked(Exception):
    """One subquery site is not safely decorrelatable; carries why."""

    def __init__(self, reason):
        Exception.__init__(self, reason)
        self.reason = reason


class _Decorrelator:
    def __init__(self, db, ledger=None):
        self.db = db
        self.ledger = ledger
        self._counter = 0

    def run(self, query):
        holder = _ExprHolder(expr for _, expr in query.outputs)
        # copy-on-path state for this run: original node -> private clone;
        # the fresh holder is its own "clone" (safe to mutate)
        clones = {id(holder): holder}
        plan = self._process(query.plan, holder, clones)
        if plan is query.plan and len(clones) == 1 and not holder.dirty:
            return query  # nothing rewritten: share the input verbatim
        outputs = [
            (name, expr)
            for (name, _), expr in zip(query.outputs, holder.exprs)
        ]
        return Query(plan, outputs)

    # -- traversal -------------------------------------------------------------

    def _process(self, plan, holder, clones):
        """Unnest every subquery site reachable from ``holder``'s
        expressions against ``plan``; returns the (possibly join-wrapped)
        plan.  Sites are processed outermost-first: nested probes inside
        an unnested body are handled by the recursion in
        :meth:`_unnest`, and probes inside a *kept* subquery by
        :meth:`_descend`."""
        for path, site in self._collect_sites(holder):
            plan = self._unnest(plan, path, site, clones)
        return plan

    def _collect_sites(self, holder):
        sites = []

        def walk(path, expr):
            if isinstance(expr, ScalarSubquery):
                sites.append((path, expr))
                return  # outermost sites only; _unnest recurses inside
            path = path + (expr,)
            for child in expr.child_exprs():
                walk(path, child)

        for expr in holder.exprs:
            walk((holder,), expr)
        return sites

    def _swap_path(self, path, site, new_expr, clones):
        """Install ``new_expr`` where ``site`` sat, cloning the ancestor
        chain bottom-up until it links into an already-private node —
        every other Query sharing the original tree keeps the correlated
        form."""
        child_old, child_new = site, new_expr
        for ancestor in reversed(path):
            clone = clones.get(id(ancestor))
            if clone is not None:
                if not _swap_child(clone, child_old, child_new):
                    raise AssertionError(
                        "decorrelate lost track of a rewritten ancestor"
                    )
                if clone is path[0]:  # the holder
                    clone.dirty = True
                return
            clone = _clone_expr(ancestor)
            clones[id(ancestor)] = clone
            if not _swap_child(clone, child_old, child_new):
                raise AssertionError(
                    "decorrelate cloned an ancestor it cannot rewrite"
                )
            child_old, child_new = ancestor, clone
        raise AssertionError("decorrelate walked past the holder")

    def _descend(self, path, site, clones):
        """A kept-correlated site may still contain unnestable probes one
        level down — its own body is a query in its own right.  A changed
        body is installed via a *new* ScalarSubquery (copy-on-path, like
        any other swap)."""
        new_query = self.run(site.query)
        if new_query is site.query:
            return
        new_site = ScalarSubquery(new_query)
        if self.ledger is not None:
            self.ledger.rebind_sql_expression(site, new_site)
        self._swap_path(path, site, new_site, clones)

    # -- the rewrite -----------------------------------------------------------

    def _unnest(self, plan, path, site, clones):
        query = site.query
        if not _contains_child(path[-1], site):
            # defensive: unknown parent container shape — keep correlated
            self._record_kept(site, "unrecognized parent expression shape")
            return plan
        try:
            info = self._analyze(plan, query)
        except _Blocked as blocked:
            self._descend(path, site, clones)
            self._record_kept(site, blocked.reason)
            return plan

        body = info["body"]
        # nested probes in the aggregate output rewrite against the body
        # plan (their correlation aliases are visible there)
        inner_holder = _ExprHolder([info["out_expr"]])
        body = self._process(body, inner_holder,
                             {id(inner_holder): inner_holder})
        out_expr = inner_holder.exprs[0]

        self._counter += 1
        alias = "dcr%d" % self._counter
        group_by = [
            ("k%d" % index, child_key)
            for index, (child_key, _) in enumerate(info["pairs"])
        ]
        aggregate = Aggregate(body, group_by, [("v", out_expr)], alias=alias)
        join = HashLeftJoin(
            plan,
            aggregate,
            left_keys=[parent_key for _, parent_key in info["pairs"]],
            right_keys=[
                ColumnRef(name, alias) for name, _ in group_by
            ],
        )
        self._swap_path(path, site, ColumnRef("v", alias), clones)
        self._record_unnest(site, query, join, aggregate, info)
        return join

    def _analyze(self, plan, query):
        """Eligibility per the module docstring; raises :class:`_Blocked`
        or returns the pieces the rewrite needs."""
        if len(query.outputs) != 1:
            raise _Blocked("subquery has %d output columns"
                           % len(query.outputs))
        out_expr = query.outputs[0][1]
        if not find_aggregates(out_expr):
            raise _Blocked("subquery output does not aggregate")

        conjuncts = []
        base = query.plan
        while isinstance(base, Filter):
            conjuncts.extend(_split_conjuncts(base.predicate))
            base = base.child
        for node in base.iter_plan():
            if not isinstance(node, _SAFE_BODY_NODES):
                raise _Blocked(
                    "%s below the aggregate" % type(node).__name__
                )

        own = _bound_aliases(base)
        visible = _visible_aliases(plan)
        if own & visible:
            raise _Blocked(
                "alias shadowing: %s" % ", ".join(sorted(own & visible))
            )

        residual = []
        pairs = []  # (child_key expr, parent_key expr)
        for conjunct in conjuncts:
            free, opaque = _free_info(conjunct, own)
            if opaque:
                raise _Blocked("unqualified column in predicate")
            if not free:
                residual.append(conjunct)
                continue
            pair = self._correlation_pair(conjunct, own, visible)
            if pair is None:
                raise _Blocked(
                    "non-equi correlated predicate: %s" % conjunct.to_sql()
                )
            pairs.append(pair)
        if not pairs:
            raise _Blocked("not correlated with the parent plan")

        for expr in [out_expr] + _body_exprs(base):
            free, opaque = _free_info(expr, own)
            if opaque:
                raise _Blocked("unqualified column below the aggregate")
            if free:
                raise _Blocked(
                    "outer-row reference outside the correlation "
                    "predicate: %s" % ", ".join(sorted(free))
                )

        body = base
        if residual:
            # fold partially-extractable leftovers into ONE AND-tree
            # Filter (not a re-stacked chain) — the access-path pass sees
            # every conjunct at once
            body = Filter(base, _and_tree(residual))
        return {
            "body": body,
            "out_expr": out_expr,
            "pairs": pairs,
            "residual": residual,
            "conjuncts": conjuncts,
        }

    def _correlation_pair(self, conjunct, own, visible):
        """``(child_key, parent_key)`` when the conjunct equi-joins the
        subquery body to the parent row; None otherwise."""
        if not isinstance(conjunct, BinOp) or conjunct.op != "=":
            return None
        for child_side, parent_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            child_free, child_opaque = _free_info(child_side, own)
            if child_opaque or child_free:
                continue
            parent_refs, parent_opaque = _free_info(parent_side, set())
            if parent_opaque or not parent_refs:
                continue
            if parent_refs & own or not parent_refs <= visible:
                continue
            return child_side, parent_side
        return None

    # -- ledger ----------------------------------------------------------------

    def _variable_of(self, site):
        """The FLWOR variable the SQL merge bound to this subquery
        expression, when the ledger knows one."""
        if self.ledger is None:
            return None
        bindings = getattr(self.ledger, "_sql_bindings", {})
        for variable, binding in bindings.items():
            if binding is site:
                return variable
        return None

    def _xslt_provenance_of(self, variable):
        """The XSLT-side provenance already recorded for this variable's
        cardinality decision (stage xquery-gen) — the line the probe
        traces back to."""
        if variable is None:
            return None
        for decision in self.ledger.decisions:
            if decision.detail.get("variable") == variable \
                    and decision.provenance.xslt is not None:
                return dict(decision.provenance.xslt)
        return None

    def _record_unnest(self, site, query, join, aggregate, info):
        if self.ledger is None:
            return
        from repro.obs.decisions import DECORRELATE

        variable = self._variable_of(site)
        if variable is not None:
            # the ScalarSubquery expression is dead; provenance and the
            # feedback loop's extra_plans follow the aggregate instead
            self.ledger.rebind_sql_expression(site, aggregate)
        detail = {
            "join_keys": len(info["pairs"]),
            "residual_conjuncts": len(info["residual"]),
            "group_alias": aggregate.alias,
            "subquery": query.to_sql(),
        }
        if variable is not None:
            detail["variable"] = variable
        decision = self.ledger.record(
            DECORRELATE,
            STAGE,
            variable or "scalar subquery",
            "hash-left-join + group-aggregate",
            reason="correlated aggregate probe re-ran per parent row; "
                   "equi-correlation %s makes it a build-once grouped "
                   "outer join" % " AND ".join(
                       "%s = %s" % (child.to_sql(), parent_key.to_sql())
                       for child, parent_key in info["pairs"]
                   ),
            detail=detail,
        )
        decision.provenance.sql_node = join
        decision.provenance.xslt = self._xslt_provenance_of(variable)

    def _record_kept(self, site, reason):
        if self.ledger is None:
            return
        from repro.obs.decisions import DECORRELATE

        variable = self._variable_of(site)
        self.ledger.record(
            DECORRELATE,
            STAGE,
            variable or "scalar subquery",
            "keep-correlated",
            reason=reason,
            detail={"variable": variable} if variable else None,
        )


def _body_exprs(plan):
    exprs = []
    for node in plan.iter_plan():
        exprs.extend(_node_expressions(node))
    return exprs
