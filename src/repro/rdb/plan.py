"""Iterator-based query execution (the classical pull model, paper [10]).

Plan nodes yield *environments*: ``{alias: {column: value}}`` dicts.  A
:class:`Query` couples a plan with output expressions.  Execution statistics
(heap rows read, index probes, index entries touched, XML elements built)
are collected per run — benchmarks and tests assert on them to prove plan
shape, e.g. that the rewritten Figure-2 query probes the B-tree instead of
scanning.
"""

from __future__ import annotations

from repro.errors import DatabaseError, PlanError
from repro.rdb.sqlxml import AGG_STATE, find_aggregates


class ExecutionStats:
    """Counters collected during one query execution."""

    __slots__ = (
        "rows_scanned", "index_probes", "index_entries", "output_rows",
        "xml_elements", "subquery_executions",
    )

    def __init__(self):
        self.rows_scanned = 0
        self.index_probes = 0
        self.index_entries = 0
        self.output_rows = 0
        self.xml_elements = 0
        self.subquery_executions = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return "ExecutionStats(%s)" % ", ".join(
            "%s=%d" % (name, getattr(self, name)) for name in self.__slots__
        )


class PlanNode:
    """Base class: ``rows(db, env, stats)`` yields environment dicts."""

    def rows(self, db, env, stats):
        raise NotImplementedError

    def children(self):
        return ()

    def iter_plan(self):
        yield self
        for child in self.children():
            for node in child.iter_plan():
                yield node


class Scan(PlanNode):
    """Full table scan."""

    def __init__(self, table_name, alias=None):
        self.table_name = table_name
        self.alias = alias or table_name

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        names = table.schema.column_names()
        for _, row in table.scan():
            stats.rows_scanned += 1
            merged = dict(env)
            merged[self.alias] = dict(zip(names, row))
            yield merged


class IndexScan(PlanNode):
    """B-tree probe: ``column op key`` where ``key`` may be correlated."""

    def __init__(self, table_name, index_name, op, key_expr, alias=None,
                 column_name=None):
        self.table_name = table_name
        self.index_name = index_name
        self.op = op
        self.key_expr = key_expr
        self.alias = alias or table_name
        self.column_name = column_name  # for SQL rendering only

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        index = db.index(self.index_name)
        key = self.key_expr.evaluate(env, db, stats)
        key = table.schema.column(index.column_name).coerce(key)
        names = table.schema.column_names()
        for row_id in index.lookup_op(self.op, key, stats=stats):
            stats.rows_scanned += 1
            row = table.fetch(row_id)
            merged = dict(env)
            merged[self.alias] = dict(zip(names, row))
            yield merged


class Filter(PlanNode):
    """Row filter over a child plan."""

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        for row_env in self.child.rows(db, env, stats):
            if bool(self.predicate.evaluate(row_env, db, stats)):
                yield row_env


class NestedLoopJoin(PlanNode):
    """Inner join: right side re-evaluated per left row (correlated OK)."""

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition

    def children(self):
        return (self.left, self.right)

    def rows(self, db, env, stats):
        for left_env in self.left.rows(db, env, stats):
            for joined in self.right.rows(db, left_env, stats):
                if self.condition is None or bool(
                    self.condition.evaluate(joined, db, stats)
                ):
                    yield joined


class Sort(PlanNode):
    """Materialising sort."""

    def __init__(self, child, keys):
        self.child = child
        self.keys = keys  # list of (expr, descending)

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        materialised = list(self.child.rows(db, env, stats))
        decorated = []
        for row_env in materialised:
            key_row = [expr.evaluate(row_env, db, stats) for expr, _ in self.keys]
            decorated.append((key_row, row_env))
        for position in range(len(self.keys) - 1, -1, -1):
            descending = self.keys[position][1]
            decorated.sort(
                key=lambda pair: _null_safe(pair[0][position]),
                reverse=descending,
            )
        for _, row_env in decorated:
            yield row_env


def _null_safe(value):
    # Sort NULLs first; mixed types compare as text.
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, "", float(value))
    return (2, str(value), 0.0)


class Aggregate(PlanNode):
    """Hash aggregation with optional GROUP BY.

    Yields one environment per group under ``alias``, containing the group
    keys and the aggregate outputs.
    """

    def __init__(self, child, group_by, outputs, alias="agg"):
        self.child = child
        self.group_by = group_by  # list of (name, expr)
        self.outputs = outputs    # list of (name, expr w/ aggregates)
        self.alias = alias

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        aggregates = []
        for _, expr in self.outputs:
            aggregates.extend(find_aggregates(expr))
        groups = {}
        order = []
        for row_env in self.child.rows(db, env, stats):
            key = tuple(
                expr.evaluate(row_env, db, stats) for _, expr in self.group_by
            )
            if key not in groups:
                groups[key] = {
                    id(agg): agg.new_state() for agg in aggregates
                }
                order.append(key)
            states = groups[key]
            for agg in aggregates:
                agg.accumulate(states[id(agg)], row_env, db, stats)
        if not self.group_by and not order:
            groups[()] = {id(agg): agg.new_state() for agg in aggregates}
            order.append(())
        for key in order:
            final_env = dict(env)
            final_env[AGG_STATE] = groups[key]
            out_row = {}
            for (name, _), value in zip(self.group_by, key):
                out_row[name] = value
            for name, expr in self.outputs:
                out_row[name] = expr.evaluate(final_env, db, stats)
            result_env = dict(env)
            result_env[self.alias] = out_row
            yield result_env


class Limit(PlanNode):
    def __init__(self, child, count):
        self.child = child
        self.count = count

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        remaining = self.count
        for row_env in self.child.rows(db, env, stats):
            if remaining <= 0:
                return
            remaining -= 1
            yield row_env


class Query:
    """A plan plus output expressions; the unit the database executes."""

    def __init__(self, plan, outputs):
        self.plan = plan
        self.outputs = outputs  # list of (name, expr)

    def is_aggregate(self):
        return any(find_aggregates(expr) for _, expr in self.outputs)

    def execute(self, db, env=None, stats=None):
        """Run the query; returns (rows, stats).  Each row is a tuple of
        output values in declaration order."""
        env = env or {}
        stats = stats or ExecutionStats()
        rows = list(self._iterate(db, env, stats))
        stats.output_rows += len(rows)
        return rows, stats

    def _iterate(self, db, env, stats):
        if self.is_aggregate():
            aggregates = []
            for _, expr in self.outputs:
                aggregates.extend(find_aggregates(expr))
            states = {id(agg): agg.new_state() for agg in aggregates}
            for row_env in self.plan.rows(db, env, stats):
                for agg in aggregates:
                    agg.accumulate(states[id(agg)], row_env, db, stats)
            final_env = dict(env)
            final_env[AGG_STATE] = states
            yield tuple(
                expr.evaluate(final_env, db, stats) for _, expr in self.outputs
            )
            return
        for row_env in self.plan.rows(db, env, stats):
            yield tuple(
                expr.evaluate(row_env, db, stats) for _, expr in self.outputs
            )

    def execute_scalar(self, db, env, stats):
        """Scalar-subquery evaluation: exactly one output column."""
        if len(self.outputs) != 1:
            raise PlanError("scalar subquery must have one output column")
        stats.subquery_executions += 1
        rows = list(self._iterate(db, env, stats))
        if not rows:
            return None
        if len(rows) > 1:
            raise DatabaseError(
                "scalar subquery returned %d rows" % len(rows)
            )
        return rows[0][0]

    # -- SQL rendering --------------------------------------------------------

    def to_sql(self):
        select = ", ".join(
            expr.to_sql() + (" AS %s" % name if name else "")
            for name, expr in self.outputs
        )
        from_clause, where_clause, order_clause = _render_plan(self.plan)
        text = "SELECT %s" % select
        if from_clause:
            text += " FROM %s" % from_clause
        if where_clause:
            text += " WHERE %s" % where_clause
        if order_clause:
            text += " ORDER BY %s" % order_clause
        return text


def _render_plan(plan):
    """Render the supported plan shapes to FROM/WHERE/ORDER BY fragments."""
    order_clause = ""
    if isinstance(plan, Sort):
        order_clause = ", ".join(
            expr.to_sql() + (" DESC" if descending else "")
            for expr, descending in plan.keys
        )
        plan = plan.child

    predicates = []
    sources = []
    _collect(plan, sources, predicates)
    from_clause = ", ".join(sources)
    where_clause = " AND ".join(predicates)
    return from_clause, where_clause, order_clause


def _collect(plan, sources, predicates):
    if isinstance(plan, Filter):
        _collect(plan.child, sources, predicates)
        predicates.append(plan.predicate.to_sql())
    elif isinstance(plan, Scan):
        sources.append(_source(plan.table_name, plan.alias))
    elif isinstance(plan, IndexScan):
        sources.append(_source(plan.table_name, plan.alias))
        column = plan.column_name or plan.index_name
        predicates.append(
            '"%s"."%s" %s %s /*+ INDEX(%s) */'
            % (
                plan.alias.upper(),
                column.upper(),
                plan.op,
                plan.key_expr.to_sql(),
                plan.index_name,
            )
        )
    elif isinstance(plan, NestedLoopJoin):
        _collect(plan.left, sources, predicates)
        _collect(plan.right, sources, predicates)
        if plan.condition is not None:
            predicates.append(plan.condition.to_sql())
    elif isinstance(plan, Limit):
        _collect(plan.child, sources, predicates)
        predicates.append("ROWNUM <= %d" % plan.count)
    elif isinstance(plan, Aggregate):
        sources.append("(/* aggregate */) %s" % plan.alias)
    else:  # pragma: no cover - defensive
        sources.append("(/* %s */)" % type(plan).__name__)


def _source(table_name, alias):
    if alias and alias != table_name:
        return "%s %s" % (table_name.upper(), alias)
    return table_name.upper()


def explain(plan_or_query, indent=0):
    """A readable operator-tree rendering (EXPLAIN)."""
    if isinstance(plan_or_query, Query):
        lines = ["QUERY outputs=[%s]" % ", ".join(
            name or expr.to_sql() for name, expr in plan_or_query.outputs
        )]
        lines.extend(explain(plan_or_query.plan, indent + 1).splitlines())
        return "\n".join(lines)
    plan = plan_or_query
    pad = "  " * indent
    label = type(plan).__name__
    detail = ""
    if isinstance(plan, Scan):
        detail = " table=%s alias=%s" % (plan.table_name, plan.alias)
    elif isinstance(plan, IndexScan):
        detail = " table=%s index=%s op=%s key=%s" % (
            plan.table_name, plan.index_name, plan.op, plan.key_expr.to_sql(),
        )
    elif isinstance(plan, Filter):
        detail = " predicate=%s" % plan.predicate.to_sql()
    elif isinstance(plan, Sort):
        detail = " keys=%s" % ", ".join(expr.to_sql() for expr, _ in plan.keys)
    elif isinstance(plan, Aggregate):
        detail = " group_by=[%s]" % ", ".join(name for name, _ in plan.group_by)
    lines = [pad + label + detail]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
