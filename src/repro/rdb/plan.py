"""Iterator-based query execution (the classical pull model, paper [10]).

Plan nodes yield *environments*: ``{alias: {column: value}}`` dicts.  A
:class:`Query` couples a plan with output expressions.  Execution statistics
(heap rows read, index probes, index entries touched, XML elements built)
are collected per run — benchmarks and tests assert on them to prove plan
shape, e.g. that the rewritten Figure-2 query probes the B-tree instead of
scanning.
"""

from __future__ import annotations

import time

from repro.errors import DatabaseError, PlanError
from repro.rdb.sqlxml import AGG_STATE, find_aggregates


class ExecutionStats:
    """Counters collected during one query execution.

    ``elapsed_seconds`` is filled by :meth:`Query.execute` (and by the
    functional transform path); ``btree_node_visits`` counts emulated
    B-tree node descents per probe; ``docs_materialized`` counts full
    DOMs rebuilt by the functional (no-rewrite) path — the paper's §2
    materialisation cost.  ``profiler`` optionally carries a
    :class:`PlanProfiler` collecting per-plan-node row counts and
    timings for ``explain(analyze=True)``.
    """

    _FIELDS = (
        "rows_scanned", "index_probes", "index_entries", "output_rows",
        "xml_elements", "subquery_executions", "btree_node_visits",
        "docs_materialized", "elapsed_seconds",
    )

    __slots__ = _FIELDS + ("profiler",)

    def __init__(self):
        self.rows_scanned = 0
        self.index_probes = 0
        self.index_entries = 0
        self.output_rows = 0
        self.xml_elements = 0
        self.subquery_executions = 0
        self.btree_node_visits = 0
        self.docs_materialized = 0
        self.elapsed_seconds = 0.0
        self.profiler = None

    def as_dict(self):
        return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self):
        return "ExecutionStats(%s)" % ", ".join(
            "%s=%s" % (name, _fmt_stat(getattr(self, name)))
            for name in self._FIELDS
        )


def _fmt_stat(value):
    if isinstance(value, float):
        return "%.6f" % value
    return "%d" % value


class NodeProfile:
    """Per-plan-node counters for one profiled execution."""

    __slots__ = ("rows_out", "opens", "total_seconds")

    def __init__(self):
        self.rows_out = 0
        self.opens = 0
        self.total_seconds = 0.0


class PlanProfiler:
    """Collects per-node row counts and wall time during execution.

    Attached via ``stats.profiler``; every plan node routes child
    iteration through :meth:`PlanNode.iter_rows`, which wraps the row
    generator when a profiler is present.  Time spent inside a node's
    ``next()`` includes its children (total time); self time is derived
    at rendering time as total minus the children's totals.
    """

    def __init__(self):
        self._profiles = {}  # id(node) -> NodeProfile

    def profile_of(self, node):
        profile = self._profiles.get(id(node))
        if profile is None:
            profile = self._profiles[id(node)] = NodeProfile()
        return profile

    def get(self, node):
        return self._profiles.get(id(node))

    def wrap(self, node, iterator):
        profile = self.profile_of(node)
        profile.opens += 1
        while True:
            start = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                profile.total_seconds += time.perf_counter() - start
                return
            profile.total_seconds += time.perf_counter() - start
            profile.rows_out += 1
            yield row

    def self_seconds(self, node):
        """Total time minus the direct children's total time."""
        profile = self.get(node)
        if profile is None:
            return 0.0
        child_total = sum(
            self.get(child).total_seconds
            for child in node.children()
            if self.get(child) is not None
        )
        return max(0.0, profile.total_seconds - child_total)


class PlanNode:
    """Base class: ``rows(db, env, stats)`` yields environment dicts."""

    def rows(self, db, env, stats):
        raise NotImplementedError

    def iter_rows(self, db, env, stats):
        """Open this node's row stream, profiled when ``stats`` carries a
        :class:`PlanProfiler`.  Parents iterate children through this
        (not ``rows``) so per-node counts are collected."""
        profiler = getattr(stats, "profiler", None)
        if profiler is None:
            return self.rows(db, env, stats)
        return profiler.wrap(self, self.rows(db, env, stats))

    def children(self):
        return ()

    def iter_plan(self):
        yield self
        for child in self.children():
            for node in child.iter_plan():
                yield node


class Scan(PlanNode):
    """Full table scan."""

    def __init__(self, table_name, alias=None):
        self.table_name = table_name
        self.alias = alias or table_name

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        names = table.schema.column_names()
        for _, row in table.scan():
            stats.rows_scanned += 1
            merged = dict(env)
            merged[self.alias] = dict(zip(names, row))
            yield merged


class IndexScan(PlanNode):
    """B-tree probe: ``column op key`` where ``key`` may be correlated."""

    def __init__(self, table_name, index_name, op, key_expr, alias=None,
                 column_name=None):
        self.table_name = table_name
        self.index_name = index_name
        self.op = op
        self.key_expr = key_expr
        self.alias = alias or table_name
        self.column_name = column_name  # for SQL rendering only

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        index = db.index(self.index_name)
        key = self.key_expr.evaluate(env, db, stats)
        key = table.schema.column(index.column_name).coerce(key)
        names = table.schema.column_names()
        for row_id in index.lookup_op(self.op, key, stats=stats):
            stats.rows_scanned += 1
            row = table.fetch(row_id)
            merged = dict(env)
            merged[self.alias] = dict(zip(names, row))
            yield merged


class Filter(PlanNode):
    """Row filter over a child plan."""

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        for row_env in self.child.iter_rows(db, env, stats):
            if bool(self.predicate.evaluate(row_env, db, stats)):
                yield row_env


class NestedLoopJoin(PlanNode):
    """Inner join: right side re-evaluated per left row (correlated OK)."""

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition

    def children(self):
        return (self.left, self.right)

    def rows(self, db, env, stats):
        for left_env in self.left.iter_rows(db, env, stats):
            for joined in self.right.iter_rows(db, left_env, stats):
                if self.condition is None or bool(
                    self.condition.evaluate(joined, db, stats)
                ):
                    yield joined


class Sort(PlanNode):
    """Materialising sort."""

    def __init__(self, child, keys):
        self.child = child
        self.keys = keys  # list of (expr, descending)

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        materialised = list(self.child.iter_rows(db, env, stats))
        decorated = []
        for row_env in materialised:
            key_row = [expr.evaluate(row_env, db, stats) for expr, _ in self.keys]
            decorated.append((key_row, row_env))
        for position in range(len(self.keys) - 1, -1, -1):
            descending = self.keys[position][1]
            decorated.sort(
                key=lambda pair: _null_safe(pair[0][position]),
                reverse=descending,
            )
        for _, row_env in decorated:
            yield row_env


def _null_safe(value):
    # Sort NULLs first; mixed types compare as text.
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, "", float(value))
    return (2, str(value), 0.0)


class Aggregate(PlanNode):
    """Hash aggregation with optional GROUP BY.

    Yields one environment per group under ``alias``, containing the group
    keys and the aggregate outputs.
    """

    def __init__(self, child, group_by, outputs, alias="agg"):
        self.child = child
        self.group_by = group_by  # list of (name, expr)
        self.outputs = outputs    # list of (name, expr w/ aggregates)
        self.alias = alias

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        aggregates = []
        for _, expr in self.outputs:
            aggregates.extend(find_aggregates(expr))
        groups = {}
        order = []
        for row_env in self.child.iter_rows(db, env, stats):
            key = tuple(
                expr.evaluate(row_env, db, stats) for _, expr in self.group_by
            )
            if key not in groups:
                groups[key] = {
                    id(agg): agg.new_state() for agg in aggregates
                }
                order.append(key)
            states = groups[key]
            for agg in aggregates:
                agg.accumulate(states[id(agg)], row_env, db, stats)
        if not self.group_by and not order:
            groups[()] = {id(agg): agg.new_state() for agg in aggregates}
            order.append(())
        for key in order:
            final_env = dict(env)
            final_env[AGG_STATE] = groups[key]
            out_row = {}
            for (name, _), value in zip(self.group_by, key):
                out_row[name] = value
            for name, expr in self.outputs:
                out_row[name] = expr.evaluate(final_env, db, stats)
            result_env = dict(env)
            result_env[self.alias] = out_row
            yield result_env


class Limit(PlanNode):
    def __init__(self, child, count):
        self.child = child
        self.count = count

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        remaining = self.count
        for row_env in self.child.iter_rows(db, env, stats):
            if remaining <= 0:
                return
            remaining -= 1
            yield row_env


class Query:
    """A plan plus output expressions; the unit the database executes."""

    def __init__(self, plan, outputs):
        self.plan = plan
        self.outputs = outputs  # list of (name, expr)

    def is_aggregate(self):
        return any(find_aggregates(expr) for _, expr in self.outputs)

    def execute(self, db, env=None, stats=None):
        """Run the query; returns (rows, stats).  Each row is a tuple of
        output values in declaration order."""
        env = env or {}
        stats = stats or ExecutionStats()
        start = time.perf_counter()
        rows = list(self._iterate(db, env, stats))
        stats.elapsed_seconds += time.perf_counter() - start
        stats.output_rows += len(rows)
        return rows, stats

    def _iterate(self, db, env, stats):
        if self.is_aggregate():
            aggregates = []
            for _, expr in self.outputs:
                aggregates.extend(find_aggregates(expr))
            states = {id(agg): agg.new_state() for agg in aggregates}
            for row_env in self.plan.iter_rows(db, env, stats):
                for agg in aggregates:
                    agg.accumulate(states[id(agg)], row_env, db, stats)
            final_env = dict(env)
            final_env[AGG_STATE] = states
            yield tuple(
                expr.evaluate(final_env, db, stats) for _, expr in self.outputs
            )
            return
        for row_env in self.plan.iter_rows(db, env, stats):
            yield tuple(
                expr.evaluate(row_env, db, stats) for _, expr in self.outputs
            )

    def execute_scalar(self, db, env, stats):
        """Scalar-subquery evaluation: exactly one output column."""
        if len(self.outputs) != 1:
            raise PlanError("scalar subquery must have one output column")
        stats.subquery_executions += 1
        rows = list(self._iterate(db, env, stats))
        if not rows:
            return None
        if len(rows) > 1:
            raise DatabaseError(
                "scalar subquery returned %d rows" % len(rows)
            )
        return rows[0][0]

    # -- SQL rendering --------------------------------------------------------

    def fingerprint(self):
        """Stable content hash of this query's shape (its SQL rendering).

        The serving layer (:mod:`repro.serve`) keys compiled plans by the
        stylesheet hash plus the source's structural fingerprint; two
        queries with the same SQL text compile to the same plan against
        the same catalog.  Index DDL is *not* visible in the SQL text —
        storage-level fingerprints (:meth:`ObjectRelationalStorage.
        fingerprint`) cover that.
        """
        import hashlib

        return hashlib.sha256(self.to_sql().encode("utf-8")).hexdigest()

    def to_sql(self):
        select = ", ".join(
            expr.to_sql() + (" AS %s" % name if name else "")
            for name, expr in self.outputs
        )
        from_clause, where_clause, order_clause = _render_plan(self.plan)
        text = "SELECT %s" % select
        if from_clause:
            text += " FROM %s" % from_clause
        if where_clause:
            text += " WHERE %s" % where_clause
        if order_clause:
            text += " ORDER BY %s" % order_clause
        return text


def _render_plan(plan):
    """Render the supported plan shapes to FROM/WHERE/ORDER BY fragments."""
    order_clause = ""
    if isinstance(plan, Sort):
        order_clause = ", ".join(
            expr.to_sql() + (" DESC" if descending else "")
            for expr, descending in plan.keys
        )
        plan = plan.child

    predicates = []
    sources = []
    _collect(plan, sources, predicates)
    from_clause = ", ".join(sources)
    where_clause = " AND ".join(predicates)
    return from_clause, where_clause, order_clause


def _collect(plan, sources, predicates):
    if isinstance(plan, Filter):
        _collect(plan.child, sources, predicates)
        predicates.append(plan.predicate.to_sql())
    elif isinstance(plan, Scan):
        sources.append(_source(plan.table_name, plan.alias))
    elif isinstance(plan, IndexScan):
        sources.append(_source(plan.table_name, plan.alias))
        column = plan.column_name or plan.index_name
        predicates.append(
            '"%s"."%s" %s %s /*+ INDEX(%s) */'
            % (
                plan.alias.upper(),
                column.upper(),
                plan.op,
                plan.key_expr.to_sql(),
                plan.index_name,
            )
        )
    elif isinstance(plan, NestedLoopJoin):
        _collect(plan.left, sources, predicates)
        _collect(plan.right, sources, predicates)
        if plan.condition is not None:
            predicates.append(plan.condition.to_sql())
    elif isinstance(plan, Limit):
        _collect(plan.child, sources, predicates)
        predicates.append("ROWNUM <= %d" % plan.count)
    elif isinstance(plan, Aggregate):
        sources.append("(/* aggregate */) %s" % plan.alias)
    else:  # pragma: no cover - defensive
        sources.append("(/* %s */)" % type(plan).__name__)


def _source(table_name, alias):
    if alias and alias != table_name:
        return "%s %s" % (table_name.upper(), alias)
    return table_name.upper()


def assign_plan_node_ids(plan_or_query, extra_plans=()):
    """Stamp every plan node with a stable pre-order ``plan_node_id``.

    The ids appear in ``explain`` output as ``#n`` and are what the
    rewrite-decision ledger (:mod:`repro.obs.decisions`) records as SQL
    provenance.  ``extra_plans`` extends numbering over plan trees that
    hang off expressions rather than the main tree — the correlated
    XMLAgg subqueries the SQL merge builds per repeating element.
    Returns the ``{id(node): plan_node_id}`` map.
    """
    roots = []
    if isinstance(plan_or_query, Query):
        roots.append(plan_or_query.plan)
    elif plan_or_query is not None:
        roots.append(getattr(plan_or_query, "plan", plan_or_query))
    roots.extend(extra_plans)
    ids = {}
    counter = 0
    for root in roots:
        if not hasattr(root, "iter_plan"):
            continue
        for node in root.iter_plan():
            if id(node) in ids:
                continue
            counter += 1
            node.plan_node_id = counter
            ids[id(node)] = counter
    return ids


def explain(plan_or_query, indent=0, profile=None, analyze=False, db=None,
            env=None, stats=None):
    """A readable operator-tree rendering (EXPLAIN).

    ``explain(query, analyze=True, db=db)`` *executes* the query with a
    :class:`PlanProfiler` attached and annotates every node with its
    actual row count, open count and self/total wall time (EXPLAIN
    ANALYZE), followed by an execution-stats summary line.  Pass
    ``profile=`` to render a tree against an already-collected profiler
    without re-executing.
    """
    if analyze:
        if not isinstance(plan_or_query, Query):
            raise PlanError("explain(analyze=True) requires a Query")
        if db is None:
            raise PlanError("explain(analyze=True) requires db=")
        stats = stats or ExecutionStats()
        if stats.profiler is None:
            stats.profiler = PlanProfiler()
        plan_or_query.execute(db, env=env, stats=stats)
        text = explain(plan_or_query, profile=stats.profiler)
        summary = ", ".join(
            "%s=%s" % (name, _fmt_stat(value))
            for name, value in stats.as_dict().items()
            if value
        )
        return "%s\nExecution: %s" % (text, summary)
    if isinstance(plan_or_query, Query):
        lines = ["QUERY outputs=[%s]" % ", ".join(
            name or expr.to_sql() for name, expr in plan_or_query.outputs
        )]
        lines.extend(
            explain(plan_or_query.plan, indent + 1, profile=profile)
            .splitlines()
        )
        return "\n".join(lines)
    plan = plan_or_query
    pad = "  " * indent
    label = type(plan).__name__
    node_id = getattr(plan, "plan_node_id", None)
    if node_id is not None:
        label = "#%d %s" % (node_id, label)
    detail = ""
    if isinstance(plan, Scan):
        detail = " table=%s alias=%s" % (plan.table_name, plan.alias)
    elif isinstance(plan, IndexScan):
        detail = " table=%s index=%s op=%s key=%s" % (
            plan.table_name, plan.index_name, plan.op, plan.key_expr.to_sql(),
        )
    elif isinstance(plan, Filter):
        detail = " predicate=%s" % plan.predicate.to_sql()
    elif isinstance(plan, Sort):
        detail = " keys=%s" % ", ".join(expr.to_sql() for expr, _ in plan.keys)
    elif isinstance(plan, Aggregate):
        detail = " group_by=[%s]" % ", ".join(name for name, _ in plan.group_by)
    lines = [pad + label + detail + _profile_note(plan, profile)]
    for child in plan.children():
        lines.append(explain(child, indent + 1, profile=profile))
    return "\n".join(lines)


def _profile_note(plan, profile):
    if profile is None:
        return ""
    node_profile = profile.get(plan)
    if node_profile is None:
        return "  (never executed)"
    return "  (actual rows=%d opens=%d total=%.3fms self=%.3fms)" % (
        node_profile.rows_out,
        node_profile.opens,
        node_profile.total_seconds * 1000.0,
        profile.self_seconds(plan) * 1000.0,
    )
