"""Iterator-based query execution (the classical pull model, paper [10]).

Plan nodes yield *environments*: ``{alias: {column: value}}`` dicts.  A
:class:`Query` couples a plan with output expressions.  Execution statistics
(heap rows read, index probes, index entries touched, XML elements built)
are collected per run — benchmarks and tests assert on them to prove plan
shape, e.g. that the rewritten Figure-2 query probes the B-tree instead of
scanning.

Every operator also supports **vectorized** execution through
``iter_batches(db, env, stats, batch_size)``: row environments flow in
lists of up to ``batch_size`` instead of one generator hop per row.
:meth:`Query.execute_batches` drives a whole query that way, and
:meth:`Query.stream_pieces` couples it with the incremental SQL/XML
emitter (:mod:`repro.rdb.sqlxml`) so serialized output leaves the
executor in chunks without the result document ever being materialized.
"""

from __future__ import annotations

import time

from repro.errors import DatabaseError, PlanError
from repro.obs.metrics import global_metrics
from repro.obs.trace import current_trace_id
from repro.rdb.sqlxml import (
    AGG_STATE,
    find_aggregates,
    stream_expr_pieces,
    stream_value_pieces,
)

#: Default row count per batch on the vectorized/streaming path.
DEFAULT_BATCH_SIZE = 256


class ExecutionStats:
    """Counters collected during one query execution.

    ``elapsed_seconds`` is filled by :meth:`Query.execute` (and by the
    functional transform path); ``btree_node_visits`` counts emulated
    B-tree node descents per probe; ``docs_materialized`` counts full
    DOMs rebuilt by the functional (no-rewrite) path — the paper's §2
    materialisation cost.  ``profiler`` optionally carries a
    :class:`PlanProfiler` collecting per-plan-node row counts and
    timings for ``explain(analyze=True)``.
    """

    _FIELDS = (
        "rows_scanned", "index_probes", "index_entries", "output_rows",
        "xml_elements", "subquery_executions", "btree_node_visits",
        "docs_materialized", "batches", "peak_buffered_bytes",
        "hash_build_rows", "hash_probes", "topn_heap_rows",
        "struct_range_scans", "struct_join_rows",
        "peak_ingest_buffered_bytes",
        "elapsed_seconds",
    )

    __slots__ = _FIELDS + ("profiler",)

    def __init__(self):
        self.rows_scanned = 0
        self.index_probes = 0
        self.index_entries = 0
        self.output_rows = 0
        self.xml_elements = 0
        self.subquery_executions = 0
        self.btree_node_visits = 0
        self.docs_materialized = 0
        #: row batches emitted by the top-level plan on the vectorized path
        self.batches = 0
        #: high-water mark of serialized output buffered at once on the
        #: streaming path (0 when execution materialized the result)
        self.peak_buffered_bytes = 0
        #: rows inserted into HashJoin build tables
        self.hash_build_rows = 0
        #: probe-side rows looked up in HashJoin tables
        self.hash_probes = 0
        #: rows pushed through TopN bounded heaps
        self.topn_heap_rows = 0
        #: structural path-index range scans opened (per indexed path)
        self.struct_range_scans = 0
        #: (ancestor, descendant) pairs emitted by StructuralJoin
        self.struct_join_rows = 0
        #: high-water mark of parse buffer + in-flight row scopes during
        #: streaming ingest (0 when ingest went through a full DOM)
        self.peak_ingest_buffered_bytes = 0
        self.elapsed_seconds = 0.0
        self.profiler = None

    def as_dict(self):
        return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self):
        return "ExecutionStats(%s)" % ", ".join(
            "%s=%s" % (name, _fmt_stat(getattr(self, name)))
            for name in self._FIELDS
        )


def _fmt_stat(value):
    if isinstance(value, float):
        return "%.6f" % value
    return "%d" % value


class NodeProfile:
    """Per-plan-node counters for one profiled execution."""

    __slots__ = ("rows_out", "opens", "batches", "total_seconds")

    def __init__(self):
        self.rows_out = 0
        self.opens = 0
        #: batches emitted when the node ran on the vectorized path
        self.batches = 0
        self.total_seconds = 0.0


class PlanProfiler:
    """Collects per-node row counts and wall time during execution.

    Attached via ``stats.profiler``; every plan node routes child
    iteration through :meth:`PlanNode.iter_rows`, which wraps the row
    generator when a profiler is present.  Time spent inside a node's
    ``next()`` includes its children (total time); self time is derived
    at rendering time as total minus the children's totals.

    The profiler captures the ambient trace id at construction, so an
    EXPLAIN ANALYZE retained by the flight recorder links back to the
    request whose execution produced it.
    """

    def __init__(self):
        self._profiles = {}  # id(node) -> NodeProfile
        #: trace id of the request this execution profiled under (None
        #: outside any trace)
        self.trace_id = current_trace_id()

    def profile_of(self, node):
        profile = self._profiles.get(id(node))
        if profile is None:
            profile = self._profiles[id(node)] = NodeProfile()
        return profile

    def get(self, node):
        return self._profiles.get(id(node))

    def wrap(self, node, iterator):
        profile = self.profile_of(node)
        profile.opens += 1
        while True:
            start = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                profile.total_seconds += time.perf_counter() - start
                return
            profile.total_seconds += time.perf_counter() - start
            profile.rows_out += 1
            yield row

    def wrap_batches(self, node, iterator):
        """Like :meth:`wrap` but over a batch iterator: counts whole
        batches and the rows inside them."""
        profile = self.profile_of(node)
        profile.opens += 1
        while True:
            start = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                profile.total_seconds += time.perf_counter() - start
                return
            profile.total_seconds += time.perf_counter() - start
            profile.batches += 1
            profile.rows_out += len(batch)
            yield batch

    def self_seconds(self, node):
        """Total time minus the direct children's total time."""
        profile = self.get(node)
        if profile is None:
            return 0.0
        child_total = sum(
            self.get(child).total_seconds
            for child in node.children()
            if self.get(child) is not None
        )
        return max(0.0, profile.total_seconds - child_total)


class PlanNode:
    """Base class: ``rows(db, env, stats)`` yields environment dicts."""

    def rows(self, db, env, stats):
        raise NotImplementedError

    def iter_rows(self, db, env, stats):
        """Open this node's row stream, profiled when ``stats`` carries a
        :class:`PlanProfiler`.  Parents iterate children through this
        (not ``rows``) so per-node counts are collected."""
        profiler = getattr(stats, "profiler", None)
        if profiler is None:
            return self.rows(db, env, stats)
        return profiler.wrap(self, self.rows(db, env, stats))

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        """Yield row environments in lists of up to ``batch_size``.

        The base implementation chunks :meth:`rows`; operators with a
        genuinely vectorized inner loop override this to build batches
        without a per-row generator hop.
        """
        batch = []
        for row_env in self.rows(db, env, stats):
            batch.append(row_env)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def iter_batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        """Open this node's batch stream (profiled like
        :meth:`iter_rows`).  Parents on the vectorized path iterate
        children through this so per-node batch/row counts are
        collected."""
        profiler = getattr(stats, "profiler", None)
        if profiler is None:
            return self.batches(db, env, stats, batch_size)
        return profiler.wrap_batches(
            self, self.batches(db, env, stats, batch_size)
        )

    def children(self):
        return ()

    def iter_plan(self):
        yield self
        for child in self.children():
            for node in child.iter_plan():
                yield node


class Scan(PlanNode):
    """Full table scan."""

    def __init__(self, table_name, alias=None):
        self.table_name = table_name
        self.alias = alias or table_name

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        names = table.schema.column_names()
        for _, row in table.scan():
            stats.rows_scanned += 1
            merged = dict(env)
            merged[self.alias] = dict(zip(names, row))
            yield merged

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        table = db.table(self.table_name)
        names = table.schema.column_names()
        alias = self.alias
        batch = []
        for _, row in table.scan():
            stats.rows_scanned += 1
            merged = dict(env)
            merged[alias] = dict(zip(names, row))
            batch.append(merged)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class IndexScan(PlanNode):
    """B-tree probe: ``column op key`` where ``key`` may be correlated."""

    def __init__(self, table_name, index_name, op, key_expr, alias=None,
                 column_name=None):
        self.table_name = table_name
        self.index_name = index_name
        self.op = op
        self.key_expr = key_expr
        self.alias = alias or table_name
        self.column_name = column_name  # for SQL rendering only

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        index = db.index(self.index_name)
        key = self.key_expr.evaluate(env, db, stats)
        key = table.schema.column(index.column_name).coerce(key)
        names = table.schema.column_names()
        for row_id in index.lookup_op(self.op, key, stats=stats):
            stats.rows_scanned += 1
            row = table.fetch(row_id)
            merged = dict(env)
            merged[self.alias] = dict(zip(names, row))
            yield merged

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        table = db.table(self.table_name)
        index = db.index(self.index_name)
        key = self.key_expr.evaluate(env, db, stats)
        key = table.schema.column(index.column_name).coerce(key)
        names = table.schema.column_names()
        alias = self.alias
        batch = []
        for row_id in index.lookup_op(self.op, key, stats=stats):
            stats.rows_scanned += 1
            merged = dict(env)
            merged[alias] = dict(zip(names, table.fetch(row_id)))
            batch.append(merged)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class Filter(PlanNode):
    """Row filter over a child plan."""

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        for row_env in self.child.iter_rows(db, env, stats):
            if bool(self.predicate.evaluate(row_env, db, stats)):
                yield row_env

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        predicate = self.predicate
        batch = []
        for child_batch in self.child.iter_batches(db, env, stats,
                                                   batch_size):
            for row_env in child_batch:
                if bool(predicate.evaluate(row_env, db, stats)):
                    batch.append(row_env)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class NestedLoopJoin(PlanNode):
    """Inner join: right side re-evaluated per left row (correlated OK)."""

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition

    def children(self):
        return (self.left, self.right)

    def rows(self, db, env, stats):
        for left_env in self.left.iter_rows(db, env, stats):
            for joined in self.right.iter_rows(db, left_env, stats):
                if self.condition is None or bool(
                    self.condition.evaluate(joined, db, stats)
                ):
                    yield joined

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        condition = self.condition
        batch = []
        for left_batch in self.left.iter_batches(db, env, stats, batch_size):
            for left_env in left_batch:
                # right side stays row-driven: it is re-opened per left
                # row (correlated), so there is no inner batch to reuse
                for joined in self.right.iter_rows(db, left_env, stats):
                    if condition is None or bool(
                        condition.evaluate(joined, db, stats)
                    ):
                        batch.append(joined)
                        if len(batch) >= batch_size:
                            yield batch
                            batch = []
        if batch:
            yield batch


class StructuralScan(PlanNode):
    """Structural path-index range scan: every element named ``name``, in
    document order (``(doc_id, start)``), via merged per-path B-tree
    ranges — no tree walk, no sort."""

    def __init__(self, table_name, name, alias=None, doc_id=None):
        self.table_name = table_name
        self.name = name
        self.alias = alias or table_name
        self.doc_id = doc_id

    def rows(self, db, env, stats):
        table = db.table(self.table_name)
        sindex = db.structural_index(self.table_name)
        names = table.schema.column_names()
        for _, row_id in sindex.scan_name(self.name, doc_id=self.doc_id,
                                          stats=stats):
            stats.rows_scanned += 1
            merged = dict(env)
            merged[self.alias] = dict(zip(names, table.fetch(row_id)))
            yield merged

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        batch = []
        for row_env in self.rows(db, env, stats):
            batch.append(row_env)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class StructuralJoin(PlanNode):
    """Stack-based ancestor/descendant merge join (Stack-Tree-Desc).

    Both inputs must arrive in ``(doc, start)`` containment-label order
    (StructuralScan and preorder-loaded table scans both do).  A stack of
    open ancestors replaces the per-pair containment test: each arriving
    descendant matches exactly the stack entries below it, bottom-to-top —
    O(n + m + output) instead of O(n * m * depth) parent-chain walking.

    Output order is descendant-major with ancestors ascending by start,
    which is byte-identical to ``NestedLoopJoin(descendant, ancestor,
    TreeContains)`` over start-ordered inputs.
    """

    def __init__(self, descendant, ancestor, desc_alias, anc_alias,
                 doc_column="doc_id", start_column="start",
                 end_column="end"):
        self.descendant = descendant
        self.ancestor = ancestor
        self.desc_alias = desc_alias
        self.anc_alias = anc_alias
        self.doc_column = doc_column
        self.start_column = start_column
        self.end_column = end_column

    def children(self):
        return (self.descendant, self.ancestor)

    def _pairs(self, db, env, stats):
        doc_col = self.doc_column
        start_col = self.start_column
        end_col = self.end_column
        anc_alias = self.anc_alias
        anc_iter = self.ancestor.iter_rows(db, env, stats)
        next_anc = next(anc_iter, None)
        # stack entries: (doc, start, end, ancestor-row dict), innermost last
        stack = []
        emitted = 0
        try:
            for desc_env in self.descendant.iter_rows(db, env, stats):
                desc_row = desc_env[self.desc_alias]
                desc_key = (desc_row[doc_col], desc_row[start_col])
                while next_anc is not None:
                    anc_row = next_anc[anc_alias]
                    anc_key = (anc_row[doc_col], anc_row[start_col])
                    if anc_key > desc_key:
                        break
                    while stack and (stack[-1][0], stack[-1][2]) < anc_key:
                        stack.pop()
                    stack.append(
                        (anc_key[0], anc_key[1], anc_row[end_col], anc_row))
                    next_anc = next(anc_iter, None)
                while stack and (stack[-1][0], stack[-1][2]) < desc_key:
                    stack.pop()
                for doc, start, end, anc_row in stack:
                    # strict: a node never pairs with itself
                    if doc == desc_key[0] and start < desc_key[1]:
                        merged = dict(desc_env)
                        merged[anc_alias] = anc_row
                        emitted += 1
                        stats.struct_join_rows += 1
                        yield merged
        finally:
            close = getattr(anc_iter, "close", None)
            if close is not None:
                close()
            global_metrics().counter("structural.index.join_rows").inc(
                emitted)

    def rows(self, db, env, stats):
        return self._pairs(db, env, stats)

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        batch = []
        for row_env in self._pairs(db, env, stats):
            batch.append(row_env)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


class HashJoin(PlanNode):
    """Equi-join: build a hash table over the right side, probe with the
    left side in order.

    Output rows (and their order) are identical to the equivalent
    ``NestedLoopJoin``: left rows drive in left order, and within one
    probe the matches come back in right-side build order.  The right
    side is evaluated exactly once against the outer environment, so the
    planner only picks this operator when the right side is uncorrelated
    with the left.  ``condition`` carries any residual (non-equi)
    predicate evaluated against the joined environment.
    """

    def __init__(self, left, right, left_key, right_key, condition=None):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.condition = condition

    def children(self):
        return (self.left, self.right)

    def _build(self, db, env, stats):
        """``{canonical key: [alias-additions in build order]}`` plus the
        baseline env keys (to split right-introduced bindings out of the
        built row environments)."""
        table = {}
        for row_env in self.right.iter_rows(db, env, stats):
            key = _hash_key(self.right_key.evaluate(row_env, db, stats))
            stats.hash_build_rows += 1
            if key is None:
                continue  # NULL never equi-joins
            additions = {
                alias: bindings
                for alias, bindings in row_env.items()
                if env.get(alias) is not bindings
            }
            table.setdefault(key, []).append(additions)
        return table

    def _probe(self, db, env, stats, table, left_env):
        stats.hash_probes += 1
        key = _hash_key(self.left_key.evaluate(left_env, db, stats))
        if key is None:
            return
        for additions in table.get(key, ()):
            joined = dict(left_env)
            joined.update(additions)
            if self.condition is None or bool(
                self.condition.evaluate(joined, db, stats)
            ):
                yield joined

    def rows(self, db, env, stats):
        table = self._build(db, env, stats)
        for left_env in self.left.iter_rows(db, env, stats):
            for joined in self._probe(db, env, stats, table, left_env):
                yield joined

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        table = self._build(db, env, stats)
        batch = []
        for left_batch in self.left.iter_batches(db, env, stats, batch_size):
            for left_env in left_batch:
                for joined in self._probe(db, env, stats, table, left_env):
                    batch.append(joined)
                    if len(batch) >= batch_size:
                        yield batch
                        batch = []
        if batch:
            yield batch


class HashLeftJoin(PlanNode):
    """Left-preserving multi-key equi hash join against a grouped
    aggregate build side — the decorrelation operator.

    ``right`` must be an :class:`Aggregate` whose group keys are the
    build keys.  Every left row yields exactly one output row: when a
    group matches, its bindings; when none does, the aggregate's
    empty-group defaults (:meth:`Aggregate.empty_row` — COUNT()=0,
    XMLAgg=[], SUM/MIN/MAX=NULL), exactly what the correlated
    ``ScalarSubquery`` returned for a parent row with no children.
    Group keys are unique, so cardinality and left order are preserved
    — the invariant that keeps decorrelated output byte-identical.
    """

    def __init__(self, left, right, left_keys, right_keys):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)

    def children(self):
        return (self.left, self.right)

    def _build(self, db, env, stats):
        table = {}
        for row_env in self.right.iter_rows(db, env, stats):
            stats.hash_build_rows += 1
            key = tuple(
                _hash_key(expr.evaluate(row_env, db, stats))
                for expr in self.right_keys
            )
            if None in key:
                continue  # a NULL key component never equi-joins
            additions = {
                alias: bindings
                for alias, bindings in row_env.items()
                if env.get(alias) is not bindings
            }
            table.setdefault(key, []).append(additions)
        return table

    def _miss_additions(self, db, env, stats):
        """Alias bindings standing in for a left row with no matching
        group; computed once per execution and shared (consumers treat
        row environments as read-only)."""
        return {self.right.alias: self.right.empty_row(db, env, stats)}

    def _joined(self, db, env, stats, table, miss_cell, left_env):
        stats.hash_probes += 1
        key = tuple(
            _hash_key(expr.evaluate(left_env, db, stats))
            for expr in self.left_keys
        )
        matches = table.get(key) if None not in key else None
        if not matches:
            if miss_cell[0] is None:
                miss_cell[0] = self._miss_additions(db, env, stats)
            matches = (miss_cell[0],)
        for additions in matches:
            joined = dict(left_env)
            joined.update(additions)
            yield joined

    def rows(self, db, env, stats):
        table = self._build(db, env, stats)
        miss_cell = [None]
        for left_env in self.left.iter_rows(db, env, stats):
            for joined in self._joined(db, env, stats, table, miss_cell,
                                       left_env):
                yield joined

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        table = self._build(db, env, stats)
        miss_cell = [None]
        batch = []
        for left_batch in self.left.iter_batches(db, env, stats, batch_size):
            for left_env in left_batch:
                for joined in self._joined(db, env, stats, table, miss_cell,
                                           left_env):
                    batch.append(joined)
                    if len(batch) >= batch_size:
                        yield batch
                        batch = []
        if batch:
            yield batch


def _hash_key(value):
    """Canonical equi-join hash key, matching ``BinOp('=')`` semantics:
    NULL joins nothing (None sentinel), and mixed-type operands compare
    as SQL text — so every key hashes by its text rendering (integral
    floats and ints collapse to the same string, exactly as ``=`` treats
    them as equal)."""
    from repro.rdb.expressions import _text

    if value is None:
        return None
    return _text(value)


class Sort(PlanNode):
    """Materialising sort."""

    def __init__(self, child, keys):
        self.child = child
        self.keys = keys  # list of (expr, descending)

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        for _, row_env in self._decorated(db, env, stats):
            yield row_env

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        decorated = self._decorated(db, env, stats)
        for start in range(0, len(decorated), batch_size):
            yield [row_env
                   for _, row_env in decorated[start:start + batch_size]]

    def _decorated(self, db, env, stats):
        """Sorted ``(key_row, row_env)`` pairs.  This node is the sole
        consumer of the child's row stream, so rows are decorated in the
        same pass that drains it — no intermediate copy of the full row
        list before decoration."""
        decorated = [
            ([expr.evaluate(row_env, db, stats) for expr, _ in self.keys],
             row_env)
            for row_env in self.child.iter_rows(db, env, stats)
        ]
        for position in range(len(self.keys) - 1, -1, -1):
            descending = self.keys[position][1]
            decorated.sort(
                key=lambda pair: _null_safe(pair[0][position]),
                reverse=descending,
            )
        return decorated


def _null_safe(value):
    # Sort NULLs first; mixed types compare as text.
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, "", float(value))
    return (2, str(value), 0.0)


class Aggregate(PlanNode):
    """Hash aggregation with optional GROUP BY.

    Yields one environment per group under ``alias``, containing the group
    keys and the aggregate outputs.
    """

    def __init__(self, child, group_by, outputs, alias="agg"):
        self.child = child
        self.group_by = group_by  # list of (name, expr)
        self.outputs = outputs    # list of (name, expr w/ aggregates)
        self.alias = alias

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        aggregates = []
        for _, expr in self.outputs:
            aggregates.extend(find_aggregates(expr))
        groups = {}
        order = []
        for row_env in self.child.iter_rows(db, env, stats):
            key = tuple(
                expr.evaluate(row_env, db, stats) for _, expr in self.group_by
            )
            if key not in groups:
                groups[key] = {
                    id(agg): agg.new_state() for agg in aggregates
                }
                order.append(key)
            states = groups[key]
            for agg in aggregates:
                agg.accumulate(states[id(agg)], row_env, db, stats)
        if not self.group_by and not order:
            groups[()] = {id(agg): agg.new_state() for agg in aggregates}
            order.append(())
        for key in order:
            final_env = dict(env)
            final_env[AGG_STATE] = groups[key]
            out_row = {}
            for (name, _), value in zip(self.group_by, key):
                out_row[name] = value
            for name, expr in self.outputs:
                out_row[name] = expr.evaluate(final_env, db, stats)
            result_env = dict(env)
            result_env[self.alias] = out_row
            yield result_env

    def empty_row(self, db, env, stats):
        """The output row of a group no child row fell into: group keys
        NULL, aggregates finalized over fresh state (COUNT()=0,
        XMLAgg=[], SUM/MIN/MAX=NULL) — exactly what a correlated
        aggregating subquery returns when no row matches the parent.
        :class:`HashLeftJoin` binds this on probe misses."""
        aggregates = []
        for _, expr in self.outputs:
            aggregates.extend(find_aggregates(expr))
        final_env = dict(env)
        final_env[AGG_STATE] = {
            id(agg): agg.new_state() for agg in aggregates
        }
        out_row = {name: None for name, _ in self.group_by}
        for name, expr in self.outputs:
            out_row[name] = expr.evaluate(final_env, db, stats)
        return out_row


class TopN(PlanNode):
    """Bounded-buffer fusion of ``Limit(Sort(child, keys), count)``.

    Instead of materialising and fully sorting the child's output, a
    buffer of at most ``2 * count`` decorated rows is kept: whenever it
    overflows it is sorted (the same C-speed multi-pass stable sort the
    full Sort operator uses) and truncated back to the best ``count``
    rows.  Stable sorting preserves first-arrival order among ties, so
    the emitted rows (and their order) are exactly what the unfused
    ``Limit(Sort(...))`` pair produces — with O(count) memory.
    """

    def __init__(self, child, keys, count):
        self.child = child
        self.keys = keys    # list of (expr, descending), as Sort
        self.count = count

    def children(self):
        return (self.child,)

    def _prune(self, buffer):
        """Stable multi-pass sort (Sort._decorated's strategy), then keep
        only the best ``count`` decorated rows."""
        for position in range(len(self.keys) - 1, -1, -1):
            descending = self.keys[position][1]
            buffer.sort(
                key=lambda pair: _null_safe(pair[0][position]),
                reverse=descending,
            )
        del buffer[self.count:]

    def _top_rows(self, db, env, stats):
        if self.count <= 0:
            return []
        threshold = max(self.count * 2, 64)
        buffer = []
        for row_env in self.child.iter_rows(db, env, stats):
            stats.topn_heap_rows += 1
            buffer.append((
                [expr.evaluate(row_env, db, stats)
                 for expr, _ in self.keys],
                row_env,
            ))
            if len(buffer) >= threshold:
                self._prune(buffer)
        self._prune(buffer)
        return [row_env for _, row_env in buffer]

    def rows(self, db, env, stats):
        for row_env in self._top_rows(db, env, stats):
            yield row_env

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        top = self._top_rows(db, env, stats)
        for start in range(0, len(top), batch_size):
            yield top[start:start + batch_size]


class Limit(PlanNode):
    def __init__(self, child, count):
        self.child = child
        self.count = count

    def children(self):
        return (self.child,)

    def rows(self, db, env, stats):
        remaining = self.count
        if remaining <= 0:
            return
        for row_env in self.child.iter_rows(db, env, stats):
            yield row_env
            remaining -= 1
            if remaining <= 0:
                return

    def batches(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        remaining = self.count
        if remaining <= 0:
            return
        for batch in self.child.iter_batches(db, env, stats, batch_size):
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch


class Query:
    """A plan plus output expressions; the unit the database executes."""

    def __init__(self, plan, outputs):
        self.plan = plan
        self.outputs = outputs  # list of (name, expr)

    def is_aggregate(self):
        return any(find_aggregates(expr) for _, expr in self.outputs)

    def execute(self, db, env=None, stats=None, batch_size=None):
        """Run the query; returns (rows, stats).  Each row is a tuple of
        output values in declaration order.  With ``batch_size`` the plan
        runs on the vectorized path (``iter_batches``) instead of the
        row-at-a-time pull loop."""
        env = env or {}
        stats = stats or ExecutionStats()
        start = time.perf_counter()
        if batch_size:
            rows = []
            for batch in self.execute_batches(db, env=env, stats=stats,
                                              batch_size=batch_size,
                                              _timed=False):
                rows.extend(batch)
        else:
            rows = list(self._iterate(db, env, stats))
        stats.elapsed_seconds += time.perf_counter() - start
        stats.output_rows += len(rows)
        return rows, stats

    def execute_batches(self, db, env=None, stats=None,
                        batch_size=DEFAULT_BATCH_SIZE, _timed=True):
        """Yield lists of output-row tuples, at most ``batch_size`` each.

        The whole operator tree runs batched: every plan node hands its
        parent a list of row environments instead of one row per
        ``next()``.  ``stats.batches`` counts the top-level batches.
        """
        env = env or {}
        stats = stats or ExecutionStats()
        start = time.perf_counter() if _timed else None
        if self.is_aggregate():
            final_env = self._accumulate(db, env, stats, batch_size)
            out = [tuple(
                expr.evaluate(final_env, db, stats)
                for _, expr in self.outputs
            )]
            stats.batches += 1
            if _timed:
                stats.elapsed_seconds += time.perf_counter() - start
                stats.output_rows += 1
            yield out
            return
        outputs = self.outputs
        for batch in self.plan.iter_batches(db, env, stats, batch_size):
            out = [
                tuple(expr.evaluate(row_env, db, stats)
                      for _, expr in outputs)
                for row_env in batch
            ]
            stats.batches += 1
            if _timed:
                stats.output_rows += len(out)
            yield out
        if _timed:
            stats.elapsed_seconds += time.perf_counter() - start

    def _accumulate(self, db, env, stats, batch_size=DEFAULT_BATCH_SIZE):
        """Drain the plan into aggregate states (vectorized); returns the
        final environment carrying ``AGG_STATE``."""
        aggregates = []
        for _, expr in self.outputs:
            aggregates.extend(find_aggregates(expr))
        states = {id(agg): agg.new_state() for agg in aggregates}
        for batch in self.plan.iter_batches(db, env, stats, batch_size):
            for row_env in batch:
                for agg in aggregates:
                    agg.accumulate(states[id(agg)], row_env, db, stats)
        final_env = dict(env)
        final_env[AGG_STATE] = states
        return final_env

    def _iterate(self, db, env, stats):
        if self.is_aggregate():
            aggregates = []
            for _, expr in self.outputs:
                aggregates.extend(find_aggregates(expr))
            states = {id(agg): agg.new_state() for agg in aggregates}
            for row_env in self.plan.iter_rows(db, env, stats):
                for agg in aggregates:
                    agg.accumulate(states[id(agg)], row_env, db, stats)
            final_env = dict(env)
            final_env[AGG_STATE] = states
            yield tuple(
                expr.evaluate(final_env, db, stats) for _, expr in self.outputs
            )
            return
        for row_env in self.plan.iter_rows(db, env, stats):
            yield tuple(
                expr.evaluate(row_env, db, stats) for _, expr in self.outputs
            )

    # -- explain --------------------------------------------------------------

    def explain(self, db=None, analyze=False, env=None):
        """This query's :class:`~repro.obs.explain.ExplainReport` (a
        thin shim over it) — render with ``str()``, export with
        ``.to_json()``.  ``analyze=True`` executes against ``db``."""
        from repro.obs.explain import ExplainReport

        if analyze and db is None:
            raise PlanError("Query.explain(analyze=True) requires db=")
        assign_plan_node_ids(self)
        return ExplainReport.for_query(db, self, analyze=analyze, env=env)

    # -- streaming ------------------------------------------------------------

    def stream_pieces(self, db, env=None, stats=None,
                      batch_size=DEFAULT_BATCH_SIZE):
        """Yield serialized text pieces of the first output column of
        every row, in row order.

        This is the incremental SQL/XML publishing path: the result
        column (the ``xml_content`` construction in rewritten plans)
        streams through :func:`repro.rdb.sqlxml.stream_expr_pieces`
        instead of building result DOMs, so the concatenation of the
        pieces is byte-identical to executing the query and serializing
        ``row[0]`` of every row — exactly what ``core.transform``
        renders — while no piece ever spans more than one bounded
        subtree.  Row flow underneath is batched (``iter_batches``).
        """
        env = env or {}
        stats = stats or ExecutionStats()
        if not self.outputs:
            raise PlanError("cannot stream a query with no outputs")
        expr = self.outputs[0][1]
        if self.is_aggregate():
            final_env = self._accumulate(db, env, stats, batch_size)
            stats.batches += 1
            stats.output_rows += 1
            for piece in stream_expr_pieces(expr, final_env, db, stats,
                                            escape=False):
                yield piece
            return
        for batch in self.plan.iter_batches(db, env, stats, batch_size):
            stats.batches += 1
            stats.output_rows += len(batch)
            for row_env in batch:
                for piece in stream_expr_pieces(expr, row_env, db, stats,
                                                escape=False):
                    yield piece

    def stream_scalar_pieces(self, db, env, stats, escape=True,
                             batch_size=DEFAULT_BATCH_SIZE):
        """Streaming twin of :meth:`execute_scalar`: yield serialized
        pieces of the single output value instead of materializing it.
        Aggregate outputs (the correlated XMLAgg subqueries the SQL merge
        builds per repeating element) stream straight out of the
        accumulated group — no per-group result DOM."""
        if len(self.outputs) != 1:
            raise PlanError("scalar subquery must have one output column")
        if not self.is_aggregate():
            value = self.execute_scalar(db, env, stats)
            for piece in stream_value_pieces(value, escape=escape):
                yield piece
            return
        stats.subquery_executions += 1
        final_env = self._accumulate(db, env, stats, batch_size)
        for piece in stream_expr_pieces(self.outputs[0][1], final_env, db,
                                        stats, escape=escape):
            yield piece

    def execute_scalar(self, db, env, stats):
        """Scalar-subquery evaluation: exactly one output column."""
        if len(self.outputs) != 1:
            raise PlanError("scalar subquery must have one output column")
        stats.subquery_executions += 1
        rows = list(self._iterate(db, env, stats))
        if not rows:
            return None
        if len(rows) > 1:
            raise DatabaseError(
                "scalar subquery returned %d rows" % len(rows)
            )
        return rows[0][0]

    # -- SQL rendering --------------------------------------------------------

    def fingerprint(self):
        """Stable content hash of this query's shape (its SQL rendering).

        The serving layer (:mod:`repro.serve`) keys compiled plans by the
        stylesheet hash plus the source's structural fingerprint; two
        queries with the same SQL text compile to the same plan against
        the same catalog.  Index DDL is *not* visible in the SQL text —
        storage-level fingerprints (:meth:`ObjectRelationalStorage.
        fingerprint`) cover that.
        """
        import hashlib

        return hashlib.sha256(self.to_sql().encode("utf-8")).hexdigest()

    def to_sql(self):
        select = ", ".join(
            expr.to_sql() + (" AS %s" % name if name else "")
            for name, expr in self.outputs
        )
        from_clause, where_clause, order_clause = _render_plan(self.plan)
        text = "SELECT %s" % select
        if from_clause:
            text += " FROM %s" % from_clause
        if where_clause:
            text += " WHERE %s" % where_clause
        if order_clause:
            text += " ORDER BY %s" % order_clause
        return text


def _render_plan(plan):
    """Render the supported plan shapes to FROM/WHERE/ORDER BY fragments."""
    order_clause = ""
    rownum_limit = None
    if isinstance(plan, TopN):
        rownum_limit = plan.count
        order_clause = ", ".join(
            expr.to_sql() + (" DESC" if descending else "")
            for expr, descending in plan.keys
        )
        plan = plan.child
    elif isinstance(plan, Sort):
        order_clause = ", ".join(
            expr.to_sql() + (" DESC" if descending else "")
            for expr, descending in plan.keys
        )
        plan = plan.child

    predicates = []
    sources = []
    _collect(plan, sources, predicates)
    if rownum_limit is not None:
        predicates.append("ROWNUM <= %d" % rownum_limit)
    from_clause = ", ".join(sources)
    where_clause = " AND ".join(predicates)
    return from_clause, where_clause, order_clause


def _collect(plan, sources, predicates):
    if isinstance(plan, Filter):
        _collect(plan.child, sources, predicates)
        predicates.append(plan.predicate.to_sql())
    elif isinstance(plan, Scan):
        sources.append(_source(plan.table_name, plan.alias))
    elif isinstance(plan, IndexScan):
        sources.append(_source(plan.table_name, plan.alias))
        column = plan.column_name or plan.index_name
        predicates.append(
            '"%s"."%s" %s %s /*+ INDEX(%s) */'
            % (
                plan.alias.upper(),
                column.upper(),
                plan.op,
                plan.key_expr.to_sql(),
                plan.index_name,
            )
        )
    elif isinstance(plan, StructuralScan):
        sources.append(_source(plan.table_name, plan.alias))
        predicate = '"%s"."NAME" = \'%s\' /*+ STRUCT_PATH(%s) */' % (
            plan.alias.upper(), plan.name, plan.table_name)
        if plan.doc_id is not None:
            predicate += ' AND "%s"."DOC_ID" = %s' % (
                plan.alias.upper(), plan.doc_id)
        predicates.append(predicate)
    elif isinstance(plan, StructuralJoin):
        _collect(plan.descendant, sources, predicates)
        _collect(plan.ancestor, sources, predicates)
        predicates.append(
            'STRUCT_CONTAINS("%s", "%s") /*+ STRUCT_JOIN */'
            % (plan.anc_alias.upper(), plan.desc_alias.upper()))
    elif isinstance(plan, NestedLoopJoin):
        _collect(plan.left, sources, predicates)
        _collect(plan.right, sources, predicates)
        if plan.condition is not None:
            predicates.append(plan.condition.to_sql())
    elif isinstance(plan, HashJoin):
        _collect(plan.left, sources, predicates)
        _collect(plan.right, sources, predicates)
        predicates.append(
            "%s = %s /*+ USE_HASH */"
            % (plan.left_key.to_sql(), plan.right_key.to_sql())
        )
        if plan.condition is not None:
            predicates.append(plan.condition.to_sql())
    elif isinstance(plan, HashLeftJoin):
        _collect(plan.left, sources, predicates)
        _collect(plan.right, sources, predicates)
        predicates.extend(
            "%s = %s (+) /*+ USE_HASH */"
            % (lk.to_sql(), rk.to_sql())
            for lk, rk in zip(plan.left_keys, plan.right_keys)
        )
    elif isinstance(plan, TopN):
        _collect(plan.child, sources, predicates)
        predicates.append("ROWNUM <= %d" % plan.count)
    elif isinstance(plan, Limit):
        _collect(plan.child, sources, predicates)
        predicates.append("ROWNUM <= %d" % plan.count)
    elif isinstance(plan, Aggregate):
        inner_sources = []
        inner_predicates = []
        _collect(plan.child, inner_sources, inner_predicates)
        body = "SELECT %s FROM %s" % (
            ", ".join(
                ["%s AS %s" % (expr.to_sql(), name)
                 for name, expr in plan.group_by]
                + ["%s AS %s" % (expr.to_sql(), name)
                   for name, expr in plan.outputs]
            ),
            ", ".join(inner_sources) or "DUAL",
        )
        if inner_predicates:
            body += " WHERE %s" % " AND ".join(inner_predicates)
        if plan.group_by:
            body += " GROUP BY %s" % ", ".join(
                expr.to_sql() for _, expr in plan.group_by
            )
        sources.append("(%s) %s" % (body, plan.alias))
    else:  # pragma: no cover - defensive
        sources.append("(/* %s */)" % type(plan).__name__)


def _source(table_name, alias):
    if alias and alias != table_name:
        return "%s %s" % (table_name.upper(), alias)
    return table_name.upper()


def assign_plan_node_ids(plan_or_query, extra_plans=()):
    """Stamp every plan node with a stable pre-order ``plan_node_id``.

    The ids appear in ``explain`` output as ``#n`` and are what the
    rewrite-decision ledger (:mod:`repro.obs.decisions`) records as SQL
    provenance.  ``extra_plans`` extends numbering over plan trees that
    hang off expressions rather than the main tree — the correlated
    XMLAgg subqueries the SQL merge builds per repeating element.
    Returns the ``{id(node): plan_node_id}`` map.
    """
    roots = []
    if isinstance(plan_or_query, Query):
        roots.append(plan_or_query.plan)
    elif plan_or_query is not None:
        roots.append(getattr(plan_or_query, "plan", plan_or_query))
    roots.extend(extra_plans)
    ids = {}
    counter = 0
    for root in roots:
        if not hasattr(root, "iter_plan"):
            continue
        for node in root.iter_plan():
            if id(node) in ids:
                continue
            counter += 1
            node.plan_node_id = counter
            ids[id(node)] = counter
    return ids


def explain(plan_or_query, indent=0, profile=None, analyze=False, db=None,
            env=None, stats=None):
    """A readable operator-tree rendering (EXPLAIN).

    ``explain(query, analyze=True, db=db)`` *executes* the query with a
    :class:`PlanProfiler` attached and annotates every node with its
    actual row count, open count and self/total wall time (EXPLAIN
    ANALYZE), followed by an execution-stats summary line.  Pass
    ``profile=`` to render a tree against an already-collected profiler
    without re-executing.
    """
    if analyze:
        if not isinstance(plan_or_query, Query):
            raise PlanError("explain(analyze=True) requires a Query")
        if db is None:
            raise PlanError("explain(analyze=True) requires db=")
        stats = stats or ExecutionStats()
        if stats.profiler is None:
            stats.profiler = PlanProfiler()
        plan_or_query.execute(db, env=env, stats=stats)
        text = explain(plan_or_query, profile=stats.profiler)
        summary = ", ".join(
            "%s=%s" % (name, _fmt_stat(value))
            for name, value in stats.as_dict().items()
            if value
        )
        return "%s\nExecution: %s" % (text, summary)
    if isinstance(plan_or_query, Query):
        lines = ["QUERY outputs=[%s]" % ", ".join(
            name or expr.to_sql() for name, expr in plan_or_query.outputs
        )]
        lines.extend(
            explain(plan_or_query.plan, indent + 1, profile=profile)
            .splitlines()
        )
        return "\n".join(lines)
    plan = plan_or_query
    pad = "  " * indent
    label = type(plan).__name__
    node_id = getattr(plan, "plan_node_id", None)
    if node_id is not None:
        label = "#%d %s" % (node_id, label)
    detail = ""
    if isinstance(plan, Scan):
        detail = " table=%s alias=%s" % (plan.table_name, plan.alias)
    elif isinstance(plan, IndexScan):
        detail = " table=%s index=%s op=%s key=%s" % (
            plan.table_name, plan.index_name, plan.op, plan.key_expr.to_sql(),
        )
    elif isinstance(plan, Filter):
        detail = " predicate=%s" % plan.predicate.to_sql()
    elif isinstance(plan, Sort):
        detail = " keys=%s" % ", ".join(expr.to_sql() for expr, _ in plan.keys)
    elif isinstance(plan, TopN):
        detail = " keys=%s count=%d" % (
            ", ".join(expr.to_sql() for expr, _ in plan.keys), plan.count,
        )
    elif isinstance(plan, HashJoin):
        detail = " build=right key=%s = %s" % (
            plan.left_key.to_sql(), plan.right_key.to_sql(),
        )
    elif isinstance(plan, HashLeftJoin):
        detail = " build=right(outer) keys=%s" % ", ".join(
            "%s = %s" % (lk.to_sql(), rk.to_sql())
            for lk, rk in zip(plan.left_keys, plan.right_keys)
        )
    elif isinstance(plan, Aggregate):
        detail = " alias=%s group_by=[%s]" % (
            plan.alias, ", ".join(name for name, _ in plan.group_by),
        )
    elif isinstance(plan, StructuralScan):
        detail = " table=%s name=%s alias=%s" % (
            plan.table_name, plan.name, plan.alias,
        )
        if plan.doc_id is not None:
            detail += " doc=%s" % plan.doc_id
    elif isinstance(plan, StructuralJoin):
        detail = " desc=%s anc=%s labels=(%s,%s)" % (
            plan.desc_alias, plan.anc_alias,
            plan.start_column, plan.end_column,
        )
    lines = [pad + label + detail + _estimate_note(plan)
             + _profile_note(plan, profile)]
    for child in plan.children():
        lines.append(explain(child, indent + 1, profile=profile))
    return "\n".join(lines)


def _estimate_note(plan):
    """Cost-based planner estimates, when the optimizer stamped them."""
    estimated_rows = getattr(plan, "estimated_rows", None)
    if estimated_rows is None:
        return ""
    estimated_cost = getattr(plan, "estimated_cost", None)
    note = "  (est rows=%s" % _fmt_estimate(estimated_rows)
    if estimated_cost is not None:
        note += " cost=%s" % _fmt_estimate(estimated_cost)
    return note + ")"


def _fmt_estimate(value):
    if float(value) == int(value):
        return "%d" % int(value)
    return "%.1f" % value


def _profile_note(plan, profile):
    if profile is None:
        return ""
    node_profile = profile.get(plan)
    if node_profile is None:
        return "  (never executed)"
    batches = ""
    if node_profile.batches:
        batches = " batches=%d" % node_profile.batches
    qnote = ""
    if getattr(plan, "estimated_rows", None) is not None:
        from repro.obs.feedback import format_qerror, q_error

        # estimates are per open; a correlated inner plan re-opens per
        # outer row, so judge the per-open actual (rows / loops)
        opens = node_profile.opens or 1
        qnote = " q=%s" % format_qerror(
            q_error(plan.estimated_rows, node_profile.rows_out / opens)
        )
    return "  (actual rows=%d%s opens=%d total=%.3fms self=%.3fms%s)" % (
        node_profile.rows_out,
        batches,
        node_profile.opens,
        node_profile.total_seconds * 1000.0,
        profile.self_seconds(plan) * 1000.0,
        qnote,
    )


def record_plan_metrics(query, profiler, metrics):
    """Export a profiled execution's per-operator counters into an obs
    :class:`~repro.obs.metrics.MetricsRegistry` —
    ``plan.operator_rows{op=...}`` for every executed node and
    ``plan.operator_batches{op=...}`` for nodes that ran vectorized, so
    dashboards can see how much of the plan went through the batched
    path."""
    if profiler is None or metrics is None:
        return
    plan = query.plan if isinstance(query, Query) else query
    nodes = [plan]
    while nodes:
        node = nodes.pop()
        nodes.extend(node.children())
        profile = profiler.get(node)
        if profile is None:
            continue
        op = type(node).__name__
        metrics.counter("plan.operator_rows", op=op).inc(profile.rows_out)
        if profile.batches:
            metrics.counter(
                "plan.operator_batches", op=op
            ).inc(profile.batches)
