"""Tree storage for XMLType (the third storage model in the paper's
Figure 1: "Tree Storage", alongside object-relational and CLOB/BLOB).

Every node of every document becomes one row of a generic node table::

    <name>_nodes(node_id, doc_id, parent_id, seq, kind, name, value,
                 start, end, level)

``(start, end, level)`` are containment labels (see
:mod:`repro.xmlmodel.labels`): rows are inserted in preorder, so a table
scan already streams nodes in ``(doc_id, start)`` order and descendant
tests are pure interval arithmetic instead of parent-chain walks.

Unlike object-relational shredding, tree storage needs no schema and
handles *any* document — mixed content, comments, processing
instructions.  The cost is that navigation is self-joins over the node
table; the paper's §7.4 proposes tree storage *with path/value indexes*.
:class:`TreeStorage` maintains two of them: a :class:`PathValueIndex` for
document-level value filtering, and a
:class:`~repro.rdb.structindex.StructuralPathIndex` that turns
descendant-axis (``//``) steps into index range scans feeding a
:class:`~repro.rdb.plan.StructuralJoin`.

Documents load either from a DOM (:meth:`load`) or straight from text in
bounded memory (:meth:`load_stream`): the streaming path assigns the same
labels, inserts the same rows in the same order, and maintains the same
indexes, one SAX-style event at a time.
"""

from __future__ import annotations

from functools import reduce

from repro.errors import DatabaseError
from repro.rdb.expressions import TreeContains, and_, col, const, eq
from repro.rdb.pathindex import PathValueIndex
from repro.rdb.plan import Filter, NestedLoopJoin, Query, Scan
from repro.rdb.structindex import StructuralPathIndex
from repro.rdb.types import INT, TEXT
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.labels import assign_labels
from repro.xmlmodel.nodes import NodeKind
from repro.xmlmodel.stream_ingest import DEFAULT_CHUNK_SIZE, StreamParser


class TreeStorage:
    """Schema-less node-table storage with path/value + structural
    indexes."""

    def __init__(self, db, name, path_index=True, structural_index=True):
        self.db = db
        self.name = name
        self.table_name = "%s_nodes" % name
        db.create_table(
            self.table_name,
            [
                ("node_id", INT),
                ("doc_id", INT),
                ("parent_id", INT),
                ("seq", INT),
                ("kind", TEXT),
                ("name", TEXT),
                ("value", TEXT),
                ("start", INT),
                ("end", INT),
                ("level", INT),
            ],
        )
        db.create_index(self.table_name, "doc_id")
        db.create_index(self.table_name, "node_id")
        self.index = PathValueIndex() if path_index else None
        self.structural = None
        if structural_index:
            self.structural = db.register_structural_index(
                StructuralPathIndex(self.table_name))
        self._doc_counter = 0
        self._node_counter = 0

    # -- loading -----------------------------------------------------------

    def load(self, document):
        self._doc_counter += 1
        doc_id = self._doc_counter
        assign_labels(document)
        for seq, child in enumerate(document.children):
            self._insert_node(child, doc_id, parent_id=0, seq=seq, path="")
        if self.index is not None:
            self.index.add_document(doc_id, document)
        return doc_id

    def load_many(self, documents):
        return [self.load(document) for document in documents]

    def _insert_node(self, node, doc_id, parent_id, seq, path):
        self._node_counter += 1
        node_id = self._node_counter
        kind = node.kind
        label = node.label
        if kind == NodeKind.ELEMENT:
            node_path = "%s/%s" % (path, node.name.local)
            row_ids = self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "element",
                 node.name.local, None,
                 label.start, label.end, label.level),
            )
            if self.structural is not None:
                self.structural.add(
                    node_path, node.name.local, doc_id, label.start,
                    row_ids[0])
            position = 0
            for attribute in node.attributes:
                self._node_counter += 1
                attr_label = attribute.label
                self.db.insert(
                    self.table_name,
                    (self._node_counter, doc_id, node_id, position,
                     "attribute", attribute.name.local, attribute.value,
                     attr_label.start, attr_label.end, attr_label.level),
                )
                position += 1
            for child in node.children:
                self._insert_node(child, doc_id, node_id, position,
                                  node_path)
                position += 1
        elif kind == NodeKind.TEXT:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "text", None, node.value,
                 label.start, label.end, label.level),
            )
        elif kind == NodeKind.COMMENT:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "comment", None,
                 node.value, label.start, label.end, label.level),
            )
        elif kind == NodeKind.PI:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "pi", node.target,
                 node.value, label.start, label.end, label.level),
            )
        else:
            raise DatabaseError("cannot store node kind %r" % kind)

    # -- streaming ingest -----------------------------------------------------

    def load_stream(self, source, strip_whitespace=False, stats=None,
                    chunk_size=DEFAULT_CHUNK_SIZE):
        """Shred XML text into the node table without building a DOM.

        *source* is a string, a file-like object, or an iterable of text
        chunks.  Labels, node ids, row order and every index end up
        identical to :meth:`load` over the parsed document; memory stays
        bounded by the parser's token buffer plus one frame per open
        element (``end`` labels are patched in place at element close).
        Pass an :class:`~repro.rdb.plan.ExecutionStats` to record the
        buffering high-water mark in ``peak_ingest_buffered_bytes``.
        """
        parser = StreamParser(source, strip_whitespace=strip_whitespace,
                              chunk_size=chunk_size)
        self._doc_counter += 1
        doc_id = self._doc_counter
        table = self.db.table(self.table_name)
        end_position = table.schema.position_of("end")
        counter = 1  # label counter; 1 is the (virtual) document node
        # frame: [path, node_id, row_id, start, next_seq, text_parts,
        #         has_element_children]
        frames = [["", 0, None, 1, 0, [], False]]
        buffered_text = 0
        peak_text = 0

        def leaf_row(kind, name, value, level):
            nonlocal counter
            self._node_counter += 1
            counter += 1
            parent = frames[-1]
            self.db.insert(
                self.table_name,
                (self._node_counter, doc_id, parent[1], parent[4], kind,
                 name, value, counter, counter, level),
            )
            parent[4] += 1

        for event in parser.events():
            kind = event[0]
            if kind == "start":
                name = event[1]
                parent = frames[-1]
                parent[6] = True
                self._node_counter += 1
                node_id = self._node_counter
                counter += 1
                start = counter
                level = len(frames)
                node_path = "%s/%s" % (parent[0], name)
                row_ids = self.db.insert(
                    self.table_name,
                    (node_id, doc_id, parent[1], parent[4], "element",
                     name, None, start, None, level),
                )
                parent[4] += 1
                if self.structural is not None:
                    self.structural.add(node_path, name, doc_id, start,
                                        row_ids[0])
                frames.append([node_path, node_id, row_ids[0], start,
                               len(event[2]), [], False])
                for position, (attr_name, value) in enumerate(event[2]):
                    self._node_counter += 1
                    counter += 1
                    self.db.insert(
                        self.table_name,
                        (self._node_counter, doc_id, node_id, position,
                         "attribute", attr_name, value,
                         counter, counter, level + 1),
                    )
                    if self.index is not None:
                        self.index._insert(
                            "%s/@%s" % (node_path, attr_name), value,
                            doc_id)
            elif kind == "text":
                value = event[1]
                leaf_row("text", None, value, len(frames))
                frames[-1][5].append(value)
                buffered_text += len(value)
                if buffered_text > peak_text:
                    peak_text = buffered_text
            elif kind == "end":
                frame = frames.pop()
                row = table.fetch(frame[2])
                table.rows[frame[2]] = (
                    row[:end_position] + (counter,)
                    + row[end_position + 1:])
                if self.index is not None:
                    direct_text = "".join(frame[5])
                    if not frame[6]:
                        if direct_text:
                            self.index._insert(frame[0], direct_text,
                                               doc_id)
                    elif direct_text.strip():
                        self.index._insert(frame[0], direct_text, doc_id)
                buffered_text -= sum(len(piece) for piece in frame[5])
            elif kind == "comment":
                leaf_row("comment", None, event[1], len(frames))
            elif kind == "pi":
                leaf_row("pi", event[1], event[2], len(frames))
        if stats is not None:
            stats.peak_ingest_buffered_bytes = max(
                stats.peak_ingest_buffered_bytes,
                parser.peak_buffered_bytes + peak_text)
        return doc_id

    # -- structural queries ----------------------------------------------------

    def descendant_query(self, ancestor_name, descendant_name, doc_id=None):
        """A :class:`Query` for the descendant-axis pattern
        ``//ancestor_name//descendant_name``: one output row per
        (ancestor, descendant) element pair.

        Built in its *naive* shape — a nested-loop join whose condition
        walks parent chains (:class:`TreeContains`).  The rule-based
        optimizer executes it as written; the cost-based planner replaces
        it with a StructuralJoin over label ranges when this storage's
        structural index is registered.
        """
        conjuncts = [
            eq(col("kind", "d"), const("element")),
            eq(col("name", "d"), const(descendant_name)),
            eq(col("kind", "a"), const("element")),
            eq(col("name", "a"), const(ancestor_name)),
            TreeContains(self.table_name, "a", "d"),
        ]
        if doc_id is not None:
            conjuncts.insert(0, eq(col("doc_id", "d"), const(doc_id)))
            conjuncts.insert(1, eq(col("doc_id", "a"), const(doc_id)))
        predicate = reduce(and_, conjuncts)
        plan = Filter(
            NestedLoopJoin(
                Scan(self.table_name, alias="d"),
                Scan(self.table_name, alias="a"),
            ),
            predicate,
        )
        outputs = [
            ("doc_id", col("doc_id", "d")),
            ("ancestor", col("node_id", "a")),
            ("descendant", col("node_id", "d")),
            ("start", col("start", "d")),
        ]
        return Query(plan, outputs)

    def fingerprint(self):
        """Stable hash of the physical design: table layout, value/
        structural indexes, ANALYZE epoch — the serve-tier cache-key
        component, mirroring ``ObjectRelationalStorage.fingerprint``."""
        import hashlib

        schema = self.db.table(self.table_name).schema
        parts = ["tree:%s cols=%s" % (
            self.table_name,
            ",".join("%s:%s" % (column.name, column.type)
                     for column in schema.columns),
        )]
        for index in self.db.indexes_on(self.table_name):
            parts.append("index:%s:%s:%s" % (
                index.table_name, index.column_name, index.name))
        if self.structural is not None:
            parts.append(self.structural.fingerprint_token())
        if self.index is not None:
            parts.append("pathvalue:%s" % ",".join(self.index.paths()))
        table_stats = self.db.stats.table_stats(self.table_name)
        if table_stats is not None:
            parts.append("stats:%s:%d" % (self.table_name,
                                          table_stats.version))
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    # -- materialisation ---------------------------------------------------------

    def document_ids(self):
        seen = []
        for _, row in self.db.table(self.table_name).scan():
            if row[1] not in seen:
                seen.append(row[1])
        return seen

    def materialize(self, doc_id, stats=None):
        """Rebuild one document: one indexed fetch of its rows, then an
        in-memory tree assembly."""
        table = self.db.table(self.table_name)
        index = self.db.find_index(self.table_name, "doc_id")
        rows = []
        for row_id in index.lookup_eq(doc_id, stats=stats):
            if stats is not None:
                stats.rows_scanned += 1
            rows.append(table.fetch(row_id))
        if not rows:
            raise DatabaseError("no document %d" % doc_id)
        if stats is not None:
            stats.docs_materialized += 1
        children = {}
        for row in rows:
            children.setdefault(row[2], []).append(row)
        for group in children.values():
            group.sort(key=lambda row: row[3])

        builder = TreeBuilder()

        def emit(row):
            kind = row[4]
            if kind == "element":
                builder.start_element(row[5])
                for child in children.get(row[0], ()):
                    if child[4] == "attribute":
                        builder.attribute(child[5], child[6])
                for child in children.get(row[0], ()):
                    if child[4] != "attribute":
                        emit(child)
                builder.end_element()
            elif kind == "text":
                builder.text(row[6])
            elif kind == "comment":
                builder.comment(row[6])
            elif kind == "pi":
                builder.processing_instruction(row[5], row[6])

        for row in children.get(0, ()):
            emit(row)
        return builder.finish()

    # -- path/value filtering -------------------------------------------------------

    def find_documents(self, path, op, value, stats=None):
        if self.index is None:
            raise DatabaseError("tree storage built without a path index")
        return self.index.lookup(path, op, value, stats=stats)
