"""Tree storage for XMLType (the third storage model in the paper's
Figure 1: "Tree Storage", alongside object-relational and CLOB/BLOB).

Every node of every document becomes one row of a generic node table::

    <name>_nodes(node_id, doc_id, parent_id, seq, kind, name, value)

Unlike object-relational shredding, tree storage needs no schema and
handles *any* document — mixed content, comments, processing
instructions.  The cost is that navigation is self-joins over the node
table, so the XSLT rewrite does not apply (there is no typed-column
mapping to merge into); the paper's §7.4 proposes tree storage *with
path/value indexes*, which is what :class:`TreeStorage` maintains for
document-level filtering.
"""

from __future__ import annotations

from repro.errors import DatabaseError
from repro.rdb.pathindex import PathValueIndex
from repro.rdb.types import INT, TEXT
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import NodeKind


class TreeStorage:
    """Schema-less node-table storage with an optional path/value index."""

    def __init__(self, db, name, path_index=True):
        self.db = db
        self.name = name
        self.table_name = "%s_nodes" % name
        db.create_table(
            self.table_name,
            [
                ("node_id", INT),
                ("doc_id", INT),
                ("parent_id", INT),
                ("seq", INT),
                ("kind", TEXT),
                ("name", TEXT),
                ("value", TEXT),
            ],
        )
        db.create_index(self.table_name, "doc_id")
        self.index = PathValueIndex() if path_index else None
        self._doc_counter = 0
        self._node_counter = 0

    # -- loading -----------------------------------------------------------

    def load(self, document):
        self._doc_counter += 1
        doc_id = self._doc_counter
        for seq, child in enumerate(document.children):
            self._insert_node(child, doc_id, parent_id=0, seq=seq)
        if self.index is not None:
            self.index.add_document(doc_id, document)
        return doc_id

    def load_many(self, documents):
        return [self.load(document) for document in documents]

    def _insert_node(self, node, doc_id, parent_id, seq):
        self._node_counter += 1
        node_id = self._node_counter
        kind = node.kind
        if kind == NodeKind.ELEMENT:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "element",
                 node.name.local, None),
            )
            position = 0
            for attribute in node.attributes:
                self._node_counter += 1
                self.db.insert(
                    self.table_name,
                    (self._node_counter, doc_id, node_id, position,
                     "attribute", attribute.name.local, attribute.value),
                )
                position += 1
            for child in node.children:
                self._insert_node(child, doc_id, node_id, position)
                position += 1
        elif kind == NodeKind.TEXT:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "text", None, node.value),
            )
        elif kind == NodeKind.COMMENT:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "comment", None, node.value),
            )
        elif kind == NodeKind.PI:
            self.db.insert(
                self.table_name,
                (node_id, doc_id, parent_id, seq, "pi", node.target,
                 node.value),
            )
        else:
            raise DatabaseError("cannot store node kind %r" % kind)

    # -- materialisation ---------------------------------------------------------

    def document_ids(self):
        seen = []
        for _, row in self.db.table(self.table_name).scan():
            if row[1] not in seen:
                seen.append(row[1])
        return seen

    def materialize(self, doc_id, stats=None):
        """Rebuild one document: one indexed fetch of its rows, then an
        in-memory tree assembly."""
        table = self.db.table(self.table_name)
        index = self.db.find_index(self.table_name, "doc_id")
        rows = []
        for row_id in index.lookup_eq(doc_id, stats=stats):
            if stats is not None:
                stats.rows_scanned += 1
            rows.append(table.fetch(row_id))
        if not rows:
            raise DatabaseError("no document %d" % doc_id)
        if stats is not None:
            stats.docs_materialized += 1
        children = {}
        for row in rows:
            children.setdefault(row[2], []).append(row)
        for group in children.values():
            group.sort(key=lambda row: row[3])

        builder = TreeBuilder()

        def emit(row):
            kind = row[4]
            if kind == "element":
                builder.start_element(row[5])
                for child in children.get(row[0], ()):
                    if child[4] == "attribute":
                        builder.attribute(child[5], child[6])
                for child in children.get(row[0], ()):
                    if child[4] != "attribute":
                        emit(child)
                builder.end_element()
            elif kind == "text":
                builder.text(row[6])
            elif kind == "comment":
                builder.comment(row[6])
            elif kind == "pi":
                builder.processing_instruction(row[5], row[6])

        for row in children.get(0, ()):
            emit(row)
        return builder.finish()

    # -- path/value filtering -------------------------------------------------------

    def find_documents(self, path, op, value, stats=None):
        if self.index is None:
            raise DatabaseError("tree storage built without a path index")
        return self.index.lookup(path, op, value, stats=stats)
