"""XQuery AST nodes, extending the shared XPath expression classes.

Values are general item sequences: Python lists whose items are DOM nodes or
atomics (str/float/bool).  Single items and sequences inter-convert through
:func:`as_sequence` / :func:`as_single`.

Every node supports ``evaluate(context)`` and is rendered to query text by
:mod:`repro.xquery.serializer` (AST nodes here carry an optional
``xq_comment`` attribute, which the serializer prints as an XQuery comment —
the paper's Table 8 annotates generated code with the originating template).
"""

from __future__ import annotations

from repro.errors import XQueryEvaluationError, XQueryTypeError
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import Node, NodeKind, QName
from repro.xpath.ast import Expr
from repro.xpath.datamodel import to_boolean, to_number, to_string


def as_sequence(value):
    """Normalise an evaluation result to a list of items."""
    if isinstance(value, list):
        return value
    return [value]


def as_single(value, what="expression"):
    """Require a singleton (or empty → error) item."""
    seq = as_sequence(value)
    if len(seq) != 1:
        raise XQueryTypeError(
            "%s must be a single item, got %d" % (what, len(seq))
        )
    return seq[0]


class ForClause:
    """``for $var [at $pos] in expr``."""

    __slots__ = ("variable", "position_variable", "expr")

    def __init__(self, variable, expr, position_variable=None):
        self.variable = variable
        self.expr = expr
        self.position_variable = position_variable


class LetClause:
    """``let $var := expr``."""

    __slots__ = ("variable", "expr")

    def __init__(self, variable, expr):
        self.variable = variable
        self.expr = expr


class WhereClause:
    """``where expr``."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class OrderSpec:
    """One ``order by`` key."""

    __slots__ = ("expr", "descending")

    def __init__(self, expr, descending=False):
        self.expr = expr
        self.descending = descending


class OrderByClause:
    """``order by`` with one or more keys."""

    __slots__ = ("specs",)

    def __init__(self, specs):
        self.specs = specs


class FlworExpr(Expr):
    """A FLWOR expression."""

    def __init__(self, clauses, return_expr):
        self.clauses = clauses
        self.return_expr = return_expr

    def child_exprs(self):
        out = []
        for clause in self.clauses:
            if isinstance(clause, OrderByClause):
                out.extend(spec.expr for spec in clause.specs)
            else:
                out.append(clause.expr)
        out.append(self.return_expr)
        return tuple(out)

    def evaluate(self, context):
        tuples = [context]
        order_by = None
        for clause in self.clauses:
            if isinstance(clause, ForClause):
                expanded = []
                for tup in tuples:
                    items = as_sequence(clause.expr.evaluate(tup))
                    for position, item in enumerate(items, start=1):
                        bindings = {clause.variable: _bind_item(item)}
                        if clause.position_variable:
                            bindings[clause.position_variable] = float(position)
                        expanded.append(tup.with_variables(bindings))
                tuples = expanded
            elif isinstance(clause, LetClause):
                tuples = [
                    tup.with_variables(
                        {clause.variable: clause.expr.evaluate(tup)}
                    )
                    for tup in tuples
                ]
            elif isinstance(clause, WhereClause):
                tuples = [
                    tup
                    for tup in tuples
                    if to_boolean(clause.expr.evaluate(tup))
                ]
            elif isinstance(clause, OrderByClause):
                order_by = clause
            else:  # pragma: no cover - clause kinds are exhaustive
                raise XQueryEvaluationError("unknown clause %r" % clause)
        if order_by is not None:
            tuples = _order_tuples(tuples, order_by)
        results = []
        for tup in tuples:
            results.extend(as_sequence(self.return_expr.evaluate(tup)))
        return results

    def to_text(self):  # delegated to the serializer for layout
        from repro.xquery.serializer import xquery_to_text

        return xquery_to_text(self)


def _bind_item(item):
    """for-bound variables hold single items; keep nodes as node-sets of
    one so XPath path steps work from them."""
    if isinstance(item, Node):
        return [item]
    return item


def _order_tuples(tuples, order_by):
    decorated = []
    for index, tup in enumerate(tuples):
        keys = []
        for spec in order_by.specs:
            value = spec.expr.evaluate(tup)
            seq = as_sequence(value)
            if not seq:
                keys.append((0, "", 0.0))
                continue
            atom = seq[0]
            if isinstance(atom, Node):
                atom = atom.string_value()
            if isinstance(atom, (int, float)) and not isinstance(atom, bool):
                keys.append((1, "", float(atom)))
            else:
                keys.append((2, to_string(atom), 0.0))
        decorated.append((keys, index, tup))

    for position in range(len(order_by.specs) - 1, -1, -1):
        spec = order_by.specs[position]
        decorated.sort(
            key=lambda row: row[0][position],
            reverse=spec.descending,
        )
    return [tup for _, _, tup in decorated]


class IfExpr(Expr):
    """``if (cond) then ... else ...``."""

    def __init__(self, condition, then_expr, else_expr):
        self.condition = condition
        self.then_expr = then_expr
        self.else_expr = else_expr

    def child_exprs(self):
        return (self.condition, self.then_expr, self.else_expr)

    def evaluate(self, context):
        if to_boolean(self.condition.evaluate(context)):
            return self.then_expr.evaluate(context)
        return self.else_expr.evaluate(context)

    def to_text(self):
        from repro.xquery.serializer import xquery_to_text

        return xquery_to_text(self)


class SequenceExpr(Expr):
    """``(a, b, c)`` — concatenation of item sequences."""

    def __init__(self, items):
        self.items = items

    def child_exprs(self):
        return tuple(self.items)

    def evaluate(self, context):
        out = []
        for item in self.items:
            out.extend(as_sequence(item.evaluate(context)))
        return out

    def to_text(self):
        from repro.xquery.serializer import xquery_to_text

        return xquery_to_text(self)


class EmptySequence(Expr):
    """``()``."""

    def evaluate(self, context):
        return []

    def to_text(self):
        return "()"


class RangeExpr(Expr):
    """``m to n`` — the integer range sequence."""

    def __init__(self, low, high):
        self.low = low
        self.high = high

    def child_exprs(self):
        return (self.low, self.high)

    def evaluate(self, context):
        low = int(to_number(as_single(self.low.evaluate(context), "range start")))
        high = int(to_number(as_single(self.high.evaluate(context), "range end")))
        return [float(value) for value in range(low, high + 1)]

    def to_text(self):
        return "%s to %s" % (self.low.to_text(), self.high.to_text())


class QuantifiedExpr(Expr):
    """``some/every $v in expr satisfies test``."""

    def __init__(self, kind, bindings, satisfies):
        self.kind = kind  # 'some' | 'every'
        self.bindings = bindings  # list of (variable, expr)
        self.satisfies = satisfies

    def child_exprs(self):
        return tuple(expr for _, expr in self.bindings) + (self.satisfies,)

    def evaluate(self, context):
        return self._check(context, 0)

    def _check(self, context, index):
        if index == len(self.bindings):
            return to_boolean(self.satisfies.evaluate(context))
        variable, expr = self.bindings[index]
        items = as_sequence(expr.evaluate(context))
        results = (
            self._check(context.with_variables({variable: _bind_item(item)}),
                        index + 1)
            for item in items
        )
        if self.kind == "some":
            return any(results)
        return all(results)

    def to_text(self):
        bindings = ", ".join(
            "$%s in %s" % (variable, expr.to_text())
            for variable, expr in self.bindings
        )
        return "%s %s satisfies %s" % (
            self.kind, bindings, self.satisfies.to_text()
        )


class InstanceOfExpr(Expr):
    """``expr instance of element(name)`` / ``text()`` / ``node()`` ...

    Only the node-kind tests needed by the straightforward-translation
    dispatch conditionals (paper Tables 12/17/19) are implemented.
    """

    def __init__(self, expr, type_name, element_name=None):
        self.expr = expr
        self.type_name = type_name  # 'element' | 'text' | 'node' | 'attribute' | 'document-node'
        self.element_name = element_name

    def child_exprs(self):
        return (self.expr,)

    def evaluate(self, context):
        seq = as_sequence(self.expr.evaluate(context))
        if len(seq) != 1:
            return False
        item = seq[0]
        if not isinstance(item, Node):
            return False
        if self.type_name == "node":
            return True
        kind_map = {
            "element": NodeKind.ELEMENT,
            "text": NodeKind.TEXT,
            "attribute": NodeKind.ATTRIBUTE,
            "document-node": NodeKind.DOCUMENT,
            "comment": NodeKind.COMMENT,
        }
        wanted = kind_map.get(self.type_name)
        if wanted is None or item.kind != wanted:
            return False
        if self.element_name is not None:
            return item.name is not None and item.name.local == self.element_name
        return True

    def to_text(self):
        if self.type_name in ("element", "attribute") and self.element_name:
            type_text = "%s(%s)" % (self.type_name, self.element_name)
        else:
            type_text = "%s()" % self.type_name
        return "%s instance of %s" % (self.expr.to_text(), type_text)


class AttributeConstructor:
    """One attribute inside a direct element constructor; the value is a
    list of parts (literal strings and expressions)."""

    __slots__ = ("name", "parts")

    def __init__(self, name, parts):
        self.name = name  # QName
        self.parts = parts

    def evaluate(self, context):
        out = []
        for part in self.parts:
            if isinstance(part, str):
                out.append(part)
            else:
                seq = as_sequence(part.evaluate(context))
                out.append(
                    " ".join(
                        item.string_value() if isinstance(item, Node)
                        else to_string(item)
                        for item in seq
                    )
                )
        return "".join(out)


class DirectElementConstructor(Expr):
    """``<name attr="...">content</name>`` with enclosed expressions."""

    def __init__(self, name, attributes, content, namespaces=None):
        self.name = name              # QName
        self.attributes = attributes  # list of AttributeConstructor
        self.content = content        # list of str | Expr
        self.namespaces = namespaces or {}

    def child_exprs(self):
        out = []
        for attribute in self.attributes:
            out.extend(p for p in attribute.parts if not isinstance(p, str))
        out.extend(item for item in self.content if not isinstance(item, str))
        return tuple(out)

    def evaluate(self, context):
        builder = TreeBuilder()
        self._build(builder, context)
        document = builder.finish()
        return [document.children[0]]

    def _build(self, builder, context):
        builder.start_element(
            QName(self.name.local, self.name.uri, self.name.prefix),
            namespaces=dict(self.namespaces),
        )
        for attribute in self.attributes:
            builder.attribute(
                QName(
                    attribute.name.local,
                    attribute.name.uri,
                    attribute.name.prefix,
                ),
                attribute.evaluate(context),
            )
        for item in self.content:
            if isinstance(item, str):
                builder.text(item)
            elif isinstance(item, DirectElementConstructor):
                item._build(builder, context)
            else:
                insert_sequence(builder, item.evaluate(context))
        builder.end_element()

    def to_text(self):
        from repro.xquery.serializer import xquery_to_text

        return xquery_to_text(self)


def insert_sequence(builder, value):
    """Insert an evaluated sequence into element content (XQuery rules:
    nodes are copied, adjacent atomics joined with single spaces)."""
    pending_atoms = []

    def flush():
        if pending_atoms:
            builder.text(" ".join(pending_atoms))
            del pending_atoms[:]

    for item in as_sequence(value):
        if isinstance(item, Node):
            flush()
            if item.kind == NodeKind.ATTRIBUTE:
                builder.attribute(item.name, item.value)
            else:
                builder.copy_node(item)
        else:
            pending_atoms.append(to_string(item))
    flush()


class ComputedTextConstructor(Expr):
    """``text { expr }`` — constructs a text node.

    The XSLT rewrite emits these for text-producing instructions so that
    adjacent results concatenate exactly (bare atomics in a sequence would
    be space-separated by the XQuery content rules, which would deviate
    from XSLT's output).  ``text {()}`` constructs nothing.
    """

    def __init__(self, expr):
        self.expr = expr

    def child_exprs(self):
        return (self.expr,)

    def evaluate(self, context):
        value = self.expr.evaluate(context)
        seq = as_sequence(value)
        if not seq:
            return []
        text = "".join(
            item.string_value() if isinstance(item, Node) else to_string(item)
            for item in seq
        )
        if text == "":
            return []
        builder = TreeBuilder()
        builder.text(text)
        return [builder.finish().children[0]]

    def to_text(self):
        return "text {%s}" % self.expr.to_text()


class DocumentConstructor(Expr):
    """``document { expr }`` — wraps a sequence in a document node.

    Composition of rewritten queries uses this: when one query's result
    feeds another as its context document, the fragment is wrapped so the
    outer query's child steps start from a document node.
    """

    def __init__(self, expr):
        self.expr = expr

    def child_exprs(self):
        return (self.expr,)

    def evaluate(self, context):
        builder = TreeBuilder()
        insert_sequence(builder, self.expr.evaluate(context))
        return [builder.finish()]

    def to_text(self):
        return "document {%s}" % self.expr.to_text()


class UserFunctionCall(Expr):
    """A call to a ``declare function`` definition (non-inline mode)."""

    def __init__(self, name, args):
        self.name = name
        self.args = args

    def child_exprs(self):
        return tuple(self.args)

    def evaluate(self, context):
        functions = context.extra.get("xquery_functions", {})
        declaration = functions.get((self.name, len(self.args)))
        if declaration is None:
            raise XQueryEvaluationError(
                "unknown function %s#%d" % (self.name, len(self.args))
            )
        values = [arg.evaluate(context) for arg in self.args]
        return declaration.invoke(context, values)

    def to_text(self):
        return "%s(%s)" % (
            self.name,
            ", ".join(arg.to_text() for arg in self.args),
        )


class FunctionDecl:
    """``declare function local:name($p1, $p2) { body };``."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body):
        self.name = name
        self.params = params  # list of variable names
        self.body = body

    def invoke(self, context, values):
        bindings = dict(zip(self.params, values))
        return self.body.evaluate(context.with_variables(bindings))


class VariableDecl:
    """``declare variable $name := expr;``."""

    __slots__ = ("name", "expr")

    def __init__(self, name, expr):
        self.name = name
        self.expr = expr


class Module:
    """A query module: prolog declarations plus the body expression."""

    __slots__ = ("variables", "functions", "body")

    def __init__(self, variables, functions, body):
        self.variables = variables  # list of VariableDecl, in order
        self.functions = functions  # list of FunctionDecl
        self.body = body

    def iter_exprs(self):
        """All top-level expressions (for analysis passes)."""
        for declaration in self.variables:
            yield declaration.expr
        for declaration in self.functions:
            yield declaration.body
        yield self.body
