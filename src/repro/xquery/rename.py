"""Uniform variable/function renaming over XQuery ASTs.

Used when composing two generated modules (e.g. XSLT over an XQuery view):
both generators number their variables ``$var000, $var002, ...``, so the
inner module's names are prefixed before splicing.  Renaming is uniform —
every variable and every ``local:`` function name gets the prefix — which
is safe because generated modules are closed except for the context item.
"""

from __future__ import annotations

from repro.xpath import ast as xp
from repro.xquery import ast as xq


def prefix_module(module, prefix):
    """A copy of ``module`` with every variable and local: function name
    prefixed."""
    variables = [
        xq.VariableDecl(prefix + declaration.name,
                        _walk(declaration.expr, prefix))
        for declaration in module.variables
    ]
    functions = [
        xq.FunctionDecl(
            _prefix_function(declaration.name, prefix),
            [prefix + param for param in declaration.params],
            _walk(declaration.body, prefix),
        )
        for declaration in module.functions
    ]
    return xq.Module(variables, functions, _walk(module.body, prefix))


def _prefix_function(name, prefix):
    namespace, _, local = name.rpartition(":")
    if namespace:
        return "%s:%s%s" % (namespace, prefix, local)
    return prefix + name


def _walk(expr, prefix):
    if isinstance(expr, xp.VariableRef):
        return xp.VariableRef(prefix + expr.name)
    if isinstance(expr, (xp.Literal, xp.NumberLiteral, xp.ContextItem)):
        return expr
    if isinstance(expr, xq.EmptySequence):
        return expr
    if isinstance(expr, xp.PathExpr):
        return xp.PathExpr(
            [_walk_step(step, prefix) for step in expr.steps],
            start=_walk(expr.start, prefix) if expr.start is not None else None,
            absolute=expr.absolute,
        )
    if isinstance(expr, xp.FilterExpr):
        return xp.FilterExpr(
            _walk(expr.primary, prefix),
            [_walk(p, prefix) for p in expr.predicates],
        )
    if isinstance(expr, xp.UnionExpr):
        return xp.UnionExpr([_walk(part, prefix) for part in expr.parts])
    if isinstance(expr, xp.BinaryOp):
        return xp.BinaryOp(
            expr.op, _walk(expr.left, prefix), _walk(expr.right, prefix)
        )
    if isinstance(expr, xp.UnaryMinus):
        return xp.UnaryMinus(_walk(expr.operand, prefix))
    if isinstance(expr, xp.FunctionCall):
        return xp.FunctionCall(
            expr.name, [_walk(arg, prefix) for arg in expr.args]
        )
    if isinstance(expr, xq.UserFunctionCall):
        return xq.UserFunctionCall(
            _prefix_function(expr.name, prefix),
            [_walk(arg, prefix) for arg in expr.args],
        )
    if isinstance(expr, xq.FlworExpr):
        clauses = []
        for clause in expr.clauses:
            if isinstance(clause, xq.ForClause):
                clauses.append(
                    xq.ForClause(
                        prefix + clause.variable,
                        _walk(clause.expr, prefix),
                        prefix + clause.position_variable
                        if clause.position_variable else None,
                    )
                )
            elif isinstance(clause, xq.LetClause):
                clauses.append(
                    xq.LetClause(
                        prefix + clause.variable, _walk(clause.expr, prefix)
                    )
                )
            elif isinstance(clause, xq.WhereClause):
                clauses.append(xq.WhereClause(_walk(clause.expr, prefix)))
            elif isinstance(clause, xq.OrderByClause):
                clauses.append(
                    xq.OrderByClause(
                        [
                            xq.OrderSpec(_walk(spec.expr, prefix),
                                         spec.descending)
                            for spec in clause.specs
                        ]
                    )
                )
        result = xq.FlworExpr(clauses, _walk(expr.return_expr, prefix))
        return _copy_comment(expr, result)
    if isinstance(expr, xq.IfExpr):
        return _copy_comment(expr, xq.IfExpr(
            _walk(expr.condition, prefix),
            _walk(expr.then_expr, prefix),
            _walk(expr.else_expr, prefix),
        ))
    if isinstance(expr, xq.SequenceExpr):
        return _copy_comment(
            expr,
            xq.SequenceExpr([_walk(item, prefix) for item in expr.items]),
        )
    if isinstance(expr, xq.RangeExpr):
        return xq.RangeExpr(_walk(expr.low, prefix), _walk(expr.high, prefix))
    if isinstance(expr, xq.QuantifiedExpr):
        return xq.QuantifiedExpr(
            expr.kind,
            [
                (prefix + variable, _walk(bound, prefix))
                for variable, bound in expr.bindings
            ],
            _walk(expr.satisfies, prefix),
        )
    if isinstance(expr, xq.InstanceOfExpr):
        return xq.InstanceOfExpr(
            _walk(expr.expr, prefix), expr.type_name, expr.element_name
        )
    if isinstance(expr, xq.DirectElementConstructor):
        return _copy_comment(expr, xq.DirectElementConstructor(
            expr.name,
            [
                xq.AttributeConstructor(
                    attribute.name,
                    [
                        part if isinstance(part, str) else _walk(part, prefix)
                        for part in attribute.parts
                    ],
                )
                for attribute in expr.attributes
            ],
            [
                item if isinstance(item, str) else _walk(item, prefix)
                for item in expr.content
            ],
            namespaces=dict(expr.namespaces),
        ))
    if isinstance(expr, xq.ComputedTextConstructor):
        return xq.ComputedTextConstructor(_walk(expr.expr, prefix))
    if isinstance(expr, xq.DocumentConstructor):
        return xq.DocumentConstructor(_walk(expr.expr, prefix))
    raise TypeError("cannot rename %s" % type(expr).__name__)


def _walk_step(step, prefix):
    return xp.Step(
        step.axis,
        step.test,
        [_walk(predicate, prefix) for predicate in step.predicates],
    )


def _copy_comment(source, target):
    comment = getattr(source, "xq_comment", None)
    if comment:
        target.xq_comment = comment
    return target
