"""Parser for the XQuery subset.

Extends :class:`repro.xpath.parser.XPathParser` with FLWOR expressions,
conditionals, quantified/range expressions, ``instance of`` tests, a module
prolog (``declare variable`` / ``declare function``) and — via raw-character
scanning over the incremental lexer — direct element constructors.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError, XQuerySyntaxError
from repro.xmlmodel.nodes import QName
from repro.xpath import lexer as lex
from repro.xpath.ast import FunctionCall
from repro.xpath.lexer import Lexer
from repro.xpath.parser import XPathParser
from repro.xquery.ast import (
    AttributeConstructor,
    ComputedTextConstructor,
    DirectElementConstructor,
    DocumentConstructor,
    EmptySequence,
    FlworExpr,
    ForClause,
    FunctionDecl,
    IfExpr,
    InstanceOfExpr,
    LetClause,
    Module,
    OrderByClause,
    OrderSpec,
    QuantifiedExpr,
    RangeExpr,
    SequenceExpr,
    UserFunctionCall,
    VariableDecl,
    WhereClause,
)

_PREDEFINED_ENTITIES = {
    "amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'",
}

_WORD_EQUALITY = {"eq": "=", "ne": "!="}
_WORD_RELATIONAL = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class XQueryParser(XPathParser):
    """Parses the XQuery subset over a lexer in ``xquery_mode``."""

    def __init__(self, lexer):
        super().__init__(lexer)
        self.declared_functions = set()

    # -- module -----------------------------------------------------------

    def parse_module(self):
        variables = []
        functions = []
        while self.at(lex.NAME, "declare"):
            what = self.peek(1)
            if what.type == lex.NAME and what.value == "variable":
                variables.append(self._parse_variable_decl())
            elif what.type == lex.NAME and what.value == "function":
                functions.append(self._parse_function_decl())
            else:
                self.fail("expected 'declare variable' or 'declare function'")
        body = self.parse_expr()
        if self.peek().type != lex.EOF:
            self.fail("unexpected trailing input after query body")
        return Module(variables, functions, body)

    def _parse_variable_decl(self):
        self.expect(lex.NAME, "declare")
        self.expect(lex.NAME, "variable")
        name = self.expect(lex.VARIABLE).value
        self.expect(lex.OPERATOR, ":=")
        expr = self.parse_expr_single()
        self.expect(lex.OPERATOR, ";")
        return VariableDecl(name, expr)

    def _parse_function_decl(self):
        self.expect(lex.NAME, "declare")
        self.expect(lex.NAME, "function")
        name = self.expect(lex.NAME).value
        self.declared_functions.add(name)
        self.expect(lex.LPAREN)
        params = []
        if not self.at(lex.RPAREN):
            params.append(self.expect(lex.VARIABLE).value)
            while self.at(lex.OPERATOR, ","):
                self.advance()
                params.append(self.expect(lex.VARIABLE).value)
        self.expect(lex.RPAREN)
        self.expect(lex.LBRACE)
        body = self.parse_expr()
        self.expect(lex.RBRACE)
        self.expect(lex.OPERATOR, ";")
        return FunctionDecl(name, params, body)

    # -- expressions --------------------------------------------------------

    def parse_expr(self):
        """Expr ::= ExprSingle ("," ExprSingle)* — a sequence."""
        first = self.parse_expr_single()
        if not self.at(lex.OPERATOR, ","):
            return first
        items = [first]
        while self.at(lex.OPERATOR, ","):
            self.advance()
            items.append(self.parse_expr_single())
        return SequenceExpr(items)

    def parse_expr_single(self):
        token = self.peek()
        if token.type == lex.NAME:
            if token.value in ("for", "let") and self.peek(1).type == lex.VARIABLE:
                return self.parse_flwor()
            if token.value == "if" and self.peek(1).type == lex.LPAREN:
                return self.parse_if()
            if (
                token.value in ("some", "every")
                and self.peek(1).type == lex.VARIABLE
            ):
                return self.parse_quantified()
        return self.parse_or()

    def parse_flwor(self):
        clauses = []
        while True:
            token = self.peek()
            if token.type != lex.NAME:
                break
            if token.value == "for" and self.peek(1).type == lex.VARIABLE:
                self.advance()
                clauses.append(self._parse_for_binding())
                while self.at(lex.OPERATOR, ","):
                    self.advance()
                    clauses.append(self._parse_for_binding())
            elif token.value == "let" and self.peek(1).type == lex.VARIABLE:
                self.advance()
                clauses.append(self._parse_let_binding())
                while self.at(lex.OPERATOR, ","):
                    self.advance()
                    clauses.append(self._parse_let_binding())
            elif token.value == "where":
                self.advance()
                clauses.append(WhereClause(self.parse_expr_single()))
            elif token.value in ("order", "stable"):
                if token.value == "stable":
                    self.advance()
                self.expect(lex.NAME, "order")
                self.expect(lex.NAME, "by")
                clauses.append(OrderByClause(self._parse_order_specs()))
            else:
                break
        self.expect(lex.NAME, "return")
        return FlworExpr(clauses, self.parse_expr_single())

    def _parse_for_binding(self):
        variable = self.expect(lex.VARIABLE).value
        position_variable = None
        if self.at(lex.NAME, "at"):
            self.advance()
            position_variable = self.expect(lex.VARIABLE).value
        self.expect(lex.NAME, "in")
        return ForClause(variable, self.parse_expr_single(), position_variable)

    def _parse_let_binding(self):
        variable = self.expect(lex.VARIABLE).value
        self.expect(lex.OPERATOR, ":=")
        return LetClause(variable, self.parse_expr_single())

    def _parse_order_specs(self):
        specs = [self._parse_order_spec()]
        while self.at(lex.OPERATOR, ","):
            self.advance()
            specs.append(self._parse_order_spec())
        return specs

    def _parse_order_spec(self):
        expr = self.parse_expr_single()
        descending = False
        if self.at(lex.NAME, "ascending"):
            self.advance()
        elif self.at(lex.NAME, "descending"):
            self.advance()
            descending = True
        return OrderSpec(expr, descending)

    def parse_if(self):
        self.expect(lex.NAME, "if")
        self.expect(lex.LPAREN)
        condition = self.parse_expr()
        self.expect(lex.RPAREN)
        self.expect(lex.NAME, "then")
        then_expr = self.parse_expr_single()
        self.expect(lex.NAME, "else")
        else_expr = self.parse_expr_single()
        return IfExpr(condition, then_expr, else_expr)

    def parse_quantified(self):
        kind = self.advance().value
        bindings = [self._parse_quantified_binding()]
        while self.at(lex.OPERATOR, ","):
            self.advance()
            bindings.append(self._parse_quantified_binding())
        self.expect(lex.NAME, "satisfies")
        return QuantifiedExpr(kind, bindings, self.parse_expr_single())

    def _parse_quantified_binding(self):
        variable = self.expect(lex.VARIABLE).value
        self.expect(lex.NAME, "in")
        return variable, self.parse_expr_single()

    # -- operator-level overrides ------------------------------------------------

    def parse_equality(self):
        left = self.parse_relational()
        while True:
            token = self.peek()
            if token.type == lex.OPERATOR and token.value in ("=", "!="):
                op = self.advance().value
            elif token.type == lex.NAME and token.value in _WORD_EQUALITY:
                op = _WORD_EQUALITY[self.advance().value]
            else:
                return left
            from repro.xpath.ast import BinaryOp

            left = BinaryOp(op, left, self.parse_relational())

    def parse_relational(self):
        left = self.parse_range_expr()
        while True:
            token = self.peek()
            if token.type == lex.OPERATOR and token.value in ("<", "<=", ">", ">="):
                op = self.advance().value
            elif token.type == lex.NAME and token.value in _WORD_RELATIONAL:
                op = _WORD_RELATIONAL[self.advance().value]
            else:
                return left
            from repro.xpath.ast import BinaryOp

            left = BinaryOp(op, left, self.parse_range_expr())

    def parse_range_expr(self):
        left = self.parse_additive()
        if self.at(lex.NAME, "to"):
            self.advance()
            return RangeExpr(left, self.parse_additive())
        return left

    def parse_unary(self):
        expr = super().parse_unary()
        if (
            self.at(lex.NAME, "instance")
            and self.peek(1).type == lex.NAME
            and self.peek(1).value == "of"
        ):
            self.advance()
            self.advance()
            type_name, element_name = self._parse_sequence_type()
            return InstanceOfExpr(expr, type_name, element_name)
        return expr

    def _parse_sequence_type(self):
        token = self.peek()
        if token.type == lex.NODETYPE:
            self.advance()
            self.expect(lex.LPAREN)
            self.expect(lex.RPAREN)
            return token.value, None
        name = self.expect(lex.NAME).value
        if name not in ("element", "attribute", "document-node", "item"):
            self.fail("unsupported sequence type %r" % name)
        element_name = None
        if self.at(lex.LPAREN):
            self.advance()
            if not self.at(lex.RPAREN):
                inner = self.advance()
                if inner.type not in (lex.NAME, lex.STAR):
                    self.fail("expected a name inside %s()" % name)
                if inner.type == lex.NAME:
                    element_name = inner.value
            self.expect(lex.RPAREN)
        return name, element_name

    # -- primaries and constructors -------------------------------------------------

    def parse_path(self):
        token = self.peek()
        if token.type == lex.OPERATOR and token.value == "<":
            return self.parse_direct_constructor()
        if (
            token.type == lex.NAME
            and token.value in ("text", "document")
            and self.peek(1).type == lex.LBRACE
        ):
            self.advance()
            self.advance()
            inner = self.parse_expr()
            self.expect(lex.RBRACE)
            if token.value == "text":
                return ComputedTextConstructor(inner)
            return DocumentConstructor(inner)
        return super().parse_path()

    def parse_primary(self):
        token = self.peek()
        if token.type == lex.LPAREN:
            self.advance()
            if self.at(lex.RPAREN):
                self.advance()
                return EmptySequence()
            inner = self.parse_expr()
            self.expect(lex.RPAREN)
            return inner
        return super().parse_primary()

    def parse_argument(self):
        return self.parse_expr_single()

    def parse_function_call(self):
        name_token = self.peek()
        call = super().parse_function_call()
        if isinstance(call, FunctionCall):
            raw_name = name_token.value
            if raw_name in self.declared_functions or raw_name.startswith(
                "local:"
            ):
                return UserFunctionCall(raw_name, call.args)
        return call

    # -- direct element constructors (raw scanning) -------------------------------------

    def parse_direct_constructor(self):
        lt = self.expect(lex.OPERATOR, "<")
        constructor, pos = self._scan_element(lt.pos)
        self.lexer.reset(pos, operand_expected=False)
        return constructor

    def _scan_element(self, pos):
        """Scan ``<name ...>...</name>`` starting at the '<'; returns the
        constructor and the position just past the closing tag."""
        source = self.lexer.source
        assert source[pos] == "<"
        pos += 1
        name, pos = self._scan_qname(pos)

        attributes = []
        namespaces = {}
        while True:
            pos = _skip_ws(source, pos)
            if source.startswith("/>", pos):
                element = self._make_constructor(name, attributes, [], namespaces)
                return element, pos + 2
            if pos < len(source) and source[pos] == ">":
                pos += 1
                break
            attr_name, pos = self._scan_qname(pos)
            pos = _skip_ws(source, pos)
            if pos >= len(source) or source[pos] != "=":
                self._raw_fail("expected '=' in constructor attribute", pos)
            pos = _skip_ws(source, pos + 1)
            parts, pos = self._scan_attribute_value(pos)
            if attr_name == "xmlns":
                namespaces[""] = _only_literal(parts)
            elif attr_name.startswith("xmlns:"):
                namespaces[attr_name[6:]] = _only_literal(parts)
            else:
                attributes.append(
                    AttributeConstructor(_to_qname(attr_name), parts)
                )

        content, pos = self._scan_content(pos, name)
        element = self._make_constructor(name, attributes, content, namespaces)
        return element, pos

    @staticmethod
    def _make_constructor(name, attributes, content, namespaces):
        return DirectElementConstructor(
            _to_qname(name), attributes, content, namespaces
        )

    def _scan_attribute_value(self, pos):
        source = self.lexer.source
        if pos >= len(source) or source[pos] not in "\"'":
            self._raw_fail("expected quoted attribute value", pos)
        quote = source[pos]
        pos += 1
        parts = []
        literal = []
        while True:
            if pos >= len(source):
                self._raw_fail("unterminated attribute value", pos)
            char = source[pos]
            if char == quote:
                pos += 1
                break
            if char == "{":
                if source.startswith("{{", pos):
                    literal.append("{")
                    pos += 2
                    continue
                if literal:
                    parts.append("".join(literal))
                    literal = []
                expr, pos = self._parse_enclosed(pos)
                parts.append(expr)
                continue
            if char == "}":
                if source.startswith("}}", pos):
                    literal.append("}")
                    pos += 2
                    continue
                self._raw_fail("unescaped '}' in attribute value", pos)
            if char == "&":
                text, pos = self._scan_entity(pos)
                literal.append(text)
                continue
            literal.append(char)
            pos += 1
        if literal:
            parts.append("".join(literal))
        return parts, pos

    def _scan_content(self, pos, open_name):
        source = self.lexer.source
        content = []
        literal = []

        def flush(drop_blank):
            if literal:
                text = "".join(literal)
                del literal[:]
                if drop_blank and not text.strip():
                    return  # boundary whitespace is stripped
                content.append(text)

        while True:
            if pos >= len(source):
                self._raw_fail("unterminated constructor <%s>" % open_name, pos)
            char = source[pos]
            if char == "<":
                if source.startswith("</", pos):
                    flush(drop_blank=True)
                    pos += 2
                    end_name, pos = self._scan_qname(pos)
                    pos = _skip_ws(source, pos)
                    if pos >= len(source) or source[pos] != ">":
                        self._raw_fail("malformed end tag", pos)
                    if end_name != open_name:
                        self._raw_fail(
                            "mismatched </%s>, expected </%s>"
                            % (end_name, open_name),
                            pos,
                        )
                    return content, pos + 1
                if source.startswith("<!--", pos):
                    end = source.find("-->", pos + 4)
                    if end < 0:
                        self._raw_fail("unterminated comment", pos)
                    pos = end + 3
                    continue
                if source.startswith("<![CDATA[", pos):
                    end = source.find("]]>", pos + 9)
                    if end < 0:
                        self._raw_fail("unterminated CDATA", pos)
                    literal.append(source[pos + 9:end])
                    pos = end + 3
                    continue
                flush(drop_blank=True)
                nested, pos = self._scan_element(pos)
                content.append(nested)
                continue
            if char == "{":
                if source.startswith("{{", pos):
                    literal.append("{")
                    pos += 2
                    continue
                flush(drop_blank=True)
                expr, pos = self._parse_enclosed(pos)
                content.append(expr)
                continue
            if char == "}":
                if source.startswith("}}", pos):
                    literal.append("}")
                    pos += 2
                    continue
                self._raw_fail("unescaped '}' in element content", pos)
            if char == "&":
                text, pos = self._scan_entity(pos)
                literal.append(text)
                continue
            literal.append(char)
            pos += 1

    def _parse_enclosed(self, pos):
        """Parse a ``{ Expr }`` starting at the '{'; returns (expr, pos past '}')."""
        self.lexer.reset(pos + 1)
        expr = self.parse_expr()
        rbrace = self.expect(lex.RBRACE)
        return expr, rbrace.end

    def _scan_qname(self, pos):
        source = self.lexer.source
        if pos >= len(source) or source[pos] not in _NAME_START:
            self._raw_fail("expected a name", pos)
        start = pos
        pos += 1
        while pos < len(source) and (
            source[pos] in _NAME_CHARS or source[pos] == ":"
        ):
            pos += 1
        return source[start:pos], pos

    def _scan_entity(self, pos):
        source = self.lexer.source
        semi = source.find(";", pos + 1)
        if semi < 0:
            self._raw_fail("unterminated entity reference", pos)
        entity = source[pos + 1:semi]
        if entity.startswith("#x") or entity.startswith("#X"):
            return chr(int(entity[2:], 16)), semi + 1
        if entity.startswith("#"):
            return chr(int(entity[1:])), semi + 1
        if entity in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[entity], semi + 1
        self._raw_fail("undefined entity &%s;" % entity, pos)

    def _raw_fail(self, message, pos):
        raise XQuerySyntaxError(
            "%s at offset %d in constructor" % (message, pos)
        )


def _skip_ws(source, pos):
    while pos < len(source) and source[pos] in " \t\r\n":
        pos += 1
    return pos


def _only_literal(parts):
    if len(parts) == 1 and isinstance(parts[0], str):
        return parts[0]
    if not parts:
        return ""
    raise XQuerySyntaxError("namespace declarations must be literal strings")


def _to_qname(lexical):
    prefix, _, local = lexical.rpartition(":")
    return QName(local, None, prefix or None)


def parse_xquery(source):
    """Parse an XQuery module (prolog + body) into a :class:`Module`."""
    lexer = Lexer(source, xquery_mode=True)
    parser = XQueryParser(lexer)
    try:
        return parser.parse_module()
    except XQuerySyntaxError:
        raise
    except XPathSyntaxError as exc:
        raise XQuerySyntaxError(str(exc)) from exc
