"""XQuery subset engine: the rewrite target language.

Implements the XQuery 1.0 subset that the XSLT→XQuery rewrite emits and
that the paper's examples exercise (Table 8, Table 10):

* FLWOR expressions (``for``/``let``/``where``/``order by``/``return``);
* direct element constructors with enclosed ``{...}`` expressions;
* conditionals, quantified expressions, sequence and range expressions;
* ``instance of element(name)``/``text()``/``node()`` tests;
* a prolog with ``declare variable`` and ``declare function`` (the
  non-inline rewrite mode emits one function per template);
* the shared XPath core (paths, operators, function library).

Public API: :func:`parse_xquery`, :func:`evaluate_xquery`,
:func:`~repro.xquery.serializer.xquery_to_text`.
"""

from repro.xquery.parser import parse_xquery
from repro.xquery.evaluator import evaluate_xquery, evaluate_module
from repro.xquery.serializer import xquery_to_text

__all__ = [
    "evaluate_module",
    "evaluate_xquery",
    "parse_xquery",
    "xquery_to_text",
]
