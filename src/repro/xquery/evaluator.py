"""Evaluate XQuery modules against a context item."""

from __future__ import annotations

from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.parser import parse_document
from repro.xpath.context import XPathContext
from repro.xquery.ast import Module, as_sequence, insert_sequence
from repro.xquery.parser import parse_xquery


def evaluate_module(module, context_node, variables=None, namespaces=None,
                    functions=None):
    """Evaluate a parsed :class:`~repro.xquery.ast.Module`.

    Returns the result sequence (list of nodes/atomics).
    """
    context = XPathContext(
        context_node,
        variables=dict(variables) if variables else {},
        namespaces=namespaces,
        functions=functions,
    )
    context.extra["xquery_functions"] = {
        (declaration.name, len(declaration.params)): declaration
        for declaration in module.functions
    }
    for declaration in module.variables:
        context = context.with_variables(
            {declaration.name: declaration.expr.evaluate(context)}
        )
    return as_sequence(module.body.evaluate(context))


def evaluate_xquery(source, context_node=None, variables=None, namespaces=None):
    """Parse and evaluate a query string; returns the result sequence."""
    if isinstance(source, Module):
        module = source
    else:
        module = parse_xquery(source)
    if isinstance(context_node, str):
        context_node = parse_document(context_node)
    return evaluate_module(
        module, context_node, variables=variables, namespaces=namespaces
    )


def sequence_to_document(sequence):
    """Materialise a result sequence as a document (XQuery content rules:
    nodes copied, adjacent atomics space-joined) — the shape
    ``XMLQuery(... RETURNING CONTENT)`` produces."""
    builder = TreeBuilder()
    insert_sequence(builder, sequence)
    return builder.finish()
