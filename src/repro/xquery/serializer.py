"""Render XQuery ASTs back to query text.

The XSLT rewrite emits ASTs; this serializer produces the human-readable
query text shown in the paper's Table 8 — including ``(: ... :)`` comments
that the generator attaches to expressions via the ``xq_comment`` attribute.
Output is re-parseable by :func:`repro.xquery.parser.parse_xquery`.
"""

from __future__ import annotations

from repro.xquery import ast as xq
from repro.xpath.ast import Expr


def xquery_to_text(node, indent=0):
    """Serialize a Module or expression to XQuery text."""
    writer = _Writer()
    if isinstance(node, xq.Module):
        _render_module(node, writer)
    else:
        _render(node, writer)
    return writer.text()


class _Writer:
    def __init__(self):
        self.parts = []
        self.indent = 0
        self.at_line_start = True

    def write(self, text):
        if self.at_line_start and text:
            self.parts.append("  " * self.indent)
            self.at_line_start = False
        self.parts.append(text)

    def newline(self):
        self.parts.append("\n")
        self.at_line_start = True

    def text(self):
        return "".join(self.parts)


def _render_module(module, writer):
    for declaration in module.variables:
        writer.write("declare variable $%s := " % declaration.name)
        _render(declaration.expr, writer)
        writer.write(";")
        writer.newline()
    for declaration in module.functions:
        writer.write(
            "declare function %s(%s) {"
            % (
                declaration.name,
                ", ".join("$%s" % param for param in declaration.params),
            )
        )
        writer.newline()
        writer.indent += 1
        _render(declaration.body, writer)
        writer.newline()
        writer.indent -= 1
        writer.write("};")
        writer.newline()
    _render(module.body, writer)
    writer.newline()


def _render(node, writer):
    comment = getattr(node, "xq_comment", None)
    if comment:
        writer.write("(: %s :)" % comment)
        writer.newline()
    renderer = _RENDERERS.get(type(node))
    if renderer is not None:
        renderer(node, writer)
    else:
        writer.write(node.to_text())


def _render_flwor(node, writer):
    for clause in node.clauses:
        if isinstance(clause, xq.ForClause):
            writer.write("for $%s " % clause.variable)
            if clause.position_variable:
                writer.write("at $%s " % clause.position_variable)
            writer.write("in ")
            _render_inline(clause.expr, writer)
        elif isinstance(clause, xq.LetClause):
            writer.write("let $%s := " % clause.variable)
            _render_inline(clause.expr, writer)
        elif isinstance(clause, xq.WhereClause):
            writer.write("where ")
            _render_inline(clause.expr, writer)
        elif isinstance(clause, xq.OrderByClause):
            writer.write("order by ")
            for index, spec in enumerate(clause.specs):
                if index:
                    writer.write(", ")
                _render_inline(spec.expr, writer)
                if spec.descending:
                    writer.write(" descending")
        writer.newline()
    writer.write("return")
    writer.newline()
    writer.indent += 1
    _render(node.return_expr, writer)
    writer.indent -= 1


def _render_inline(node, writer):
    """Render a sub-expression on the current line (no trailing newline)."""
    if isinstance(
        node,
        (xq.FlworExpr, xq.IfExpr, xq.SequenceExpr, xq.DirectElementConstructor),
    ):
        writer.write("(")
        writer.newline()
        writer.indent += 1
        _render(node, writer)
        writer.newline()
        writer.indent -= 1
        writer.write(")")
    else:
        comment = getattr(node, "xq_comment", None)
        if comment:
            writer.write("(: %s :) " % comment)
        writer.write(node.to_text())


def _render_if(node, writer):
    writer.write("if (")
    _render_inline(node.condition, writer)
    writer.write(") then")
    writer.newline()
    writer.indent += 1
    _render(node.then_expr, writer)
    writer.newline()
    writer.indent -= 1
    writer.write("else")
    writer.newline()
    writer.indent += 1
    _render(node.else_expr, writer)
    writer.indent -= 1


def _render_sequence(node, writer):
    writer.write("(")
    writer.newline()
    writer.indent += 1
    for index, item in enumerate(node.items):
        _render(item, writer)
        if index < len(node.items) - 1:
            writer.write(",")
        writer.newline()
    writer.indent -= 1
    writer.write(")")


def _render_constructor(node, writer):
    writer.write("<%s" % node.name.lexical)
    for prefix, uri in sorted(node.namespaces.items()):
        if prefix:
            writer.write(' xmlns:%s="%s"' % (prefix, uri))
        else:
            writer.write(' xmlns="%s"' % uri)
    for attribute in node.attributes:
        writer.write(' %s="' % attribute.name.lexical)
        for part in attribute.parts:
            if isinstance(part, str):
                writer.write(_escape_attr(part))
            else:
                writer.write("{")
                writer.write(part.to_text())
                writer.write("}")
        writer.write('"')
    if not node.content:
        writer.write("/>")
        return
    writer.write(">")
    # Mixed content must be rendered inline: pretty-printing would inject
    # whitespace into significant text and change the query's meaning.
    if any(isinstance(item, str) for item in node.content):
        for item in node.content:
            if isinstance(item, str):
                writer.write(_escape_text(item))
            elif isinstance(item, xq.DirectElementConstructor):
                _render_constructor(item, writer)
            else:
                writer.write("{")
                writer.write(item.to_text())
                writer.write("}")
        writer.write("</%s>" % node.name.lexical)
        return
    writer.newline()
    writer.indent += 1
    for item in node.content:
        if isinstance(item, str):
            writer.write(_escape_text(item))
            writer.newline()
        elif isinstance(item, xq.DirectElementConstructor):
            _render(item, writer)
            writer.newline()
        else:
            writer.write("{")
            writer.newline()
            writer.indent += 1
            _render(item, writer)
            writer.newline()
            writer.indent -= 1
            writer.write("}")
            writer.newline()
    writer.indent -= 1
    writer.write("</%s>" % node.name.lexical)


def _escape_text(text):
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace("{", "{{")
        .replace("}", "}}")
    )


def _escape_attr(text):
    return _escape_text(text).replace('"', "&quot;")


_RENDERERS = {
    xq.FlworExpr: _render_flwor,
    xq.IfExpr: _render_if,
    xq.SequenceExpr: _render_sequence,
    xq.DirectElementConstructor: _render_constructor,
}
