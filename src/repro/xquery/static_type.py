"""Static structural typing of XQuery results (paper §3.2).

"If the input XMLType is computed from another XQuery/XPath, then we can
derive the structural information based on the static typing result of the
XQuery."  Given the structural schema of a query's input, this module
infers the structural schema of its *output*: which elements it can
construct, with which children, model groups and cardinalities.

The inference is conservative in the direction partial evaluation needs:
it may report an element as repeating or optional when it is in fact
single/required (costing only elegance, e.g. FOR instead of LET), but it
never omits an element the query can construct.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.schema.model import (
    MANY,
    ONE,
    OPTIONAL,
    SEQUENCE,
    ElementDecl,
    Particle,
    StructuralSchema,
)
from repro.xpath import ast as xp
from repro.xquery import ast as xq

FRAGMENT_ROOT = "#fragment"


def infer_result_schema(module, input_schema=None):
    """Infer the structural schema of ``module``'s result.

    :param input_schema: schema of the context item the query runs
        against; required when the query copies input nodes into its
        output (bare path expressions in content).
    :returns: a :class:`StructuralSchema` — rooted at the single
        constructed element when the body builds exactly one, else at a
        synthetic ``#fragment`` declaration.
    """
    typer = _Typer(module, input_schema)
    particles = typer.type_expr(module.body, _root_env(module, input_schema))
    if len(particles) == 1 and particles[0].occurs == ONE and not (
        particles[0].decl.name == "#text"
    ):
        return StructuralSchema(particles[0].decl)
    root = ElementDecl(
        FRAGMENT_ROOT,
        group=SEQUENCE,
        particles=_merge_particles(
            [p for p in particles if p.decl.name != "#text"]
        ),
        has_text=any(p.decl.name == "#text" for p in particles),
    )
    return StructuralSchema(root)


def _root_env(module, input_schema):
    from repro.xpath.ast import is_context_item

    env = {}
    if module.variables and is_context_item(module.variables[0].expr):
        env[module.variables[0].name] = _ContextBinding(input_schema)
    env["."] = _ContextBinding(input_schema)
    return env


class _ContextBinding:
    """A variable bound to (part of) the input document."""

    __slots__ = ("schema", "decl")

    def __init__(self, schema, decl=None):
        self.schema = schema
        self.decl = decl  # None = the document node


class _ResultBinding:
    """A variable bound to constructed output (a list of particles)."""

    __slots__ = ("particles",)

    def __init__(self, particles):
        self.particles = particles


_TEXT_DECL = ElementDecl("#text", has_text=True)


def _text_particle(occurs=ONE):
    return Particle(_TEXT_DECL, occurs)


class _Typer:
    def __init__(self, module, input_schema):
        self.module = module
        self.input_schema = input_schema
        self._function_stack = []

    # -- core -------------------------------------------------------------

    def type_expr(self, expr, env, occurs=ONE):
        """Particles the expression's result contributes."""
        if isinstance(expr, xq.DirectElementConstructor):
            return [Particle(self._type_constructor(expr, env), occurs)]
        if isinstance(expr, xq.ComputedTextConstructor):
            return [_text_particle(occurs)]
        if isinstance(expr, (xp.Literal, xp.NumberLiteral)):
            return [_text_particle(occurs)]
        if isinstance(expr, xq.EmptySequence):
            return []
        if isinstance(expr, xq.SequenceExpr):
            out = []
            for item in expr.items:
                out.extend(self.type_expr(item, env, occurs))
            return out
        if isinstance(expr, xq.FlworExpr):
            return self._type_flwor(expr, env, occurs)
        if isinstance(expr, xq.IfExpr):
            then_particles = self.type_expr(expr.then_expr, env, occurs)
            else_particles = self.type_expr(expr.else_expr, env, occurs)
            return [
                Particle(p.decl, _optionalize(p.occurs))
                for p in then_particles + else_particles
            ]
        if isinstance(expr, xp.FunctionCall):
            # all library functions produce atomics in our subset
            return [_text_particle(occurs)]
        if isinstance(expr, xq.UserFunctionCall):
            return self._type_function_call(expr, env, occurs)
        if isinstance(expr, (xp.PathExpr, xp.VariableRef, xp.ContextItem,
                             xp.FilterExpr, xp.UnionExpr)):
            return self._type_path_value(expr, env, occurs)
        if isinstance(expr, (xp.BinaryOp, xp.UnaryMinus, xq.RangeExpr,
                             xq.QuantifiedExpr, xq.InstanceOfExpr)):
            return [_text_particle(occurs)]
        raise RewriteError(
            "cannot statically type %s" % type(expr).__name__
        )

    def _type_constructor(self, expr, env):
        particles = []
        has_text = False
        for item in expr.content:
            if isinstance(item, str):
                has_text = True
                continue
            for particle in self.type_expr(item, env):
                if particle.decl.name == "#text":
                    has_text = True
                else:
                    particles.append(particle)
        particles = _merge_particles(particles)
        return ElementDecl(
            expr.name.local,
            group=SEQUENCE if particles else None,
            particles=particles,
            has_text=has_text,
            attributes=[a.name.local for a in expr.attributes],
        )

    def _type_flwor(self, expr, env, occurs):
        env = dict(env)
        loop = False
        for clause in expr.clauses:
            if isinstance(clause, xq.LetClause):
                env[clause.variable] = self._bind_value(clause.expr, env)
            elif isinstance(clause, xq.ForClause):
                binding, repeating = self._bind_iteration(clause.expr, env)
                env[clause.variable] = binding
                loop = loop or repeating
                if clause.position_variable:
                    env[clause.position_variable] = _ResultBinding(
                        [_text_particle()]
                    )
            elif isinstance(clause, xq.WhereClause):
                loop = loop  # a filter may drop tuples: handled below
            elif isinstance(clause, xq.OrderByClause):
                pass
        inner_occurs = MANY if loop else occurs
        has_where = any(
            isinstance(clause, xq.WhereClause) for clause in expr.clauses
        )
        particles = self.type_expr(expr.return_expr, env, inner_occurs)
        if has_where and not loop:
            particles = [
                Particle(p.decl, _optionalize(p.occurs)) for p in particles
            ]
        return particles

    def _type_function_call(self, expr, env, occurs):
        declaration = None
        for candidate in self.module.functions:
            if candidate.name == expr.name and len(candidate.params) == len(
                expr.args
            ):
                declaration = candidate
                break
        if declaration is None:
            raise RewriteError("unknown function %s()" % expr.name)
        if declaration.name in self._function_stack:
            # recursive function: its output repeats unboundedly; report
            # the constructors syntactically reachable in its body, many.
            return [
                Particle(self._type_constructor(node, env), MANY)
                for node in _reachable_constructors(declaration.body)
            ]
        self._function_stack.append(declaration.name)
        try:
            inner_env = dict(env)
            for param, arg in zip(declaration.params, expr.args):
                inner_env[param] = self._bind_value(arg, env)
            return self.type_expr(declaration.body, inner_env, occurs)
        finally:
            self._function_stack.pop()

    # -- input-schema navigation ----------------------------------------------

    def _bind_value(self, expr, env):
        if isinstance(expr, (xp.PathExpr, xp.VariableRef, xp.ContextItem)):
            resolved = self._resolve_input(expr, env)
            if resolved is not None:
                decl, _ = resolved
                if decl is self._DOC:
                    decl = None
                return _ContextBinding(self.input_schema, decl)
        try:
            return _ResultBinding(self.type_expr(expr, env))
        except RewriteError:
            return _ResultBinding([_text_particle()])

    def _bind_iteration(self, expr, env):
        """Binding for a FOR variable plus whether it iterates (>1)."""
        resolved = self._resolve_input(expr, env)
        if resolved is not None:
            decl, many = resolved
            if decl is self._DOC:
                decl = None
            return _ContextBinding(self.input_schema, decl), many
        particles = self.type_expr(expr, env)
        repeating = len(particles) != 1 or particles[0].occurs != ONE
        return _ResultBinding(particles), repeating

    _DOC = "#document"

    def _resolve_input(self, expr, env):
        """(decl_or_DOC, crosses_many) when the expression navigates the
        input document; None when it is constructed output or untypeable.
        ``decl`` may be the _DOC sentinel (the document node) or None
        (somewhere unknown below a descendant step)."""
        if isinstance(expr, xp.ContextItem):
            binding = env.get(".")
            if isinstance(binding, _ContextBinding):
                return (binding.decl or self._DOC), False
            return None
        if isinstance(expr, xp.VariableRef):
            binding = env.get(expr.name)
            if isinstance(binding, _ContextBinding):
                return (binding.decl or self._DOC), False
            return None
        if isinstance(expr, xp.FilterExpr):
            return self._resolve_input(expr.primary, env)
        if not isinstance(expr, xp.PathExpr):
            return None
        if expr.start is not None:
            base = self._resolve_input(expr.start, env)
        else:
            binding = env.get(".")
            if not isinstance(binding, _ContextBinding):
                return None
            if expr.absolute:
                base = (self._DOC, False)
            else:
                base = (binding.decl or self._DOC), False
        if base is None or self.input_schema is None:
            return None
        decl, many = base
        for step in expr.steps:
            if step.axis == "self":
                continue
            if step.axis in ("descendant", "descendant-or-self"):
                many = True
                decl = None
                continue
            if step.axis != "child":
                return None
            if isinstance(step.test, xp.KindTest):
                return None  # text()/node(): not element-valued
            name = step.test.local
            if name == "*":
                return None
            if decl is self._DOC:
                if self.input_schema.root.name == "#fragment":
                    particle = self.input_schema.root.particle_for(name)
                    if particle is None:
                        return None
                    decl = particle.decl
                    many = many or not particle.at_most_one
                elif self.input_schema.root.name == name:
                    decl = self.input_schema.root
                else:
                    return None
                continue
            if decl is None:
                found = self.input_schema.find_decl(name)
                if found is None:
                    return None
                decl = found
                many = True
                continue
            particle = decl.particle_for(name)
            if particle is None:
                return None
            decl = particle.decl
            many = many or not particle.at_most_one
        if decl is self._DOC:
            return self._DOC, many
        return decl, many

    def _type_path_value(self, expr, env, occurs):
        """A bare path/variable in content copies nodes from somewhere."""
        if isinstance(expr, xp.VariableRef):
            binding = env.get(expr.name)
            if isinstance(binding, _ResultBinding):
                return [
                    Particle(p.decl, p.occurs if occurs == ONE else MANY)
                    for p in binding.particles
                ]
            if isinstance(binding, _ContextBinding):
                if binding.decl is None:
                    if self.input_schema is None:
                        raise RewriteError("untyped context item copied")
                    return [Particle(self.input_schema.root, occurs)]
                return [Particle(binding.decl, occurs)]
            raise RewriteError("unbound variable $%s" % expr.name)
        if isinstance(expr, xp.UnionExpr):
            out = []
            for part in expr.parts:
                out.extend(self._type_path_value(part, env, occurs))
            return out
        resolved = self._resolve_input(expr, env)
        if resolved is None or resolved[0] is None:
            raise RewriteError(
                "cannot statically type the copied path %r" % expr.to_text()
            )
        decl, many = resolved
        if decl is self._DOC:
            decl = self.input_schema.root
        return [Particle(decl, MANY if many or occurs != ONE else occurs)]


def _merge_particles(particles):
    """Conservatively merge same-named particles: two slots that may both
    produce <x> collapse into one repeating <x> whose children are the
    union of both declarations' children."""
    merged = []
    by_name = {}
    for particle in particles:
        name = particle.decl.name
        if name not in by_name:
            by_name[name] = particle
            merged.append(particle)
            continue
        existing = by_name[name]
        decl = existing.decl
        extra = particle.decl
        children = list(decl.particles)
        known = {child.decl.name for child in children}
        for child in extra.particles:
            if child.decl.name not in known:
                children.append(child)
        union = ElementDecl(
            name,
            group=SEQUENCE if children else None,
            particles=children,
            has_text=decl.has_text or extra.has_text,
            attributes=sorted(set(decl.attributes) | set(extra.attributes)),
        )
        replacement = Particle(union, MANY)
        index = merged.index(existing)
        merged[index] = replacement
        by_name[name] = replacement
    return merged


def _optionalize(occurs):
    if occurs in (ONE, OPTIONAL):
        return OPTIONAL
    return MANY


def _reachable_constructors(expr):
    return [
        node
        for node in expr.iter_tree()
        if isinstance(node, xq.DirectElementConstructor)
    ]
