"""repro — reproduction of "Efficient XSLT Processing in Relational
Database System" (Liu & Novoselsky, VLDB 2006).

The documented front door is :class:`repro.api.Engine` (re-exported
here) with :class:`repro.api.TransformOptions` as the one options
object::

    from repro import Database, Engine

    engine = Engine(db)
    result = engine.transform(storage, stylesheet)      # materialized
    for chunk in engine.transform_stream(storage, stylesheet):
        ...                                             # streaming

The legacy entry points delegate to it:

* :func:`repro.core.transform.xml_transform` — the ``XMLTransform()``
  equivalent (one-shot compile + execute);
* :class:`repro.core.pipeline.XsltRewriter` — the XSLT→XQuery partial
  evaluator;
* :class:`repro.serve.TransformService` — the concurrent serving tier;

with the substrates in :mod:`repro.xmlmodel`, :mod:`repro.xpath`,
:mod:`repro.xslt`, :mod:`repro.xquery`, :mod:`repro.schema` and
:mod:`repro.rdb`.
"""

__version__ = "1.0.0"

# Convenience re-exports of the paper's front door.
from repro.core import (  # noqa: E402
    RewriteOptions,
    TransformResult,
    XsltRewriter,
    rewrite_combined,
    rewrite_extract,
    rewrite_xml_exists,
    rewrite_xquery_over_view,
    rewrite_xslt_over_xquery,
    transform_many,
    xml_transform,
)
from repro.api import (  # noqa: E402
    Engine,
    OptimizerLevel,
    Strategy,
    TransformOptions,
)
from repro.obs.explain import ExplainReport  # noqa: E402
from repro.rdb import Database  # noqa: E402

__all__ = [
    "Database",
    "Engine",
    "ExplainReport",
    "OptimizerLevel",
    "RewriteOptions",
    "Strategy",
    "TransformOptions",
    "TransformResult",
    "XsltRewriter",
    "rewrite_combined",
    "rewrite_extract",
    "rewrite_xml_exists",
    "rewrite_xquery_over_view",
    "rewrite_xslt_over_xquery",
    "transform_many",
    "xml_transform",
]
