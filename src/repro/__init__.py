"""repro — reproduction of "Efficient XSLT Processing in Relational
Database System" (Liu & Novoselsky, VLDB 2006).

The paper's front door lives in :mod:`repro.core`:

* :func:`repro.core.transform.xml_transform` — the ``XMLTransform()``
  equivalent, with ``rewrite=True`` (XSLT→XQuery→SQL/XML) or
  ``rewrite=False`` (functional DOM evaluation);
* :class:`repro.core.pipeline.XsltRewriter` — the XSLT→XQuery partial
  evaluator;

with the substrates in :mod:`repro.xmlmodel`, :mod:`repro.xpath`,
:mod:`repro.xslt`, :mod:`repro.xquery`, :mod:`repro.schema` and
:mod:`repro.rdb`.
"""

__version__ = "1.0.0"

# Convenience re-exports of the paper's front door.
from repro.core import (  # noqa: E402
    RewriteOptions,
    TransformResult,
    XsltRewriter,
    rewrite_combined,
    rewrite_extract,
    rewrite_xml_exists,
    rewrite_xquery_over_view,
    rewrite_xslt_over_xquery,
    xml_transform,
)
from repro.rdb import Database  # noqa: E402

__all__ = [
    "Database",
    "RewriteOptions",
    "TransformResult",
    "XsltRewriter",
    "rewrite_combined",
    "rewrite_extract",
    "rewrite_xml_exists",
    "rewrite_xquery_over_view",
    "rewrite_xslt_over_xquery",
    "xml_transform",
]
