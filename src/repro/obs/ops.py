"""HTTP ops plane: scrape, probe and debug endpoints (stdlib only).

A :class:`OpsServer` exposes the observability surface over HTTP so the
engine can run behind standard operational tooling — a Prometheus
scraper, a load balancer's health checks, an operator's ``curl``:

====================  =========================================================
``GET /metrics``      the metrics registry in the Prometheus text exposition
                      format (:func:`repro.obs.export.prometheus_text`)
``GET /healthz``      liveness JSON: status plus queue/cache/recorder stats
                      (from the wired health provider, e.g.
                      :meth:`repro.serve.TransformService.health`)
``GET /readyz``       readiness: 200 when accepting traffic, 503 when closed
                      or the admission queue is saturated
``GET /debug/requests``
                      the flight recorder's ring, newest first
                      (``?limit=N``, ``?detail=1`` to inline retained detail)
``GET /debug/trace/<trace_id>``
                      one request's full record: stage timings, span tree,
                      retained EXPLAIN ANALYZE + decision ledger
====================  =========================================================

Start it standalone over any registry/recorder::

    from repro.obs import OpsServer

    ops = OpsServer(metrics=registry, recorder=recorder, port=9090).start()
    ...
    ops.close()

or let the serve tier own it — ``TransformService(db, ops_port=0)``
wires its metrics, flight recorder and health provider and manages the
lifecycle.

The server is a ``ThreadingHTTPServer`` with daemon threads bound to
``127.0.0.1`` by default — an *operational* plane, not an ingress; put
it behind real auth/routing before exposing it beyond the host.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import prometheus_text
from repro.obs.metrics import global_metrics

_LOG = logging.getLogger("repro.obs.ops")

#: queue saturation at or above which the default readiness probe
#: reports not-ready
DEFAULT_READY_SATURATION = 0.95


class OpsServer:
    """The ops-plane HTTP server.

    :param metrics: a :class:`~repro.obs.metrics.MetricsRegistry`
        (defaults to the process-wide one) served at ``/metrics``.
    :param recorder: a :class:`~repro.obs.recorder.FlightRecorder`
        backing the ``/debug`` endpoints (404 without one).
    :param health_fn: zero-argument callable returning the ``/healthz``
        JSON dict; it should carry a ``status`` key.  Defaults to a
        minimal ``{"status": "ok"}`` (plus recorder stats when wired).
    :param ready_fn: zero-argument callable returning ``(ready: bool,
        body: dict)`` for ``/readyz``.  Defaults to deriving readiness
        from ``health_fn`` (ready unless ``status`` is ``"closed"`` or
        ``queue.saturation`` ≥ ``DEFAULT_READY_SATURATION``).
    :param host: bind address (default loopback).
    :param port: TCP port; 0 binds an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(self, metrics=None, recorder=None, health_fn=None,
                 ready_fn=None, host="127.0.0.1", port=0):
        self.metrics = metrics or global_metrics()
        self.recorder = recorder
        self.health_fn = health_fn
        self.ready_fn = ready_fn
        self.host = host
        self._requested_port = port
        self._server = None
        self._thread = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Bind and serve in a daemon thread; returns self."""
        if self._server is not None:
            return self
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), _OpsHandler
        )
        self._server.daemon_threads = True
        self._server.ops = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-ops-%d" % self.port,
            daemon=True,
        )
        self._thread.start()
        _LOG.info("ops server listening on %s", self.url)
        return self

    @property
    def started(self):
        return self._server is not None

    @property
    def port(self):
        """The bound port (resolves 0 after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def close(self):
        """Stop serving and release the socket."""
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- endpoint bodies ---------------------------------------------------------

    def health(self):
        if self.health_fn is not None:
            return self.health_fn()
        body = {"status": "ok"}
        if self.recorder is not None:
            body["recorder"] = self.recorder.stats()
        return body

    def ready(self):
        if self.ready_fn is not None:
            return self.ready_fn()
        body = self.health()
        ready = body.get("status") not in ("closed", "stopping")
        saturation = (body.get("queue") or {}).get("saturation")
        if saturation is not None \
                and saturation >= DEFAULT_READY_SATURATION:
            ready = False
        return ready, body


def start_ops_server(metrics=None, recorder=None, health_fn=None,
                     ready_fn=None, host="127.0.0.1", port=0):
    """Construct and :meth:`~OpsServer.start` an :class:`OpsServer`."""
    return OpsServer(metrics=metrics, recorder=recorder,
                     health_fn=health_fn, ready_fn=ready_fn,
                     host=host, port=port).start()


class _OpsHandler(BaseHTTPRequestHandler):
    server_version = "repro-ops/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _send(self, status, body, content_type="application/json"):
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status, obj):
        self._send(status, json.dumps(obj, sort_keys=True, default=str))

    def _not_found(self, what):
        self._send_json(404, {"error": "not found", "path": what})

    # -- routing -----------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib handler name
        ops = self.server.ops
        url = urlsplit(self.path)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        try:
            if path == "/metrics":
                self._send(
                    200,
                    prometheus_text(ops.metrics),
                    content_type="text/plain; version=0.0.4",
                )
            elif path == "/healthz":
                self._send_json(200, ops.health())
            elif path == "/readyz":
                ready, body = ops.ready()
                self._send_json(200 if ready else 503, body)
            elif path == "/debug/requests":
                self._debug_requests(ops, query)
            elif path.startswith("/debug/trace/"):
                self._debug_trace(ops, path[len("/debug/trace/"):])
            else:
                self._not_found(self.path)
        except Exception as exc:  # never let a probe kill the handler thread
            _LOG.exception("ops endpoint %s failed", self.path)
            try:
                self._send_json(500, {"error": "%s: %s"
                                      % (type(exc).__name__, exc)})
            except OSError:  # client already gone
                pass

    def _debug_requests(self, ops, query):
        if ops.recorder is None:
            self._not_found("/debug/requests (no flight recorder wired)")
            return
        limit = None
        if query.get("limit"):
            try:
                limit = max(1, int(query["limit"][0]))
            except ValueError:
                limit = None
        include_detail = query.get("detail", ["0"])[0] in ("1", "true")
        records = ops.recorder.snapshot(limit=limit,
                                        include_detail=include_detail)
        self._send_json(200, {
            "count": len(records),
            "recorder": ops.recorder.stats(),
            "records": records,
        })

    def _debug_trace(self, ops, trace_id):
        if ops.recorder is None:
            self._not_found("/debug/trace (no flight recorder wired)")
            return
        record = ops.recorder.get(trace_id)
        if record is None:
            self._not_found("/debug/trace/%s" % trace_id)
            return
        self._send_json(
            200, record.as_dict(include_spans=True, include_detail=True)
        )
