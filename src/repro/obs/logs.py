"""Structured JSON logging with trace correlation.

The pipeline already logs through the stdlib (``repro.obs`` warnings on
fallbacks, serve-tier messages); this module gives those records a
machine-readable shape a log shipper can ingest and — the part that
makes them *joinable* — stamps the ambient trace context
(:func:`repro.obs.trace.current_trace_context`) onto every record, so
one ``trace_id`` connects a request's spans, its flight-recorder entry
and its log lines.

Usage::

    from repro.obs import configure_json_logging

    configure_json_logging()              # JSON lines on stderr
    configure_json_logging(open("app.jsonl", "a"), level=logging.DEBUG)

Extra structured fields ride on the standard ``extra=`` mechanism under
the ``fields`` key::

    log.info("cache evicted", extra={"fields": {"reason": "ttl"}})
"""

from __future__ import annotations

import json
import logging
import sys

from repro.obs.trace import current_trace_context


class JsonLogFormatter(logging.Formatter):
    """Formats every record as one JSON object with trace correlation.

    Emitted keys: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``; ``trace_id``/``span_id`` whenever a trace context is
    ambient at emit time; ``error`` with the formatted traceback when
    the record carries exception info; plus any ``fields`` dict passed
    via ``extra=``.
    """

    def format(self, record):
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        context = current_trace_context()
        if context is not None:
            payload["trace_id"] = context.trace_id
            if context.span_id:
                payload["span_id"] = context.span_id
        if record.exc_info:
            payload["error"] = self.formatException(record.exc_info)
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                payload.setdefault(key, value)
        return json.dumps(payload, sort_keys=True, default=str)


class JsonLogHandler(logging.StreamHandler):
    """A stream handler pre-wired with :class:`JsonLogFormatter`."""

    def __init__(self, stream=None):
        super().__init__(stream if stream is not None else sys.stderr)
        self.setFormatter(JsonLogFormatter())


def configure_json_logging(stream=None, level=logging.INFO,
                           logger_name="repro"):
    """Attach a :class:`JsonLogHandler` to ``logger_name`` (default: the
    whole ``repro`` hierarchy) and return the handler, so callers can
    detach it (``logger.removeHandler(handler)``) when done."""
    handler = JsonLogHandler(stream)
    handler.setLevel(level)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler
