"""Flight recorder: a bounded ring buffer of per-request records.

Metrics aggregate and traces explain *one* request — the flight
recorder is the piece in between: the last N requests the process
served, each compressed to the fields an operator triages with (trace
id, stage timings, cache behaviour, fallback category, Q-error
verdict, row counts), retrievable by trace id from the ops plane
(``/debug/requests``, ``/debug/trace/<id>``).

Retention is two-tier, mirroring production tracing systems:

* **every** request gets a compact :class:`RequestRecord` (plus its
  span tree, already materialized by the per-request tracer — keeping
  it costs a list of dicts, not a re-serialization);
* the **slow-request policy** additionally retains the full diagnosis
  (EXPLAIN ANALYZE + the rewrite-decision ledger, produced lazily by
  the caller's ``detail_fn``) for requests over
  ``slow_threshold_seconds`` — and, so the fast path stays inspectable
  too, for every ``tail_sample_every``-th request regardless of
  latency (tail sampling).

The ring is thread-safe: the serve tier records from worker threads
while ``/debug`` endpoints snapshot concurrently, and
``snapshot()``/``reset()`` take consistent copies under the lock.
``detail_fn`` runs *outside* the lock (rendering an EXPLAIN is not
cheap) and only when the policy retains it.
"""

from __future__ import annotations

import threading
import time
from collections import deque

#: why a record kept its full detail
DETAIL_SLOW = "slow"
DETAIL_TAIL_SAMPLE = "tail-sample"


def stage_seconds(spans):
    """{span name: total seconds} aggregated over flattened span records
    (the ``Span.to_dict`` shape) — the per-stage timing breakdown a
    flight record carries."""
    stages = {}
    for record in spans or ():
        seconds = record.get("duration_ms", 0.0) / 1000.0
        stages[record["name"]] = stages.get(record["name"], 0.0) + seconds
    return stages


class RequestRecord:
    """One served request, compressed for the ring buffer."""

    __slots__ = ("trace_id", "name", "sequence", "started_at", "status",
                 "error", "strategy", "cache_hit", "fallback_category",
                 "queue_wait_seconds", "execute_seconds", "total_seconds",
                 "rows", "bytes_out", "q_error_max", "q_error_triggered",
                 "stages", "spans", "detail", "detail_reason")

    def __init__(self, trace_id, name=None, sequence=0, started_at=None,
                 status="ok", error=None, strategy=None, cache_hit=None,
                 fallback_category=None, queue_wait_seconds=None,
                 execute_seconds=None, total_seconds=None, rows=None,
                 bytes_out=None, q_error_max=None, q_error_triggered=False,
                 stages=None, spans=None, detail=None, detail_reason=None):
        #: trace id shared by every span of this request
        self.trace_id = trace_id
        #: short human label (stylesheet hash, workload item name, ...)
        self.name = name
        #: monotonically increasing admission number within this recorder
        self.sequence = sequence
        #: wall-clock start (``time.time``), for log correlation
        self.started_at = started_at
        #: "ok" | "error" | "timeout" | "cancelled" | "rejected"
        self.status = status
        self.error = error
        self.strategy = strategy
        self.cache_hit = cache_hit
        self.fallback_category = fallback_category
        self.queue_wait_seconds = queue_wait_seconds
        self.execute_seconds = execute_seconds
        self.total_seconds = total_seconds
        self.rows = rows
        self.bytes_out = bytes_out
        #: plan-wide max Q-error of this execution (None when unprofiled)
        self.q_error_max = q_error_max
        #: True when the feedback policy distrusted the plan
        self.q_error_triggered = q_error_triggered
        #: {stage name: seconds} aggregated from the span tree
        self.stages = dict(stages) if stages else {}
        #: flattened span records (``Span.to_dict`` shape) of the trace
        self.spans = list(spans) if spans else []
        #: full EXPLAIN ANALYZE + decision ledger, when retained
        self.detail = detail
        #: why detail was retained (DETAIL_SLOW / DETAIL_TAIL_SAMPLE)
        self.detail_reason = detail_reason

    def as_dict(self, include_spans=False, include_detail=False):
        record = {
            "trace_id": self.trace_id,
            "name": self.name,
            "sequence": self.sequence,
            "started_at": self.started_at,
            "status": self.status,
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "fallback_category": self.fallback_category,
            "queue_wait_seconds": self.queue_wait_seconds,
            "execute_seconds": self.execute_seconds,
            "total_seconds": self.total_seconds,
            "rows": self.rows,
            "bytes_out": self.bytes_out,
            "q_error_max": self.q_error_max,
            "q_error_triggered": self.q_error_triggered,
            "stages": dict(self.stages),
            "has_detail": self.detail is not None,
            "detail_reason": self.detail_reason,
        }
        if self.error is not None:
            record["error"] = self.error
        if include_spans:
            record["spans"] = list(self.spans)
        if include_detail:
            record["detail"] = self.detail
        return record

    def __repr__(self):
        return "<RequestRecord %s %s %s>" % (
            self.trace_id, self.status,
            "%.3fs" % self.total_seconds
            if self.total_seconds is not None else "?",
        )


class FlightRecorder:
    """Bounded, thread-safe ring of :class:`RequestRecord`.

    :param capacity: ring size; the oldest record is dropped beyond it.
    :param slow_threshold_seconds: requests at or above this total
        latency retain their full ``detail_fn`` output (None disables
        the slow policy).
    :param tail_sample_every: additionally retain detail for every Nth
        request (0 disables tail sampling).
    :param clock: wall-clock callable (injectable for tests).
    """

    def __init__(self, capacity=256, slow_threshold_seconds=0.5,
                 tail_sample_every=0, clock=time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.slow_threshold_seconds = slow_threshold_seconds
        self.tail_sample_every = tail_sample_every
        self.clock = clock
        self._lock = threading.Lock()
        self._records = deque(maxlen=capacity)
        self._sequence = 0
        self._detail_retained = 0

    # -- recording ---------------------------------------------------------------

    def record(self, trace_id, name=None, status="ok", error=None,
               strategy=None, cache_hit=None, fallback_category=None,
               queue_wait_seconds=None, execute_seconds=None,
               total_seconds=None, rows=None, bytes_out=None,
               q_error_max=None, q_error_triggered=False, stages=None,
               spans=None, detail_fn=None, started_at=None):
        """Append one request record; returns it.

        ``detail_fn`` is a zero-argument callable producing the full
        diagnosis (EXPLAIN ANALYZE + ledger rendering); it is invoked —
        outside the ring lock — only when the slow/tail-sample policy
        retains it.
        """
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        detail = None
        detail_reason = None
        if detail_fn is not None:
            if (self.slow_threshold_seconds is not None
                    and total_seconds is not None
                    and total_seconds >= self.slow_threshold_seconds):
                detail_reason = DETAIL_SLOW
            elif (self.tail_sample_every
                    and sequence % self.tail_sample_every == 0):
                detail_reason = DETAIL_TAIL_SAMPLE
            if detail_reason is not None:
                try:
                    detail = detail_fn()
                except Exception as exc:  # diagnosis must never fail a request
                    detail = "detail unavailable: %s: %s" % (
                        type(exc).__name__, exc)
        record = RequestRecord(
            trace_id, name=name, sequence=sequence,
            started_at=started_at if started_at is not None
            else self.clock(),
            status=status, error=error, strategy=strategy,
            cache_hit=cache_hit, fallback_category=fallback_category,
            queue_wait_seconds=queue_wait_seconds,
            execute_seconds=execute_seconds, total_seconds=total_seconds,
            rows=rows, bytes_out=bytes_out, q_error_max=q_error_max,
            q_error_triggered=q_error_triggered, stages=stages,
            spans=spans, detail=detail, detail_reason=detail_reason,
        )
        with self._lock:
            self._records.append(record)
            if detail_reason is not None:
                self._detail_retained += 1
        return record

    # -- reading -----------------------------------------------------------------

    def records(self):
        """A consistent copy of the ring, oldest first."""
        with self._lock:
            return list(self._records)

    def get(self, trace_id):
        """The most recent record for ``trace_id``, or None."""
        with self._lock:
            for record in reversed(self._records):
                if record.trace_id == trace_id:
                    return record
        return None

    def snapshot(self, limit=None, include_spans=False,
                 include_detail=False):
        """JSON-friendly dump of the ring, newest first."""
        with self._lock:
            records = list(self._records)
        records.reverse()
        if limit is not None:
            records = records[:limit]
        return [
            record.as_dict(include_spans=include_spans,
                           include_detail=include_detail)
            for record in records
        ]

    def stats(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._records),
                "recorded": self._sequence,
                "detail_retained": self._detail_retained,
                "slow_threshold_seconds": self.slow_threshold_seconds,
                "tail_sample_every": self.tail_sample_every,
            }

    def reset(self):
        """Empty the ring (sequence numbering continues)."""
        with self._lock:
            removed = len(self._records)
            self._records.clear()
        return removed

    def __len__(self):
        with self._lock:
            return len(self._records)
