"""The one structured EXPLAIN surface: :class:`ExplainReport`.

Four PRs of growth left four string-shaped EXPLAIN doors —
``repro.rdb.plan.explain`` (operator tree), ``Database.explain`` (parse +
optimize + render), ``TransformResult.explain(rewrite=True)`` (strategy +
decision ledger interleaved with the plan) and ``Engine.explain`` — each
concatenating its own sections.  :class:`ExplainReport` is the
consolidation: one object holding the optimized plan, the cost
estimates and EXPLAIN ANALYZE actuals, the rewrite-decision ledger and
the post-execution Q-error feedback, with

* :meth:`ExplainReport.render` — the human text all the legacy doors now
  delegate to (they remain as thin shims emitting their historical
  strings), and
* :meth:`ExplainReport.to_json` / :meth:`ExplainReport.to_dict` — a
  lossless structured export (nested plan tree with per-node
  estimates/actuals, decisions, Q-errors) for dashboards and diffing.

:meth:`Engine.explain <repro.api.Engine.explain>` returns an
``ExplainReport``; ``str(report)`` and ``"..." in report`` delegate to
:meth:`render`, so existing substring-style assertions keep working.
"""

from __future__ import annotations

import json

from repro.rdb.plan import PlanProfiler, _fmt_stat, explain


class ExplainReport:
    """Everything one EXPLAIN knows, in one object.

    ``query``
        the optimized :class:`~repro.rdb.plan.Query` (None when the
        transform compiled to the functional strategy);
    ``ledger``
        the :class:`~repro.obs.decisions.DecisionLedger` of the compile
        (None when the caller has none);
    ``profile``
        a :class:`~repro.rdb.plan.PlanProfiler` with per-node actuals,
        set when the plan executed (EXPLAIN ANALYZE);
    ``stats``
        the :class:`~repro.rdb.plan.ExecutionStats` of that execution;
    ``feedback``
        the :class:`~repro.obs.feedback.PlanFeedback` Q-error record;
    ``strategy`` / ``fallback_reason``
        how the transform ran, when the report covers a transform rather
        than a bare query;
    ``include_decisions``
        whether :meth:`render` emits the rewrite-decisions section and
        interleaves decisions into the plan (defaults to whether a
        ledger is present) — the ``TransformResult.explain(rewrite=...)``
        compatibility knob.
    """

    __slots__ = ("query", "ledger", "profile", "stats", "feedback",
                 "strategy", "fallback_reason", "include_decisions")

    def __init__(self, query=None, ledger=None, profile=None, stats=None,
                 feedback=None, strategy=None, fallback_reason=None,
                 include_decisions=None):
        self.query = query
        self.ledger = ledger
        self.profile = profile
        self.stats = stats
        self.feedback = feedback
        self.strategy = strategy
        self.fallback_reason = fallback_reason
        if include_decisions is None:
            include_decisions = ledger is not None
        self.include_decisions = include_decisions

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def for_query(cls, db, query, analyze=False, env=None, ledger=None):
        """A report over one optimized :class:`~repro.rdb.plan.Query`;
        with ``analyze=True`` the query is executed here and the report
        carries the actuals (``Database.explain``'s contract)."""
        from repro.rdb.plan import ExecutionStats

        profile = None
        stats = None
        if analyze:
            stats = ExecutionStats()
            stats.profiler = profile = PlanProfiler()
            query.execute(db, env=env, stats=stats)
        return cls(query=query, ledger=ledger, profile=profile, stats=stats)

    # -- rendering --------------------------------------------------------------

    def render(self):
        """The human-readable report.  Sections appear only when their
        data is present, which is exactly what makes the legacy shims'
        historical strings fall out of one renderer: a bare
        ``Database.explain`` report has no strategy/ledger and renders
        as the unadorned operator tree (+ execution summary), while a
        transform's report leads with strategy and the decision tree."""
        lines = []
        if self.strategy is not None:
            lines.append("strategy: %s" % self.strategy)
        if self.fallback_reason:
            lines.append("fallback: %s" % self.fallback_reason)
        if self.include_decisions:
            lines.append("rewrite decisions:")
            if self.ledger is None or not len(self.ledger):
                lines.append("  (no rewrite decisions recorded)")
            else:
                lines.extend("  " + line for line in self.ledger.render())
        if self.query is not None:
            wrapped = (self.strategy is not None or self.include_decisions)
            by_node = self._decisions_by_node()
            rendered = explain(self.query, profile=self.profile)
            prefix = "  " if wrapped else ""
            if wrapped:
                lines.append("plan:")
            for line in rendered.splitlines():
                lines.append(prefix + line)
                anchored = by_node.get(_plan_line_node_id(line))
                if anchored:
                    pad = " " * (len(line) - len(line.lstrip()) + 4)
                    for decision in anchored:
                        lines.append("%s%s<- [%s] %s -> %s" % (
                            prefix, pad, decision.kind, decision.subject,
                            decision.action,
                        ))
        if self.stats is not None:
            lines.append("Execution: %s" % ", ".join(
                "%s=%s" % (name, _fmt_stat(value))
                for name, value in self.stats.as_dict().items()
                if value
            ))
        if self.feedback is not None and self.feedback.nodes:
            lines.append("plan feedback (Q-error):")
            lines.extend("  " + line for line in self.feedback.render())
        return "\n".join(lines)

    def _decisions_by_node(self):
        by_node = {}
        if self.include_decisions and self.ledger is not None:
            for decision in self.ledger:
                node_id = decision.provenance.sql_node_id
                if node_id is not None:
                    by_node.setdefault(node_id, []).append(decision)
        return by_node

    def __str__(self):
        return self.render()

    def __contains__(self, text):
        # substring checks against the rendered report keep working for
        # callers that treated the old return value as a string
        return text in self.render()

    def __repr__(self):
        parts = []
        if self.strategy is not None:
            parts.append("strategy=%s" % self.strategy)
        if self.query is not None:
            parts.append("plan")
        if self.profile is not None:
            parts.append("analyzed")
        if self.ledger is not None:
            parts.append("%d decision(s)" % len(self.ledger))
        return "<ExplainReport %s>" % " ".join(parts or ["empty"])

    # -- structured export ------------------------------------------------------

    def to_dict(self):
        record = {"version": 1}
        if self.strategy is not None:
            record["strategy"] = self.strategy
        if self.fallback_reason:
            record["fallback_reason"] = self.fallback_reason
        if self.query is not None:
            record["sql"] = self.query.to_sql()
            record["plan"] = self._plan_dict(self.query.plan)
        if self.ledger is not None:
            record["decisions"] = [
                decision.to_dict() for decision in self.ledger
            ]
        if self.stats is not None:
            record["execution"] = {
                name: value
                for name, value in self.stats.as_dict().items()
                if value
            }
        if self.feedback is not None:
            record["feedback"] = self.feedback.as_dict()
        return record

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def _plan_dict(self, node):
        record = {"op": type(node).__name__}
        node_id = getattr(node, "plan_node_id", None)
        if node_id is not None:
            record["id"] = node_id
        for attr in ("estimated_rows", "estimated_cost"):
            value = getattr(node, attr, None)
            if value is not None:
                record[attr.replace("estimated_", "est_")] = round(
                    float(value), 2
                )
        detail = _node_detail(node)
        if detail:
            record.update(detail)
        if self.profile is not None:
            node_profile = self.profile.get(node)
            if node_profile is not None:
                record["actual_rows"] = node_profile.rows_out
                record["opens"] = node_profile.opens
                record["total_ms"] = round(
                    node_profile.total_seconds * 1000.0, 3
                )
        children = [self._plan_dict(child) for child in node.children()]
        if children:
            record["children"] = children
        return record


def _node_detail(node):
    """Operator-specific facts for the structured plan export."""
    from repro.rdb.plan import (
        Aggregate,
        Filter,
        HashJoin,
        HashLeftJoin,
        IndexScan,
        Scan,
        Sort,
        TopN,
    )

    if isinstance(node, Scan):
        return {"table": node.table_name, "alias": node.alias}
    if isinstance(node, IndexScan):
        return {"table": node.table_name, "index": node.index_name,
                "op": node.op, "key": node.key_expr.to_sql()}
    if isinstance(node, Filter):
        return {"predicate": node.predicate.to_sql()}
    if isinstance(node, HashJoin):
        return {"keys": ["%s = %s" % (node.left_key.to_sql(),
                                      node.right_key.to_sql())]}
    if isinstance(node, HashLeftJoin):
        return {"outer": True, "keys": [
            "%s = %s" % (lk.to_sql(), rk.to_sql())
            for lk, rk in zip(node.left_keys, node.right_keys)
        ]}
    if isinstance(node, Aggregate):
        return {"alias": node.alias,
                "group_by": [name for name, _ in node.group_by]}
    if isinstance(node, (Sort, TopN)):
        detail = {"keys": [expr.to_sql() for expr, _ in node.keys]}
        if isinstance(node, TopN):
            detail["count"] = node.count
        return detail
    return {}


def _plan_line_node_id(line):
    """The ``#n`` plan node id an explain line starts with, or None."""
    stripped = line.strip()
    if not stripped.startswith("#"):
        return None
    token = stripped.split(None, 1)[0]
    try:
        return int(token[1:])
    except ValueError:
        return None
