"""Lightweight nested tracing spans for the rewrite pipeline.

The paper's argument is *measured* (Figures 2–3, §5): rewrite vs
functional evaluation, per-technique ablations, per-plan costs.  This
module provides the span machinery those measurements hang off of:

* :class:`Span` — a named, timed (``time.perf_counter``) unit of work with
  attributes, nested children and exception capture;
* :class:`Tracer` — manages the active-span stack and hands finished spans
  to pluggable sinks;
* sinks — :class:`InMemorySink` (keeps finished root trees),
  :class:`JsonLinesSink` (one JSON object per finished span),
  :class:`TextSink` (human-readable indented tree per root).

A disabled tracer hands out a shared no-op span, so instrumented code pays
one attribute check and nothing else — benchmarks guard this
(``benchmarks/test_obs_overhead.py``).

The tracer keeps a plain span stack and is not thread-safe; the engine it
instruments is single-threaded per query, matching the paper's setting.
"""

from __future__ import annotations

import itertools
import json
import time

_SPAN_IDS = itertools.count(1)


class Span:
    """One named, timed unit of work.

    Usable as a context manager (the normal way — via
    :meth:`Tracer.span`): on exit the span records its end time and any
    in-flight exception (type and message; the exception still
    propagates).
    """

    __slots__ = ("name", "attrs", "span_id", "parent", "children",
                 "start", "end", "status", "error", "_tracer")

    def __init__(self, name, attrs=None, parent=None, tracer=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = next(_SPAN_IDS)
        self.parent = parent
        self.children = []
        self.start = time.perf_counter()
        self.end = None
        self.status = "ok"
        self.error = None
        self._tracer = tracer
        if parent is not None:
            parent.children.append(self)

    # -- recording --------------------------------------------------------------

    def set_attr(self, **attrs):
        self.attrs.update(attrs)
        return self

    @property
    def duration(self):
        """Wall seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def finished(self):
        return self.end is not None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.status = "error"
            self.error = "%s: %s" % (exc_type.__name__, exc)
        self.end = time.perf_counter()
        if self._tracer is not None:
            self._tracer._finish(self)
        return False  # never swallow

    # -- introspection ----------------------------------------------------------

    def find(self, name):
        """First span named ``name`` in this subtree (depth-first), or
        None — convenient for tests and reports."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self):
        yield self
        for child in self.children:
            for span in child.iter_spans():
                yield span

    def to_dict(self):
        """Flat JSON-friendly record (children referenced by parent_id)."""
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent.span_id if self.parent else None,
            "name": self.name,
            "duration_ms": round(self.duration * 1000.0, 6),
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = {
                key: _jsonable(value) for key, value in self.attrs.items()
            }
        if self.error:
            record["error"] = self.error
        return record

    def __repr__(self):
        return "<Span %s %.3fms %s>" % (self.name, self.duration * 1000.0,
                                        self.status)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def render_tree(span, indent=0):
    """Human-readable indented rendering of a span tree."""
    pad = "  " * indent
    attrs = ""
    if span.attrs:
        attrs = " {%s}" % ", ".join(
            "%s=%s" % (key, span.attrs[key]) for key in sorted(span.attrs)
        )
    flag = "" if span.status == "ok" else " !%s" % span.error
    lines = ["%s%s  %.3f ms%s%s"
             % (pad, span.name, span.duration * 1000.0, attrs, flag)]
    for child in span.children:
        lines.extend(render_tree(child, indent + 1))
    return lines


class _NullSpan:
    """Shared no-op span returned by a disabled tracer."""

    __slots__ = ()
    name = "<disabled>"
    attrs = {}
    children = ()
    status = "ok"
    error = None
    duration = 0.0
    finished = True

    def set_attr(self, **attrs):
        return self

    def find(self, name):
        return None

    def iter_spans(self):
        return iter(())

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __bool__(self):
        # `if result.trace:` should skip the null span
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out nested spans and feeds finished ones to sinks."""

    def __init__(self, sinks=None, enabled=True):
        self.sinks = list(sinks) if sinks else []
        self.enabled = enabled
        self._stack = []

    # -- control ----------------------------------------------------------------

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def add_sink(self, sink):
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        self.sinks.remove(sink)

    # -- spans ------------------------------------------------------------------

    def span(self, name, **attrs):
        """Open a span nested under the currently active one."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(name, attrs=attrs, parent=parent, tracer=self)
        self._stack.append(span)
        return span

    def current(self):
        """The active span, or None."""
        return self._stack[-1] if self._stack else None

    def _finish(self, span):
        # Tolerate out-of-order exits (a caller holding a span past its
        # children): pop everything above the finishing span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        for sink in self.sinks:
            sink.emit(span)


class InMemorySink:
    """Collects finished spans; root spans (full trees) under ``roots``."""

    def __init__(self, max_roots=1000):
        self.max_roots = max_roots
        self.spans = []
        self.roots = []

    def emit(self, span):
        self.spans.append(span)
        if span.parent is None:
            self.roots.append(span)
            if len(self.roots) > self.max_roots:
                del self.roots[0]

    def clear(self):
        del self.spans[:]
        del self.roots[:]


class JsonLinesSink:
    """Writes one JSON object per finished span to a file or stream."""

    def __init__(self, path_or_stream):
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns = False
        else:
            self._stream = open(path_or_stream, "w", encoding="utf-8")
            self._owns = True

    def emit(self, span):
        self._stream.write(json.dumps(span.to_dict(), sort_keys=True))
        self._stream.write("\n")

    def close(self):
        self._stream.flush()
        if self._owns:
            self._stream.close()


class TextSink:
    """Writes a human-readable tree when each *root* span finishes."""

    def __init__(self, stream):
        self._stream = stream

    def emit(self, span):
        if span.parent is not None:
            return
        for line in render_tree(span):
            self._stream.write(line + "\n")


_GLOBAL_TRACER = Tracer()


def get_tracer():
    """The process-wide default tracer (enabled, no sinks)."""
    return _GLOBAL_TRACER


def set_tracer(tracer):
    """Replace the global tracer (tests); returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous
