"""Lightweight nested tracing spans with real trace context.

The paper's argument is *measured* (Figures 2–3, §5): rewrite vs
functional evaluation, per-technique ablations, per-plan costs.  This
module provides the span machinery those measurements hang off of:

* :class:`Span` — a named, timed (``time.perf_counter``) unit of work
  with attributes, nested children, exception capture and **trace
  identity**: every span carries a 128-bit ``trace_id`` shared by all
  spans of one request, its own 64-bit ``span_id`` and the
  ``parent_span_id`` linking it upward (both W3C-trace-context-shaped
  lowercase hex);
* :class:`Tracer` — manages per-thread active-span stacks and hands
  finished spans to pluggable sinks.  One tracer may be shared by many
  threads: the stack lives in a ``threading.local``, so concurrent
  requests never cross-link spans;
* :class:`TraceContext` — the propagation unit (``trace_id`` + parent
  ``span_id``).  The *ambient* context lives in a
  :mod:`contextvars` ``ContextVar``: opening a span publishes its
  context, closing it restores the previous one, and
  :func:`current_trace_context` reads it from anywhere (the structured
  log sink, the plan profiler, a worker handing work to another
  thread).  A root span opened while a context is ambient **joins**
  that trace instead of minting a new one — this is how the serve
  tier's admission thread, worker thread and stream drain stitch one
  request into one trace;
* W3C interop — :func:`parse_traceparent` / :func:`format_traceparent`
  convert to and from the ``traceparent`` header
  (``00-<trace_id>-<span_id>-<flags>``), so external callers can
  correlate across process boundaries;
* sinks — :class:`InMemorySink` (keeps finished root trees, now
  lock-protected for multi-threaded tracers),
  :class:`JsonLinesSink` (one JSON object per finished span),
  :class:`TextSink` (human-readable indented tree per root).

A disabled tracer hands out a shared no-op span, so instrumented code
pays one attribute check and nothing else — benchmarks guard this
(``benchmarks/test_obs_overhead.py``), and ``benchmarks/run_ops.py``
gates the always-on serve-tier tracing + flight-recorder overhead.
"""

from __future__ import annotations

import contextvars
import json
import random
import threading
import time

_INVALID_TRACE_ID = "0" * 32
_INVALID_SPAN_ID = "0" * 16
_HEX_DIGITS = set("0123456789abcdef")


def new_trace_id():
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return "%032x" % random.getrandbits(128)


def new_span_id():
    """A fresh 64-bit span id as 16 lowercase hex characters."""
    return "%016x" % random.getrandbits(64)


class TraceContext:
    """The unit of trace propagation: a trace id plus the span id of
    the propagating (parent) span.

    ``span_id`` may be None for a context minted at an ingress with no
    upstream caller — spans opened under it join ``trace_id`` as roots
    (no parent link).  ``sampled`` mirrors the W3C ``sampled`` flag and
    is carried through :func:`format_traceparent`.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id, span_id=None, sampled=True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_traceparent(self):
        """This context as a W3C ``traceparent`` header value."""
        return "00-%s-%s-%s" % (
            self.trace_id,
            self.span_id or _INVALID_SPAN_ID,
            "01" if self.sampled else "00",
        )

    def __eq__(self, other):
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.sampled == other.sampled)

    def __hash__(self):
        return hash((self.trace_id, self.span_id, self.sampled))

    def __repr__(self):
        return "TraceContext(%s, %s)" % (self.trace_id, self.span_id)


#: The ambient trace context of the calling execution context.  Spans
#: publish themselves here while open; ingress points (the serve tier's
#: ``submit``) activate a remote caller's context around request
#: handling so every span joins the caller's trace.
_TRACE_CONTEXT = contextvars.ContextVar("repro.trace_context",
                                        default=None)


def current_trace_context():
    """The ambient :class:`TraceContext`, or None outside any trace."""
    return _TRACE_CONTEXT.get()


def current_trace_id():
    """The ambient trace id, or None outside any trace."""
    context = _TRACE_CONTEXT.get()
    return context.trace_id if context is not None else None


def activate_trace_context(context):
    """Make ``context`` ambient; returns a token for
    :func:`deactivate_trace_context`.  Prefer :func:`use_trace_context`
    (the context-manager form) where scoping allows."""
    return _TRACE_CONTEXT.set(context)


def deactivate_trace_context(token):
    """Restore the ambient context saved by
    :func:`activate_trace_context`."""
    _TRACE_CONTEXT.reset(token)


class use_trace_context:
    """``with use_trace_context(ctx):`` — scoped ambient activation.

    ``ctx`` may be None (explicitly trace-free scope), a
    :class:`TraceContext`, or a :class:`Span` (its context is used).
    """

    __slots__ = ("context", "_token")

    def __init__(self, context):
        if isinstance(context, Span):
            context = context.context()
        self.context = context
        self._token = None

    def __enter__(self):
        self._token = _TRACE_CONTEXT.set(self.context)
        return self.context

    def __exit__(self, exc_type, exc, tb):
        _TRACE_CONTEXT.reset(self._token)
        return False


def _is_hex(text):
    return bool(text) and all(char in _HEX_DIGITS for char in text)


def parse_traceparent(header):
    """Parse a W3C ``traceparent`` header into a :class:`TraceContext`.

    Returns None for anything malformed (wrong field widths, non-hex,
    all-zero trace/span id, version ``ff``) — a bad header must never
    break a request, only decline correlation.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) \
            or trace_id == _INVALID_TRACE_ID:
        return None
    if len(span_id) != 16 or not _is_hex(span_id) \
            or span_id == _INVALID_SPAN_ID:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return TraceContext(trace_id, span_id,
                        sampled=bool(int(flags, 16) & 0x01))


def format_traceparent(span_or_context):
    """A W3C ``traceparent`` header value for a span or context."""
    if isinstance(span_or_context, Span):
        span_or_context = span_or_context.context()
    return span_or_context.to_traceparent()


class Span:
    """One named, timed unit of work inside a trace.

    Usable as a context manager (the normal way — via
    :meth:`Tracer.span`): on exit the span records its end time and any
    in-flight exception (type and message; the exception still
    propagates).
    """

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_span_id",
                 "parent", "children", "start", "end", "status", "error",
                 "_tracer", "_saved_context")

    def __init__(self, name, attrs=None, parent=None, tracer=None,
                 context=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = new_span_id()
        self.parent = parent
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        elif context is not None:
            self.trace_id = context.trace_id
            self.parent_span_id = context.span_id
        else:
            self.trace_id = new_trace_id()
            self.parent_span_id = None
        self.children = []
        self.start = time.perf_counter()
        self.end = None
        self.status = "ok"
        self.error = None
        self._tracer = tracer
        self._saved_context = None
        if parent is not None:
            parent.children.append(self)

    # -- recording --------------------------------------------------------------

    def set_attr(self, **attrs):
        self.attrs.update(attrs)
        return self

    def context(self):
        """This span's :class:`TraceContext` (for propagation)."""
        return TraceContext(self.trace_id, self.span_id)

    def traceparent(self):
        """This span as a W3C ``traceparent`` header value."""
        return self.context().to_traceparent()

    @property
    def duration(self):
        """Wall seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def finished(self):
        return self.end is not None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.status = "error"
            self.error = "%s: %s" % (exc_type.__name__, exc)
        self.end = time.perf_counter()
        if self._tracer is not None:
            self._tracer._finish(self)
        return False  # never swallow

    # -- introspection ----------------------------------------------------------

    def find(self, name):
        """First span named ``name`` in this subtree (depth-first), or
        None — convenient for tests and reports."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self):
        yield self
        for child in self.children:
            for span in child.iter_spans():
                yield span

    def to_dict(self):
        """Flat JSON-friendly record (children referenced by parent_id)."""
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_span_id,
            "name": self.name,
            "duration_ms": round(self.duration * 1000.0, 6),
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = {
                key: _jsonable(value) for key, value in self.attrs.items()
            }
        if self.error:
            record["error"] = self.error
        return record

    def __repr__(self):
        return "<Span %s %.3fms %s>" % (self.name, self.duration * 1000.0,
                                        self.status)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def render_tree(span, indent=0):
    """Human-readable indented rendering of a span tree."""
    pad = "  " * indent
    attrs = ""
    if span.attrs:
        attrs = " {%s}" % ", ".join(
            "%s=%s" % (key, span.attrs[key]) for key in sorted(span.attrs)
        )
    flag = "" if span.status == "ok" else " !%s" % span.error
    lines = ["%s%s  %.3f ms%s%s"
             % (pad, span.name, span.duration * 1000.0, attrs, flag)]
    for child in span.children:
        lines.extend(render_tree(child, indent + 1))
    return lines


class _NullSpan:
    """Shared no-op span returned by a disabled tracer."""

    __slots__ = ()
    name = "<disabled>"
    attrs = {}
    children = ()
    status = "ok"
    error = None
    duration = 0.0
    finished = True
    trace_id = None
    span_id = None
    parent_span_id = None

    def set_attr(self, **attrs):
        return self

    def context(self):
        return None

    def find(self, name):
        return None

    def iter_spans(self):
        return iter(())

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __bool__(self):
        # `if result.trace:` should skip the null span
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out nested spans and feeds finished ones to sinks.

    The active-span stack is **per-thread** (``threading.local``): one
    tracer may serve many concurrent requests and each thread sees only
    its own nesting.  Trace identity propagates *between* threads via
    the ambient :class:`TraceContext` (see :func:`use_trace_context`),
    not via the stack.
    """

    def __init__(self, sinks=None, enabled=True):
        self.sinks = list(sinks) if sinks else []
        self.enabled = enabled
        self._local = threading.local()

    # -- control ----------------------------------------------------------------

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def add_sink(self, sink):
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        self.sinks.remove(sink)

    # -- spans ------------------------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, **attrs):
        """Open a span nested under the currently active one.

        A root span (nothing active on this thread's stack) adopts the
        ambient :class:`TraceContext` when one is set — joining the
        propagated trace with a parent link — and mints a fresh trace id
        otherwise.  The new span's context becomes ambient until it
        finishes.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        ambient = _TRACE_CONTEXT.get()
        context = ambient if parent is None else None
        span = Span(name, attrs=attrs, parent=parent, tracer=self,
                    context=context)
        span._saved_context = ambient
        stack.append(span)
        _TRACE_CONTEXT.set(span.context())
        return span

    def current(self):
        """The active span on this thread, or None."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _finish(self, span):
        # Tolerate out-of-order exits (a caller holding a span past its
        # children): pop everything above the finishing span.
        stack = self._stack()
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        _TRACE_CONTEXT.set(span._saved_context)
        for sink in self.sinks:
            sink.emit(span)


class InMemorySink:
    """Collects finished spans; root spans (full trees) under ``roots``.

    Lock-protected: a tracer shared across threads emits concurrently,
    and readers (``/debug`` endpoints, tests) take consistent copies.
    """

    def __init__(self, max_roots=1000):
        self.max_roots = max_roots
        self.spans = []
        self.roots = []
        self._lock = threading.Lock()

    def emit(self, span):
        with self._lock:
            self.spans.append(span)
            if span.parent is None:
                self.roots.append(span)
                if len(self.roots) > self.max_roots:
                    del self.roots[0]

    def roots_for(self, trace_id):
        """Finished root spans belonging to ``trace_id`` (a multi-thread
        request may produce several roots linked by parent ids)."""
        with self._lock:
            return [root for root in self.roots
                    if root.trace_id == trace_id]

    def clear(self):
        with self._lock:
            del self.spans[:]
            del self.roots[:]


class JsonLinesSink:
    """Writes one JSON object per finished span to a file or stream."""

    def __init__(self, path_or_stream):
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns = False
        else:
            self._stream = open(path_or_stream, "w", encoding="utf-8")
            self._owns = True

    def emit(self, span):
        self._stream.write(json.dumps(span.to_dict(), sort_keys=True))
        self._stream.write("\n")

    def close(self):
        self._stream.flush()
        if self._owns:
            self._stream.close()


class TextSink:
    """Writes a human-readable tree when each *root* span finishes."""

    def __init__(self, stream):
        self._stream = stream

    def emit(self, span):
        if span.parent is not None:
            return
        for line in render_tree(span):
            self._stream.write(line + "\n")


_GLOBAL_TRACER = Tracer()


def get_tracer():
    """The process-wide default tracer (enabled, no sinks)."""
    return _GLOBAL_TRACER


def set_tracer(tracer):
    """Replace the global tracer (tests); returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous
