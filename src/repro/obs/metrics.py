"""Named counters and histograms for the XSLT→XQuery→SQL pipeline.

A :class:`MetricsRegistry` hands out :class:`Counter` and
:class:`Histogram` instances keyed by (name, labels).  The front door
counts rewrite attempts and fallbacks (keyed by failure phase and reason
category — the silent-fallback fix), the compile stages record their
timings, and ``benchmarks/run_figures.py`` emits its measurements through
a registry into a ``BENCH_obs.json`` artifact.

Histograms keep raw samples (bounded) and report p50/p95/max with
nearest-rank percentiles — exactly what the paper-style figures need.
"""

from __future__ import annotations

import threading
import time


def _label_key(labels):
    return tuple(sorted(labels.items()))


def _render_key(name, labels):
    if not labels:
        return name
    return "%s{%s}" % (
        name, ",".join("%s=%s" % (k, v) for k, v in _label_key(labels))
    )


class Counter:
    """A monotonically increasing named counter.

    Increments are lock-protected: the serving layer
    (:mod:`repro.serve`) bumps shared counters from worker threads, and
    an unguarded read-modify-write would drop counts.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name, labels=None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self.value += amount
            return self.value

    def key(self):
        return _render_key(self.name, self.labels)

    def __repr__(self):
        return "Counter(%s=%d)" % (self.key(), self.value)


class Gauge:
    """A named value that can go up and down (queue depth, saturation).

    Set/inc/dec are lock-protected for the same reason counters are:
    the serving layer updates shared gauges from worker threads.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name, labels=None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self):
        with self._lock:
            return self._value

    def set(self, value):
        with self._lock:
            self._value = float(value)
            return self._value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount
            return self._value

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount
            return self._value

    def key(self):
        return _render_key(self.name, self.labels)

    def __repr__(self):
        return "Gauge(%s=%s)" % (self.key(), self.value)


class Histogram:
    """Raw-sample histogram reporting count/sum/min/max and percentiles.

    Samples are capped at ``max_samples``; once full, every second
    retained sample is dropped and the effective sampling rate halves —
    deterministic, and fine for percentile estimates at our scales.
    """

    __slots__ = ("name", "labels", "max_samples", "count", "sum",
                 "_values", "_keep_every", "_skip", "_lock")

    def __init__(self, name, labels=None, max_samples=8192):
        self.name = name
        self.labels = dict(labels or {})
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self._values = []
        self._keep_every = 1
        self._skip = 0
        self._lock = threading.Lock()

    def record(self, value):
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self._skip += 1
            if self._skip >= self._keep_every:
                self._skip = 0
                self._values.append(value)
                if len(self._values) >= self.max_samples:
                    self._values = self._values[::2]
                    self._keep_every *= 2
        return value

    def time(self):
        """Context manager recording elapsed seconds on exit."""
        return _HistogramTimer(self)

    # -- summaries --------------------------------------------------------------

    def _read(self):
        """Consistent (count, sum, retained values) under the lock.

        Readers must never touch ``self._values`` directly: ``record``
        replaces the list wholesale when it downsamples, and an unlocked
        reader could observe a half-built state mid-swap.
        """
        with self._lock:
            return self.count, self.sum, list(self._values)

    @property
    def min(self):
        _, _, values = self._read()
        return min(values) if values else None

    @property
    def max(self):
        _, _, values = self._read()
        return max(values) if values else None

    @staticmethod
    def _nearest_rank(ordered, pct):
        rank = max(
            0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1)
        )
        return ordered[rank]

    def percentile(self, pct):
        """Nearest-rank percentile over the retained samples."""
        _, _, values = self._read()
        if not values:
            return None
        return self._nearest_rank(sorted(values), pct)

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p95(self):
        return self.percentile(95)

    def summary(self):
        count, total, values = self._read()
        ordered = sorted(values)
        return {
            "count": count,
            "sum": total,
            "min": ordered[0] if ordered else None,
            "max": ordered[-1] if ordered else None,
            "p50": self._nearest_rank(ordered, 50) if ordered else None,
            "p95": self._nearest_rank(ordered, 95) if ordered else None,
        }

    def buckets(self, bounds):
        """Cumulative counts per upper bound, Prometheus-style.

        Returns ``(items, total_sum, total_count)`` where ``items`` is a
        list of ``(upper_bound, cumulative_count)`` ending with
        ``(float("inf"), total_count)``.  Counts are scaled from the
        retained samples up to the true observation count, so a
        downsampled histogram still reports a distribution whose
        ``+Inf`` bucket equals ``_count``.
        """
        count, total, values = self._read()
        ordered = sorted(values)
        items = []
        scale = (count / float(len(ordered))) if ordered else 0.0
        index = 0
        for bound in sorted(bounds):
            while index < len(ordered) and ordered[index] <= bound:
                index += 1
            items.append((bound, int(round(index * scale))))
        items.append((float("inf"), count))
        # scaling rounds independently per bound; clamp to monotone
        for position in range(1, len(items)):
            if items[position][1] < items[position - 1][1]:
                items[position] = (items[position][0],
                                   items[position - 1][1])
        return items, total, count

    def key(self):
        return _render_key(self.name, self.labels)

    def __repr__(self):
        return "Histogram(%s n=%d)" % (self.key(), self.count)


class _HistogramTimer:
    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = None
        self.elapsed = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self._start
        self._histogram.record(self.elapsed)
        return False


class MetricsRegistry:
    """Keyed store of counters and histograms.

    Get-or-create is lock-protected so two worker threads asking for the
    same key always receive the same instrument (an unguarded race would
    hand out two counters and lose one's increments).
    """

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._lock = threading.Lock()

    def counter(self, name, **labels):
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.get(key)
                if counter is None:
                    counter = self._counters[key] = Counter(name, labels)
        return counter

    def gauge(self, name, **labels):
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = self._gauges[key] = Gauge(name, labels)
        return gauge

    def histogram(self, name, **labels):
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = Histogram(name, labels)
        return histogram

    def counters(self, name=None):
        """All counters, optionally filtered by name."""
        with self._lock:
            values = list(self._counters.values())
        return [
            counter for counter in values
            if name is None or counter.name == name
        ]

    def gauges(self, name=None):
        """All gauges, optionally filtered by name."""
        with self._lock:
            values = list(self._gauges.values())
        return [
            gauge for gauge in values
            if name is None or gauge.name == name
        ]

    def histograms(self, name=None):
        """All histograms, optionally filtered by name."""
        with self._lock:
            values = list(self._histograms.values())
        return [
            histogram for histogram in values
            if name is None or histogram.name == name
        ]

    def counter_total(self, name):
        """Sum of one counter across all label sets."""
        return sum(counter.value for counter in self.counters(name))

    def snapshot(self):
        """JSON-friendly dump of everything recorded so far.

        Taken against a locked copy of the instrument maps, so worker
        threads registering or recording new instruments mid-snapshot
        (the serve tier does both) never mutate the dicts under the
        iteration.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        snapshot = {
            "counters": {
                counter.key(): counter.value for counter in counters
            },
            "histograms": {
                histogram.key(): histogram.summary()
                for histogram in histograms
            },
        }
        if gauges:
            snapshot["gauges"] = {
                gauge.key(): gauge.value for gauge in gauges
            }
        return snapshot

    def reset(self):
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(snapshots):
    """Aggregate registry snapshots from several processes into one.

    The cluster tier's workers each keep a private registry (instrument
    objects cannot be shared across processes); ``ClusterService.stats``
    merges their :meth:`MetricsRegistry.snapshot` dicts through this.
    Counters and gauges sum per key.  Histogram summaries combine
    ``count``/``sum`` additively and take the extreme ``min``/``max`` —
    percentiles are *dropped*: p50/p95 of separate sample sets cannot be
    merged exactly, and a wrong quantile is worse than none.
    """
    counters = {}
    gauges = {}
    histograms = {}
    for snapshot in snapshots:
        for key, value in (snapshot.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in (snapshot.get("gauges") or {}).items():
            gauges[key] = gauges.get(key, 0.0) + value
        for key, summary in (snapshot.get("histograms") or {}).items():
            merged = histograms.get(key)
            if merged is None:
                merged = histograms[key] = {
                    "count": 0, "sum": 0.0, "min": None, "max": None,
                }
            merged["count"] += summary.get("count") or 0
            merged["sum"] += summary.get("sum") or 0.0
            for field, pick in (("min", min), ("max", max)):
                value = summary.get(field)
                if value is None:
                    continue
                merged[field] = value if merged[field] is None \
                    else pick(merged[field], value)
    merged_snapshot = {"counters": counters, "histograms": histograms}
    if gauges:
        merged_snapshot["gauges"] = gauges
    return merged_snapshot


_GLOBAL_METRICS = MetricsRegistry()


def global_metrics():
    """The process-wide default registry."""
    return _GLOBAL_METRICS


def set_metrics(registry):
    """Replace the global registry (tests); returns the previous one."""
    global _GLOBAL_METRICS
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = registry
    return previous
