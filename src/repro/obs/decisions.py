"""EXPLAIN REWRITE: the rewrite-decision provenance ledger.

The paper's contribution is a *chain of decisions* — which template to
inline (§3.3), FOR vs LET per model-group cardinality (§3.4), which
backward parent-axis tests to drop (§3.5), when a subtree compacts to
``string-join(//text())`` (§3.6), which templates prune away entirely
(§3.7) — yet the compiled SQL shows none of them.  A
:class:`DecisionLedger` records every one of those decisions as a
structured :class:`Decision` carrying **source provenance**: the XSLT
template (match pattern, mode, stylesheet source line) it came from, the
XQuery fragment it produced, and — once the SQL merge has run — the id of
the SQL plan node the fragment landed in.

The ledger is threaded through the whole pipeline by
:class:`repro.core.pipeline.XsltRewriter` and surfaces three ways:

* ``TransformResult.explain(rewrite=True)`` renders it as a tree
  interleaved with the executed plan;
* ``XsltRewriter.compile(stylesheet, view_query, explain=True)`` returns
  it without executing anything;
* :meth:`DecisionLedger.to_json` exports it losslessly
  (:meth:`DecisionLedger.from_json` round-trips), so ledgers can be
  diffed across runs with :func:`diff_ledgers`.
"""

from __future__ import annotations

import json

# -- decision kinds (the paper's techniques) -----------------------------------

TEMPLATE_INSTANTIATED = "template-instantiated"  # §4.3: fired on the sample
TEMPLATE_PRUNED = "template-pruned"              # §3.7: never fires
TEMPLATE_INLINED = "template-inlined"            # §3.3: body expanded in place
TEMPLATE_DISPATCHED = "template-dispatched"      # §4.4: stays a function
CARDINALITY = "cardinality"                      # §3.4: FOR vs LET
BACKWARD_STEP = "backward-step"                  # §3.5: parent tests removed
BUILTIN_COMPACTION = "builtin-compaction"        # §3.6: string-join form

# cost-based plan optimisation (repro.rdb.planner, not a paper section)
ACCESS_PATH = "access-path"        # Scan vs IndexScan per filtered table
JOIN_STRATEGY = "join-strategy"    # nested loop vs hash join
TOPN_FUSION = "topn-fusion"        # Limit(Sort) fused into bounded-heap TopN
DECORRELATE = "decorrelate"        # correlated subquery -> join + group-agg
STRUCTURAL_PATH = "structural-path"  # tree-walk join vs label-range StructuralJoin

# adaptive feedback after execution (repro.obs.feedback)
PLAN_QERROR = "plan-qerror"        # observed q-error distrusted the plan
AUTO_ANALYZE = "auto-analyze"      # feedback ANALYZEd an unanalyzed table
PLAN_RECOST = "plan-recost"        # serve tier asked to evict/re-cost

#: the post-execution ledger stage the feedback loop records under
FEEDBACK_STAGE = "plan-feedback"

KINDS = (
    TEMPLATE_INSTANTIATED,
    TEMPLATE_PRUNED,
    TEMPLATE_INLINED,
    TEMPLATE_DISPATCHED,
    CARDINALITY,
    BACKWARD_STEP,
    BUILTIN_COMPACTION,
    ACCESS_PATH,
    JOIN_STRATEGY,
    TOPN_FUSION,
    DECORRELATE,
    STRUCTURAL_PATH,
    PLAN_QERROR,
    AUTO_ANALYZE,
    PLAN_RECOST,
)

_SECTIONS = {
    TEMPLATE_INSTANTIATED: "4.3",
    TEMPLATE_PRUNED: "3.7",
    TEMPLATE_INLINED: "3.3",
    TEMPLATE_DISPATCHED: "4.4",
    CARDINALITY: "3.4",
    BACKWARD_STEP: "3.5",
    BUILTIN_COMPACTION: "3.6",
}

_FRAGMENT_LIMIT = 160  # rendered XQuery provenance is a one-line excerpt


def xslt_provenance(template):
    """The XSLT-side provenance dict for one compiled template."""
    if template is None:
        return None
    return {
        "template": template.label(),
        "match": template.match.source if template.match is not None else None,
        "mode": template.mode,
        "name": template.name,
        "line": template.source_line,
    }


def _fragment_text(node):
    """One-line, length-capped rendering of a generated XQuery node."""
    from repro.xquery import xquery_to_text

    text = " ".join(xquery_to_text(node).split())
    if len(text) > _FRAGMENT_LIMIT:
        text = text[:_FRAGMENT_LIMIT - 3] + "..."
    return text


class Provenance:
    """The source chain of one decision: XSLT → XQuery → SQL plan node.

    The XQuery side is kept as the generated AST node and serialized
    lazily (and cached) — recording stays cheap during compilation, the
    text is only produced when the ledger is rendered or exported.
    """

    __slots__ = ("xslt", "xquery_node", "_xquery_text", "sql_node_id",
                 "sql_node", "_sql_node_name")

    def __init__(self, xslt=None, xquery_node=None, xquery_text=None,
                 sql_node_id=None, sql_node=None, sql_node_name=None):
        self.xslt = xslt                  # dict from xslt_provenance(), or None
        self.xquery_node = xquery_node    # generated XQuery AST node, or None
        self._xquery_text = xquery_text   # pre-rendered text (from_dict path)
        self.sql_node_id = sql_node_id    # plan node id after the SQL merge
        self.sql_node = sql_node          # the plan node itself (not exported)
        self._sql_node_name = sql_node_name  # class name (from_dict path)

    @property
    def xquery(self):
        if self._xquery_text is None and self.xquery_node is not None:
            self._xquery_text = _fragment_text(self.xquery_node)
        return self._xquery_text

    @property
    def sql_node_name(self):
        if self.sql_node is not None:
            return type(self.sql_node).__name__
        return self._sql_node_name

    def sql_label(self):
        """Human-readable plan-node reference, e.g. ``#3 IndexScan``."""
        if self.sql_node_id is None:
            return None
        label = "#%d" % self.sql_node_id
        if self.sql_node_name is not None:
            label += " %s" % self.sql_node_name
        return label

    def to_dict(self):
        record = {}
        if self.xslt is not None:
            record["xslt"] = dict(self.xslt)
        if self.xquery is not None:
            record["xquery"] = self.xquery
        if self.sql_node_id is not None:
            record["sql_node_id"] = self.sql_node_id
            if self.sql_node_name is not None:
                record["sql_node"] = self.sql_node_name
        return record

    @classmethod
    def from_dict(cls, record):
        return cls(
            xslt=record.get("xslt"),
            xquery_text=record.get("xquery"),
            sql_node_id=record.get("sql_node_id"),
            sql_node_name=record.get("sql_node"),
        )


class Decision:
    """One recorded rewrite decision.

    ``kind``    one of :data:`KINDS`;
    ``stage``   the pipeline stage that made it (``partial-eval`` /
                ``xquery-gen`` / ``sql-merge``);
    ``section`` the paper section the technique comes from;
    ``subject`` what was decided about (template label, element name);
    ``action``  what was chosen (``inline``, ``FOR``, ``LET``,
                ``removed``, ``prune``, ...);
    ``reason``  why that choice was legal/required;
    ``detail``  the evidence facts (occurrence counts, removed tests,
                sample-document observations) as a flat dict;
    ``provenance`` the XSLT → XQuery → SQL source chain.
    """

    __slots__ = ("seq", "kind", "stage", "section", "subject", "action",
                 "reason", "detail", "provenance")

    def __init__(self, seq, kind, stage, subject, action, reason,
                 detail=None, provenance=None, section=None):
        self.seq = seq
        self.kind = kind
        self.stage = stage
        self.section = section or _SECTIONS.get(kind)
        self.subject = subject
        self.action = action
        self.reason = reason
        self.detail = dict(detail) if detail else {}
        self.provenance = provenance or Provenance()

    def key(self):
        """Stable identity for cross-run diffing (no timings, no ids)."""
        return (self.kind, self.subject, self.action)

    def render(self):
        """One- or multi-line human rendering."""
        head = "[%s] %s -> %s" % (self.kind, self.subject, self.action)
        if self.section:
            head += "  (§%s)" % self.section
        lines = [head]
        if self.reason:
            lines.append("  why: %s" % self.reason)
        if self.detail:
            lines.append("  facts: %s" % ", ".join(
                "%s=%s" % (key, self.detail[key])
                for key in sorted(self.detail)
            ))
        prov = self.provenance
        if prov.xslt is not None:
            source = prov.xslt.get("template")
            line = prov.xslt.get("line")
            if line is not None:
                source += " @ line %s" % line
            lines.append("  xslt: %s" % source)
        if prov.xquery is not None:
            lines.append("  xquery: %s" % prov.xquery)
        if prov.sql_node_id is not None:
            lines.append("  sql: plan node %s" % prov.sql_label())
        return lines

    def to_dict(self):
        record = {
            "seq": self.seq,
            "kind": self.kind,
            "stage": self.stage,
            "section": self.section,
            "subject": self.subject,
            "action": self.action,
            "reason": self.reason,
        }
        if self.detail:
            record["detail"] = {
                key: _jsonable(value) for key, value in self.detail.items()
            }
        provenance = self.provenance.to_dict()
        if provenance:
            record["provenance"] = provenance
        return record

    @classmethod
    def from_dict(cls, record):
        return cls(
            seq=record["seq"],
            kind=record["kind"],
            stage=record["stage"],
            section=record.get("section"),
            subject=record["subject"],
            action=record["action"],
            reason=record.get("reason"),
            detail=record.get("detail"),
            provenance=Provenance.from_dict(record.get("provenance") or {}),
        )

    def __repr__(self):
        return "<Decision %s %s -> %s>" % (self.kind, self.subject,
                                           self.action)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)


class DecisionLedger:
    """Ordered record of every rewrite decision of one compilation."""

    # the pipeline stages, in rendering order
    STAGES = ("partial-eval", "xquery-gen", "sql-merge", "plan-optimize",
              FEEDBACK_STAGE)

    def __init__(self):
        self.decisions = []
        self._sql_bindings = {}   # XQuery variable name -> plan node

    # -- recording --------------------------------------------------------------

    def record(self, kind, stage, subject, action, reason=None, detail=None,
               template=None, xquery_node=None, section=None):
        """Append one decision; returns it (the caller may refine it)."""
        decision = Decision(
            seq=len(self.decisions),
            kind=kind,
            stage=stage,
            section=section,
            subject=subject,
            action=action,
            reason=reason,
            detail=detail,
            provenance=Provenance(
                xslt=xslt_provenance(template), xquery_node=xquery_node
            ),
        )
        self.decisions.append(decision)
        return decision

    def bind_sql_variable(self, variable, subquery):
        """SQL merge: the FLWOR variable ``variable`` became ``subquery``
        (a ScalarSubquery expression, or a bare plan node).  Binding the
        *expression* keeps the link valid across plan optimisation — the
        optimizer rebuilds plans but swaps them into the same expression
        object.  Resolved into decision provenance by
        :meth:`attach_plan`."""
        self._sql_bindings[variable] = subquery

    def rebind_sql_expression(self, expr, node):
        """Re-point every variable bound to ``expr`` at ``node``.  The
        decorrelation pass replaces a bound ScalarSubquery expression
        with a plan node living inside the main tree; rebinding keeps
        per-variable provenance and feedback attribution following the
        surviving node.  Returns the rebound variable names."""
        rebound = [
            variable
            for variable, binding in self._sql_bindings.items()
            if binding is expr
        ]
        for variable in rebound:
            self._sql_bindings[variable] = node
        return rebound

    def _bound_plan(self, variable):
        binding = self._sql_bindings.get(variable)
        inner = getattr(binding, "query", None)  # ScalarSubquery expr
        if inner is not None:
            return inner.plan
        return binding  # bare plan node or None

    def bound_plans(self):
        """The subquery plan roots the SQL merge bound, in first-bound
        order — the ``extra_plans`` the feedback loop judges alongside
        the main plan."""
        plans = []
        for variable in self._sql_bindings:
            plan_node = self._bound_plan(variable)
            if plan_node is not None and plan_node not in plans:
                plans.append(plan_node)
        return plans

    def attach_plan(self, query):
        """Complete provenance after a successful SQL merge: assign plan
        node ids (main plan first, then the subquery plans the merge
        bound), then stamp each decision with the node its fragment landed
        in — the bound subquery root when one exists, the plan root
        otherwise.  Idempotent: calling again (e.g. with the *optimized*
        query before execution) re-resolves every decision against the
        new plan."""
        from repro.rdb.plan import assign_plan_node_ids

        ids = assign_plan_node_ids(query, extra_plans=self.bound_plans())
        root = getattr(query, "plan", None)
        for decision in self.decisions:
            if decision.kind == TEMPLATE_PRUNED:
                continue  # pruned templates produce no plan nodes
            preset = decision.provenance.sql_node
            if preset is not None and id(preset) in ids:
                # the planner pinned this decision to the node it built
                # (access-path / join-strategy choices); keep that anchor
                decision.provenance.sql_node_id = ids[id(preset)]
                continue
            variable = decision.detail.get("variable")
            node = self._bound_plan(variable) if variable else None
            if node is None:
                node = root
            decision.provenance.sql_node = node
            decision.provenance.sql_node_id = getattr(
                node, "plan_node_id", None
            )

    # -- queries ----------------------------------------------------------------

    def decisions_of(self, kind=None, stage=None):
        return [
            decision for decision in self.decisions
            if (kind is None or decision.kind == kind)
            and (stage is None or decision.stage == stage)
        ]

    def kinds(self):
        """The distinct decision kinds recorded, in first-seen order."""
        seen = []
        for decision in self.decisions:
            if decision.kind not in seen:
                seen.append(decision.kind)
        return seen

    def counts(self):
        """``{kind: count}`` over all decisions."""
        out = {}
        for decision in self.decisions:
            out[decision.kind] = out.get(decision.kind, 0) + 1
        return out

    def __len__(self):
        return len(self.decisions)

    def __iter__(self):
        return iter(self.decisions)

    # -- rendering --------------------------------------------------------------

    def render(self):
        """Human-readable tree, grouped by pipeline stage."""
        if not self.decisions:
            return ["(no rewrite decisions recorded)"]
        lines = []
        stages = list(self.STAGES)
        for decision in self.decisions:  # tolerate unknown stages
            if decision.stage not in stages:
                stages.append(decision.stage)
        for stage in stages:
            of_stage = self.decisions_of(stage=stage)
            if not of_stage:
                continue
            lines.append("%s (%d decisions)" % (stage, len(of_stage)))
            for decision in of_stage:
                rendered = decision.render()
                lines.append("  " + rendered[0])
                lines.extend("  " + line for line in rendered[1:])
        return lines

    # -- export / round-trip ------------------------------------------------------

    def to_dict(self):
        return {
            "version": 1,
            "counts": self.counts(),
            "decisions": [decision.to_dict() for decision in self.decisions],
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, record):
        ledger = cls()
        for entry in record.get("decisions", ()):
            ledger.decisions.append(Decision.from_dict(entry))
        return ledger

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))


def diff_ledgers(old, new):
    """Compare two ledgers (or their dict exports) by decision identity.

    Returns ``{"added": [...], "removed": [...], "changed": [...]}`` where
    added/removed hold decision keys present in only one ledger and
    changed holds keys whose reason/detail differ — the cross-run "did a
    stylesheet or schema change alter what the compiler decided" view.
    """
    if isinstance(old, dict):
        old = DecisionLedger.from_dict(old)
    if isinstance(new, dict):
        new = DecisionLedger.from_dict(new)
    old_map = {decision.key(): decision for decision in old}
    new_map = {decision.key(): decision for decision in new}
    added = [key for key in new_map if key not in old_map]
    removed = [key for key in old_map if key not in new_map]
    changed = [
        key
        for key, decision in new_map.items()
        if key in old_map
        and (old_map[key].reason != decision.reason
             or old_map[key].detail != decision.detail)
    ]
    return {
        "added": sorted(added),
        "removed": sorted(removed),
        "changed": sorted(changed),
    }
