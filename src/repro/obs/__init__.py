"""Observability for the XSLT→XQuery→SQL pipeline.

Three facilities, threaded through every layer (see README
"Observability" and DESIGN §spans):

* **tracing** (:mod:`repro.obs.trace`) — nested spans over the compile
  stages (partial evaluation, XQuery generation, SQL/XML merge), plan
  execution and the functional path, with pluggable sinks;
* **metrics** (:mod:`repro.obs.metrics`) — counters (rewrite attempts,
  categorized fallbacks) and histograms (stage / execution timings);
* **EXPLAIN** — ``repro.rdb.plan.explain(query, analyze=True, db=db)``
  renders the plan tree annotated with per-node row counts and self/total
  times;
* **EXPLAIN REWRITE** (:mod:`repro.obs.decisions`) — a
  :class:`DecisionLedger` recording every rewrite decision (§3.3–3.7,
  §4.3/4.4) with XSLT → XQuery → SQL-plan-node provenance, surfaced by
  ``TransformResult.explain(rewrite=True)`` and
  ``XsltRewriter.compile(..., explain=True)``;
* **exporters** (:mod:`repro.obs.export`) — Prometheus text format and
  JSON Lines for metrics and span trees.

``repro.core.transform.TransformResult.report()`` assembles the first
three for one ``xml_transform`` call.
"""

from repro.obs.decisions import (
    Decision,
    DecisionLedger,
    Provenance,
    diff_ledgers,
)
from repro.obs.export import (
    metrics_to_jsonl,
    prometheus_text,
    spans_to_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    global_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    InMemorySink,
    JsonLinesSink,
    Span,
    TextSink,
    Tracer,
    get_tracer,
    render_tree,
    set_tracer,
)

__all__ = [
    "Counter",
    "Decision",
    "DecisionLedger",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "Provenance",
    "Span",
    "TextSink",
    "Tracer",
    "diff_ledgers",
    "get_tracer",
    "global_metrics",
    "metrics_to_jsonl",
    "prometheus_text",
    "render_tree",
    "set_metrics",
    "set_tracer",
    "spans_to_jsonl",
    "write_prometheus",
]
