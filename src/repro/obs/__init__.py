"""Observability for the XSLT→XQuery→SQL pipeline.

Three facilities, threaded through every layer (see README
"Observability" and DESIGN §spans):

* **tracing** (:mod:`repro.obs.trace`) — nested spans over the compile
  stages (partial evaluation, XQuery generation, SQL/XML merge), plan
  execution and the functional path, with pluggable sinks;
* **metrics** (:mod:`repro.obs.metrics`) — counters (rewrite attempts,
  categorized fallbacks) and histograms (stage / execution timings);
* **EXPLAIN** — ``repro.rdb.plan.explain(query, analyze=True, db=db)``
  renders the plan tree annotated with per-node row counts and self/total
  times.

``repro.core.transform.TransformResult.report()`` assembles all three for
one ``xml_transform`` call.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    global_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    InMemorySink,
    JsonLinesSink,
    Span,
    TextSink,
    Tracer,
    get_tracer,
    render_tree,
    set_tracer,
)

__all__ = [
    "Counter",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TextSink",
    "Tracer",
    "get_tracer",
    "global_metrics",
    "render_tree",
    "set_metrics",
    "set_tracer",
]
