"""Observability for the XSLT→XQuery→SQL pipeline.

Three facilities, threaded through every layer (see README
"Observability" and DESIGN §spans):

* **tracing** (:mod:`repro.obs.trace`) — nested spans over the compile
  stages (partial evaluation, XQuery generation, SQL/XML merge), plan
  execution and the functional path, with pluggable sinks;
* **metrics** (:mod:`repro.obs.metrics`) — counters (rewrite attempts,
  categorized fallbacks) and histograms (stage / execution timings);
* **EXPLAIN** — ``repro.rdb.plan.explain(query, analyze=True, db=db)``
  renders the plan tree annotated with per-node row counts and self/total
  times;
* **EXPLAIN REWRITE** (:mod:`repro.obs.decisions`) — a
  :class:`DecisionLedger` recording every rewrite decision (§3.3–3.7,
  §4.3/4.4) with XSLT → XQuery → SQL-plan-node provenance, surfaced by
  ``TransformResult.explain(rewrite=True)`` and
  ``XsltRewriter.compile(..., explain=True)``;
* **exporters** (:mod:`repro.obs.export`) — Prometheus text format and
  JSON Lines for metrics and span trees;
* **adaptive feedback** (:mod:`repro.obs.feedback`) — after every
  profiled execution, per-node/per-plan Q-error (estimate vs. actual
  cardinality) is computed and exported; a :class:`FeedbackPolicy`
  closes the loop with auto-ANALYZE and serve-cache re-costing.

``repro.core.transform.TransformResult.report()`` assembles the first
three for one ``xml_transform`` call.
"""

from repro.obs.decisions import (
    Decision,
    DecisionLedger,
    Provenance,
    diff_ledgers,
)
from repro.obs.export import (
    metrics_to_jsonl,
    prometheus_text,
    spans_to_jsonl,
    write_prometheus,
)
from repro.obs.feedback import (
    FeedbackController,
    FeedbackEvent,
    FeedbackPolicy,
    NodeFeedback,
    PlanFeedback,
    compute_plan_feedback,
    format_qerror,
    q_error,
    record_feedback_metrics,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    global_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    InMemorySink,
    JsonLinesSink,
    Span,
    TextSink,
    Tracer,
    get_tracer,
    render_tree,
    set_tracer,
)

__all__ = [
    "Counter",
    "Decision",
    "DecisionLedger",
    "FeedbackController",
    "FeedbackEvent",
    "FeedbackPolicy",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "NodeFeedback",
    "PlanFeedback",
    "Provenance",
    "Span",
    "TextSink",
    "Tracer",
    "compute_plan_feedback",
    "diff_ledgers",
    "format_qerror",
    "get_tracer",
    "global_metrics",
    "metrics_to_jsonl",
    "prometheus_text",
    "q_error",
    "record_feedback_metrics",
    "render_tree",
    "set_metrics",
    "set_tracer",
    "spans_to_jsonl",
    "write_prometheus",
]
