"""Observability for the XSLT→XQuery→SQL pipeline.

Three facilities, threaded through every layer (see README
"Observability" and DESIGN §spans):

* **tracing** (:mod:`repro.obs.trace`) — nested spans over the compile
  stages (partial evaluation, XQuery generation, SQL/XML merge), plan
  execution and the functional path, with pluggable sinks;
* **metrics** (:mod:`repro.obs.metrics`) — counters (rewrite attempts,
  categorized fallbacks) and histograms (stage / execution timings);
* **EXPLAIN** — ``repro.rdb.plan.explain(query, analyze=True, db=db)``
  renders the plan tree annotated with per-node row counts and self/total
  times;
* **EXPLAIN REWRITE** (:mod:`repro.obs.decisions`) — a
  :class:`DecisionLedger` recording every rewrite decision (§3.3–3.7,
  §4.3/4.4) with XSLT → XQuery → SQL-plan-node provenance, surfaced by
  ``TransformResult.explain(rewrite=True)`` and
  ``XsltRewriter.compile(..., explain=True)``;
* **exporters** (:mod:`repro.obs.export`) — Prometheus text format and
  JSON Lines for metrics and span trees;
* **adaptive feedback** (:mod:`repro.obs.feedback`) — after every
  profiled execution, per-node/per-plan Q-error (estimate vs. actual
  cardinality) is computed and exported; a :class:`FeedbackPolicy`
  closes the loop with auto-ANALYZE and serve-cache re-costing.

``repro.core.transform.TransformResult.report()`` assembles the first
three for one ``xml_transform`` call.
"""

from repro.obs.decisions import (
    Decision,
    DecisionLedger,
    Provenance,
    diff_ledgers,
)
from repro.obs.export import (
    metrics_to_jsonl,
    prometheus_text,
    spans_to_jsonl,
    write_prometheus,
)
from repro.obs.feedback import (
    FeedbackController,
    FeedbackEvent,
    FeedbackPolicy,
    NodeFeedback,
    PlanFeedback,
    compute_plan_feedback,
    format_qerror,
    q_error,
    record_feedback_metrics,
)
from repro.obs.logs import (
    JsonLogFormatter,
    JsonLogHandler,
    configure_json_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_metrics,
    set_metrics,
)
from repro.obs.ops import (
    OpsServer,
    start_ops_server,
)
from repro.obs.recorder import (
    DETAIL_SLOW,
    DETAIL_TAIL_SAMPLE,
    FlightRecorder,
    RequestRecord,
    stage_seconds,
)
from repro.obs.trace import (
    NULL_SPAN,
    InMemorySink,
    JsonLinesSink,
    Span,
    TextSink,
    TraceContext,
    Tracer,
    activate_trace_context,
    current_trace_context,
    current_trace_id,
    deactivate_trace_context,
    format_traceparent,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_tree,
    set_tracer,
    use_trace_context,
)

__all__ = [
    "Counter",
    "DETAIL_SLOW",
    "DETAIL_TAIL_SAMPLE",
    "Decision",
    "DecisionLedger",
    "FeedbackController",
    "FeedbackEvent",
    "FeedbackPolicy",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "JsonLogFormatter",
    "JsonLogHandler",
    "MetricsRegistry",
    "NULL_SPAN",
    "NodeFeedback",
    "OpsServer",
    "PlanFeedback",
    "Provenance",
    "RequestRecord",
    "Span",
    "TextSink",
    "TraceContext",
    "Tracer",
    "activate_trace_context",
    "compute_plan_feedback",
    "configure_json_logging",
    "current_trace_context",
    "current_trace_id",
    "deactivate_trace_context",
    "diff_ledgers",
    "format_qerror",
    "format_traceparent",
    "get_tracer",
    "global_metrics",
    "metrics_to_jsonl",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "prometheus_text",
    "q_error",
    "record_feedback_metrics",
    "render_tree",
    "set_metrics",
    "set_tracer",
    "spans_to_jsonl",
    "stage_seconds",
    "start_ops_server",
    "use_trace_context",
    "write_prometheus",
]
