"""Adaptive optimizer feedback: the Q-error loop.

The cost planner (:mod:`repro.rdb.planner`) stamps every plan node with
``estimated_rows``; the profiler (:class:`~repro.rdb.plan.PlanProfiler`)
records what actually flowed.  This module pairs the two after a
profiled execution and computes the **Q-error** of every estimate —
``max(est/act, act/est)``, the standard multiplicative measure of
cardinality-estimation quality — then closes the loop:

* every observation lands in metrics (``planner.qerror`` histogram
  labeled by operator kind, ``planner.qerror.max`` per plan) and on the
  execution result, and EXPLAIN ANALYZE renders a ``q=`` column;
* when a :class:`FeedbackPolicy` is enabled and a plan misses its
  thresholds ``consecutive_misses`` times, the
  :class:`FeedbackController` **distrusts** the plan: it records
  ``plan-feedback`` decisions in the plan's
  :class:`~repro.obs.decisions.DecisionLedger` (so EXPLAIN REWRITE
  shows why), auto-ANALYZEs offending tables that have no statistics
  (bumping ``stats_version``, which re-keys the serve plan cache), and
  notifies listeners — the serve tier subscribes to evict/re-cost the
  cached ``CompiledTransform``.

Zero/missing handling is explicit: a node the planner never stamped
(optimizer level ``off``) has Q-error ``None`` and is excluded from
aggregation; ``est == actual == 0`` is a perfect estimate (1.0); one
side zero with the other positive is an unbounded miss
(``float("inf")``), capped at :data:`QERROR_CAP` before entering
histograms so sums stay finite.
"""

from __future__ import annotations

import math
import threading

from .metrics import global_metrics

#: Q-error of a perfect estimate.
QERROR_PERFECT = 1.0

#: Finite stand-in for an infinite Q-error when recording into
#: histograms (an ``inf`` sample would poison ``_sum``).
QERROR_CAP = 1.0e6


def q_error(estimated, actual):
    """``max(est/act, act/est)`` with explicit zero/missing handling.

    Returns ``None`` when there is no estimate to judge (the planner ran
    at level ``off``), ``1.0`` when both sides are zero (the estimate
    was exactly right), ``float("inf")`` when exactly one side is zero,
    and the max ratio otherwise.
    """
    if estimated is None:
        return None
    estimated = float(estimated)
    actual = float(actual)
    if estimated <= 0.0 and actual <= 0.0:
        return QERROR_PERFECT
    if estimated <= 0.0 or actual <= 0.0:
        return float("inf")
    return max(estimated / actual, actual / estimated)


def format_qerror(value):
    """Human form of a Q-error: ``-`` missing, ``inf``, or ``12.50``."""
    if value is None:
        return "-"
    if math.isinf(value):
        return "inf"
    return "%.2f" % value


def _capped(value):
    return min(value, QERROR_CAP)


class NodeFeedback:
    """One plan node's estimate vs. its observed cardinality.

    ``table`` is the node's own base table (scans only); ``tables`` also
    covers the base tables in the node's subtree, so a mis-estimated
    Filter or Join still implicates the tables whose statistics would
    have fixed its estimate.
    """

    __slots__ = ("node_id", "op", "table", "tables", "estimated_rows",
                 "actual_rows", "opens", "q_error")

    def __init__(self, node_id, op, table, estimated_rows, actual_rows,
                 tables=(), opens=1):
        self.node_id = node_id
        self.op = op
        self.table = table
        self.tables = tuple(tables) if tables else (
            (table,) if table else ())
        self.estimated_rows = estimated_rows
        # estimates are per open; a correlated inner plan re-opens once
        # per outer row, so the comparable actual is rows / loops
        self.opens = opens or 1
        self.actual_rows = actual_rows / self.opens
        self.q_error = q_error(estimated_rows, self.actual_rows)

    def describe(self):
        where = "#%d %s" % (self.node_id, self.op) if self.node_id \
            else self.op
        if self.table:
            where += "(%s)" % self.table
        loops = " loops=%d" % self.opens if self.opens > 1 else ""
        if self.estimated_rows is None:
            return "%s est=- actual=%g%s q=-" % (where, self.actual_rows,
                                                 loops)
        return "%s est=%s actual=%g%s q=%s" % (
            where, "%g" % self.estimated_rows, self.actual_rows, loops,
            format_qerror(self.q_error),
        )

    def as_dict(self):
        return {
            "node_id": self.node_id,
            "op": self.op,
            "table": self.table,
            "tables": list(self.tables),
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "opens": self.opens,
            "q_error": self.q_error,
        }

    def __repr__(self):
        return "NodeFeedback(%s)" % self.describe()


class PlanFeedback:
    """Q-error record of one profiled execution of one plan."""

    __slots__ = ("nodes", "missing_estimates", "max_q_error", "worst",
                 "triggered", "actions", "stats_version")

    def __init__(self, nodes, missing_estimates):
        self.nodes = nodes
        self.missing_estimates = missing_estimates
        self.max_q_error = None
        self.worst = None
        for node in nodes:
            if node.q_error is None:
                continue
            if self.max_q_error is None or node.q_error > self.max_q_error:
                self.max_q_error = node.q_error
                self.worst = node
        self.triggered = False
        self.actions = []
        self.stats_version = None

    def offending(self, threshold):
        """Nodes whose Q-error meets ``threshold``."""
        return [node for node in self.nodes
                if node.q_error is not None and node.q_error >= threshold]

    def exceeds(self, policy):
        """Does this record miss the policy's thresholds?"""
        if self.max_q_error is None:
            return False
        if self.max_q_error >= policy.plan_threshold:
            return True
        return bool(self.offending(policy.node_threshold))

    def render(self):
        """Human-readable lines for ``TransformResult.report()``."""
        lines = []
        if self.max_q_error is None:
            lines.append("q-error: no estimates to judge "
                         "(%d node(s) profiled)" % len(self.nodes))
        else:
            lines.append("q-error max=%s at %s" % (
                format_qerror(self.max_q_error), self.worst.describe()))
        for node in self.nodes:
            lines.append("  %s" % node.describe())
        if self.missing_estimates:
            lines.append("  (%d node(s) without estimates)"
                         % self.missing_estimates)
        for action in self.actions:
            lines.append("action: %s" % action)
        return lines

    def as_dict(self):
        return {
            "max_q_error": self.max_q_error,
            "missing_estimates": self.missing_estimates,
            "triggered": self.triggered,
            "actions": list(self.actions),
            "stats_version": self.stats_version,
            "nodes": [node.as_dict() for node in self.nodes],
        }

    def __repr__(self):
        return "PlanFeedback(max=%s nodes=%d triggered=%r)" % (
            format_qerror(self.max_q_error), len(self.nodes), self.triggered)


def _subtree_tables(node):
    """Base tables reachable from ``node``, in pre-order."""
    tables = []
    for descendant in node.iter_plan():
        table = getattr(descendant, "table_name", None)
        if table and table not in tables:
            tables.append(table)
    return tables


def _iter_plans(query, extra_plans=()):
    plan = getattr(query, "plan", None)
    if plan is None:
        plan = query
    yield plan
    for extra in extra_plans:
        extra = getattr(extra, "plan", None) or extra
        if extra is not plan:
            yield extra


def compute_plan_feedback(query, profiler, extra_plans=()):
    """Walk the plan(s) pairing estimates with profiled actuals.

    ``extra_plans`` carries subquery plans (from
    ``DecisionLedger.bound_plans``) so the correlated inner queries the
    XSLT rewrite produces are judged too.  Nodes the profiler never saw
    (never-executed branches) are skipped — there is no actual to
    compare.
    """
    nodes = []
    missing = 0
    seen = set()
    for plan in _iter_plans(query, extra_plans):
        for node in plan.iter_plan():
            if id(node) in seen:
                continue
            seen.add(id(node))
            profile = profiler.get(node)
            if profile is None:
                continue
            feedback = NodeFeedback(
                getattr(node, "plan_node_id", None),
                type(node).__name__,
                getattr(node, "table_name", None),
                getattr(node, "estimated_rows", None),
                profile.rows_out,
                tables=_subtree_tables(node),
                opens=getattr(profile, "opens", 1),
            )
            if feedback.q_error is None:
                missing += 1
            nodes.append(feedback)
    return PlanFeedback(nodes, missing)


def record_feedback_metrics(feedback, metrics=None):
    """Export a :class:`PlanFeedback` through the obs registry."""
    metrics = metrics or global_metrics()
    for node in feedback.nodes:
        if node.q_error is None:
            continue
        metrics.histogram("planner.qerror", op=node.op).record(
            _capped(node.q_error))
    if feedback.max_q_error is not None:
        metrics.histogram("planner.qerror.max").record(
            _capped(feedback.max_q_error))
    if feedback.missing_estimates:
        metrics.counter("planner.qerror.missing_estimates").inc(
            feedback.missing_estimates)
    return feedback


class FeedbackPolicy:
    """When is a plan distrusted, and what do we do about it.

    :param node_threshold: per-node Q-error at which a node counts as
        *offending* (its table becomes an auto-ANALYZE candidate).
    :param plan_threshold: aggregate (max) Q-error at which the whole
        plan counts as missed.
    :param consecutive_misses: how many profiled executions in a row
        must miss before the controller acts — one noisy run does not
        re-cost a warm cache.
    :param auto_analyze: ANALYZE offending tables that have no usable
        statistics (never analyzed, or invalidated by DML).
    :param recost: notify listeners (the serve tier) so cached compiled
        plans carrying the bad estimates are evicted/re-costed.
    """

    __slots__ = ("node_threshold", "plan_threshold", "consecutive_misses",
                 "auto_analyze", "recost")

    def __init__(self, node_threshold=4.0, plan_threshold=4.0,
                 consecutive_misses=2, auto_analyze=True, recost=True):
        if node_threshold < 1.0 or plan_threshold < 1.0:
            raise ValueError("q-error thresholds are >= 1.0 by definition")
        if consecutive_misses < 1:
            raise ValueError("consecutive_misses must be >= 1")
        self.node_threshold = node_threshold
        self.plan_threshold = plan_threshold
        self.consecutive_misses = consecutive_misses
        self.auto_analyze = auto_analyze
        self.recost = recost

    def as_dict(self):
        return {
            "node_threshold": self.node_threshold,
            "plan_threshold": self.plan_threshold,
            "consecutive_misses": self.consecutive_misses,
            "auto_analyze": self.auto_analyze,
            "recost": self.recost,
        }

    def __repr__(self):
        return ("FeedbackPolicy(node>=%.2f, plan>=%.2f, misses=%d, "
                "auto_analyze=%r, recost=%r)") % (
            self.node_threshold, self.plan_threshold,
            self.consecutive_misses, self.auto_analyze, self.recost)


class FeedbackEvent:
    """What the controller did when it distrusted a plan."""

    __slots__ = ("query", "compiled", "feedback", "analyzed",
                 "stats_version")

    def __init__(self, query, compiled, feedback, analyzed, stats_version):
        self.query = query
        self.compiled = compiled
        self.feedback = feedback
        self.analyzed = analyzed
        self.stats_version = stats_version


class FeedbackController:
    """Per-database Q-error observer and corrective-action driver.

    Created by :class:`~repro.rdb.database.Database` in *observe-only*
    mode (``policy is None``): every profiled execution still records
    metrics and produces a :class:`PlanFeedback`, but nothing is
    analyzed or evicted until :meth:`enable` installs a policy.
    Consecutive-miss state is keyed by the query's SQL fingerprint, so
    the same cached plan accumulates misses across requests.
    """

    def __init__(self, db, policy=None, metrics=None):
        self.db = db
        self.policy = policy
        self.metrics = metrics
        self._lock = threading.Lock()
        self._misses = {}
        self._listeners = []

    # -- configuration ----------------------------------------------------------

    def enable(self, policy=None):
        """Install (and return) a policy; actions are live from now on."""
        self.policy = policy or FeedbackPolicy()
        return self.policy

    def disable(self):
        """Back to observe-only; pending miss counts are dropped."""
        self.policy = None
        with self._lock:
            self._misses.clear()

    def add_listener(self, listener):
        """``listener(event)`` is called after every corrective action."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener):
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- the loop ---------------------------------------------------------------

    def observe(self, query, profiler, metrics=None, ledger=None,
                compiled=None, extra_plans=()):
        """Judge one profiled execution; act when the policy says so.

        Returns the :class:`PlanFeedback` (always, even observe-only).
        """
        feedback = compute_plan_feedback(query, profiler,
                                         extra_plans=extra_plans)
        feedback.stats_version = self.db.stats_version()
        record_feedback_metrics(feedback, metrics or self.metrics)
        policy = self.policy
        if policy is None or not feedback.nodes:
            return feedback
        key = self._plan_key(query)
        if not feedback.exceeds(policy):
            with self._lock:
                self._misses.pop(key, None)
            return feedback
        with self._lock:
            misses = self._misses.get(key, 0) + 1
            self._misses[key] = misses
        if misses < policy.consecutive_misses:
            return feedback
        with self._lock:
            self._misses.pop(key, None)
        self._act(query, feedback, policy, ledger, compiled,
                  metrics or self.metrics)
        return feedback

    @staticmethod
    def _plan_key(query):
        fingerprint = getattr(query, "fingerprint", None)
        if callable(fingerprint):
            return fingerprint()
        return "plan:%x" % id(query)

    def _act(self, query, feedback, policy, ledger, compiled, metrics):
        from .decisions import PLAN_QERROR, PLAN_RECOST, FEEDBACK_STAGE
        metrics = metrics or global_metrics()
        feedback.triggered = True
        worst = feedback.worst
        metrics.counter("planner.feedback.triggered").inc()
        if ledger is not None:
            self._record_once(
                ledger, PLAN_QERROR, FEEDBACK_STAGE,
                subject=worst.describe(),
                action="distrust plan",
                reason="observed q-error %s >= threshold %.2f"
                       % (format_qerror(feedback.max_q_error),
                          min(policy.plan_threshold, policy.node_threshold)),
                detail={"stats_version": feedback.stats_version,
                        "max_q_error": feedback.max_q_error},
            )
        analyzed = []
        if policy.auto_analyze:
            analyzed = self._auto_analyze(feedback, policy, ledger, metrics)
        if analyzed:
            feedback.actions.append(
                "auto-analyze %s (stats v%d -> v%d)"
                % (", ".join(analyzed), feedback.stats_version,
                   self.db.stats_version()))
        if policy.recost:
            feedback.actions.append("recost: notified serve tier")
            if ledger is not None:
                self._record_once(
                    ledger, PLAN_RECOST, FEEDBACK_STAGE,
                    subject="compiled plan",
                    action="evict from plan cache",
                    reason="recorded q-error exceeded policy thresholds",
                )
            event = FeedbackEvent(query, compiled, feedback, analyzed,
                                  self.db.stats_version())
            with self._lock:
                listeners = list(self._listeners)
            for listener in listeners:
                listener(event)

    def _auto_analyze(self, feedback, policy, ledger, metrics):
        from .decisions import AUTO_ANALYZE, FEEDBACK_STAGE
        offending = feedback.offending(policy.node_threshold)
        tables = []
        for node in offending or [feedback.worst]:
            for table in node.tables:
                if table not in tables:
                    tables.append(table)
        if not tables:
            # no base table implicated directly; consider every table
            # the distrusted plan touches
            for node in feedback.nodes:
                for table in node.tables:
                    if table not in tables:
                        tables.append(table)
        analyzed = []
        for table in tables:
            # Only tables with *no usable statistics* are analyzed: when
            # fresh stats already exist, re-running ANALYZE would compute
            # the same numbers and churn stats_version forever — the
            # corrective action there is the re-cost, not re-ANALYZE.
            if self.db.stats.table_stats(table) is not None:
                continue
            self.db.analyze(table)
            analyzed.append(table)
            metrics.counter("planner.feedback.auto_analyze",
                            table=table).inc()
            if ledger is not None:
                ledger.record(
                    AUTO_ANALYZE, FEEDBACK_STAGE,
                    subject=table,
                    action="ANALYZE",
                    reason="estimates came from defaults; table had no "
                           "statistics",
                    detail={"stats_version": self.db.stats_version()},
                )
        return analyzed

    @staticmethod
    def _record_once(ledger, kind, stage, subject, action, reason,
                     detail=None):
        """Append a decision unless the ledger already tells this story.

        Compiled plans are cached and re-executed many times; the ledger
        travels with the plan, so an unconditional append would grow it
        on every distrusted request.
        """
        for decision in ledger.decisions:
            if decision.kind == kind and decision.subject == subject \
                    and decision.stage == stage:
                return decision
        return ledger.record(kind, stage, subject=subject, action=action,
                             reason=reason, detail=detail)
