"""Exporters for metrics and span trees.

Two output shapes, both stdlib-only:

* :func:`prometheus_text` — renders a :class:`MetricsRegistry` in the
  Prometheus text exposition format (``# TYPE`` headers, counters with
  the ``_total`` suffix convention, histograms as summaries with
  ``quantile`` labels plus ``_sum``/``_count``), so a scrape endpoint or
  a node-exporter textfile collector can pick it up verbatim;
* :func:`metrics_to_jsonl` / :func:`spans_to_jsonl` — one JSON object
  per line, the shape log shippers ingest; span trees are flattened to
  parent-linked records via :meth:`Span.to_dict`.

``benchmarks/run_figures.py`` embeds the Prometheus rendering per figure
case in ``BENCH_obs.json`` next to the raw snapshot.
"""

from __future__ import annotations

import json

# Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — everything else
# becomes "_".  Label names allow no colon.
_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _metric_name(name):
    sanitized = "".join(c if c in _NAME_OK else "_" for c in name)
    if not sanitized or sanitized[0] in "0123456789":
        sanitized = "_" + sanitized
    return sanitized


def _label_name(name):
    return _metric_name(name).replace(":", "_")


def _escape_label_value(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels, extra=None):
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (_label_name(key), _escape_label_value(value))
        for key, value in pairs
    )


def _number(value):
    if value is None:
        return "NaN"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: Default cumulative-bucket upper bounds: a 1/2.5/5 log grid wide
#: enough for both second-scale latencies (1e-5 s and up) and Q-errors
#: (1 .. QERROR_CAP).
DEFAULT_BUCKET_BOUNDS = tuple(
    mantissa * (10.0 ** exponent)
    for exponent in range(-5, 7)
    for mantissa in (1.0, 2.5, 5.0)
)


def _le(bound):
    if bound == float("inf"):
        return "+Inf"
    return _number(bound)


def prometheus_text(registry, bucket_bounds=DEFAULT_BUCKET_BOUNDS):
    """The registry in the Prometheus text exposition format (v0.0.4).

    Counters get the ``_total`` suffix; histograms are exported twice:

    * as summaries (``quantile="0.5"``/``"0.95"`` sample lines plus
      ``_sum``/``_count``) under the metric's own name — the original
      shape, kept for backward compatibility;
    * as a sibling ``<name>_hist`` **histogram** family with proper
      cumulative ``_bucket{le=...}`` samples over ``bucket_bounds``
      (one name cannot legally carry both types, hence the sibling).
      Bucket counts are scaled from the retained samples up to the true
      observation count, so ``_bucket{le="+Inf"}`` always equals
      ``_count``.

    Metrics sharing a name emit one ``# TYPE`` header with one sample
    line per label set.  Pass ``bucket_bounds=()`` to suppress the
    histogram families.
    """
    lines = []
    by_name = {}
    for counter in registry.counters():
        by_name.setdefault(("counter", counter.name), []).append(counter)
    gauges = getattr(registry, "gauges", None)
    for gauge in (gauges() if callable(gauges) else ()):
        by_name.setdefault(("gauge", gauge.name), []).append(gauge)
    for histogram in registry.histograms():
        by_name.setdefault(("summary", histogram.name), []).append(histogram)
    for (kind, raw_name) in sorted(by_name):
        metrics = by_name[(kind, raw_name)]
        name = _metric_name(raw_name)
        if kind == "counter":
            name += "_total"
            lines.append("# TYPE %s counter" % name)
            for counter in metrics:
                lines.append(
                    "%s%s %s"
                    % (name, _render_labels(counter.labels),
                       _number(counter.value))
                )
        elif kind == "gauge":
            lines.append("# TYPE %s gauge" % name)
            for gauge in metrics:
                lines.append(
                    "%s%s %s"
                    % (name, _render_labels(gauge.labels),
                       _number(gauge.value))
                )
        else:
            lines.append("# TYPE %s summary" % name)
            for histogram in metrics:
                for pct, quantile in ((50, "0.5"), (95, "0.95")):
                    lines.append(
                        "%s%s %s"
                        % (
                            name,
                            _render_labels(histogram.labels,
                                           extra=[("quantile", quantile)]),
                            _number(histogram.percentile(pct)),
                        )
                    )
                labels = _render_labels(histogram.labels)
                lines.append(
                    "%s_sum%s %s" % (name, labels, _number(histogram.sum))
                )
                lines.append(
                    "%s_count%s %s"
                    % (name, labels, _number(histogram.count))
                )
            if bucket_bounds:
                lines.extend(
                    _histogram_family(name, metrics, bucket_bounds)
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_family(name, histograms, bounds):
    """Cumulative-bucket rendering of one histogram name."""
    family = name + "_hist"
    lines = ["# TYPE %s histogram" % family]
    for histogram in histograms:
        items, total, count = histogram.buckets(bounds)
        for bound, cumulative in items:
            lines.append(
                "%s_bucket%s %d"
                % (
                    family,
                    _render_labels(histogram.labels,
                                   extra=[("le", _le(bound))]),
                    cumulative,
                )
            )
        labels = _render_labels(histogram.labels)
        lines.append("%s_sum%s %s" % (family, labels, _number(total)))
        lines.append("%s_count%s %d" % (family, labels, count))
    return lines


def write_prometheus(registry, path_or_stream):
    """Write :func:`prometheus_text` to a path or stream."""
    text = prometheus_text(registry)
    if hasattr(path_or_stream, "write"):
        path_or_stream.write(text)
    else:
        with open(path_or_stream, "w", encoding="utf-8") as stream:
            stream.write(text)
    return text


def metrics_to_jsonl(registry, path_or_stream=None):
    """One JSON record per counter/histogram.

    Returns the list of records; when ``path_or_stream`` is given, also
    writes them as JSON Lines.
    """
    records = []
    for counter in registry.counters():
        records.append({
            "type": "counter",
            "name": counter.name,
            "labels": dict(counter.labels),
            "value": counter.value,
        })
    gauges = getattr(registry, "gauges", None)
    for gauge in (gauges() if callable(gauges) else ()):
        records.append({
            "type": "gauge",
            "name": gauge.name,
            "labels": dict(gauge.labels),
            "value": gauge.value,
        })
    for histogram in registry.histograms():
        record = {
            "type": "histogram",
            "name": histogram.name,
            "labels": dict(histogram.labels),
        }
        record.update(histogram.summary())
        records.append(record)
    _write_jsonl(records, path_or_stream)
    return records


def spans_to_jsonl(spans, path_or_stream=None):
    """Flatten span trees to parent-linked JSON records.

    ``spans`` may be one span or an iterable of (root) spans; each span's
    whole subtree is exported.  Returns the records; when
    ``path_or_stream`` is given, also writes them as JSON Lines.
    """
    if hasattr(spans, "iter_spans"):
        spans = [spans]
    records = []
    seen = set()
    for root in spans:
        for span in root.iter_spans():
            if id(span) in seen:
                continue
            seen.add(id(span))
            records.append(span.to_dict())
    _write_jsonl(records, path_or_stream)
    return records


def _write_jsonl(records, path_or_stream):
    if path_or_stream is None:
        return
    if hasattr(path_or_stream, "write"):
        _dump_lines(records, path_or_stream)
    else:
        with open(path_or_stream, "w", encoding="utf-8") as stream:
            _dump_lines(records, stream)


def _dump_lines(records, stream):
    for record in records:
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")
