"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures without also swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XmlSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column)
        super().__init__(message)
        self.line = line
        self.column = column


class XPathSyntaxError(ReproError):
    """Raised when an XPath expression cannot be parsed."""


class XPathTypeError(ReproError):
    """Raised when an XPath expression is applied to an incompatible value."""


class XPathEvaluationError(ReproError):
    """Raised when a well-formed XPath expression fails at run time."""


class XsltCompileError(ReproError):
    """Raised when a stylesheet is structurally invalid."""


class XsltRuntimeError(ReproError):
    """Raised when a compiled stylesheet fails during execution."""


class XQuerySyntaxError(ReproError):
    """Raised when an XQuery expression cannot be parsed."""


class XQueryTypeError(ReproError):
    """Raised on static or dynamic XQuery type violations."""


class XQueryEvaluationError(ReproError):
    """Raised when an XQuery expression fails at run time."""


class SchemaError(ReproError):
    """Raised for invalid structural-schema definitions or DTDs."""


class DatabaseError(ReproError):
    """Base class for relational-engine errors."""


class CatalogError(DatabaseError):
    """Raised for unknown/duplicate tables, columns, indexes or views."""


class PlanError(DatabaseError):
    """Raised when a logical query cannot be planned or executed."""


class RewriteError(ReproError):
    """Raised when the XSLT/XQuery rewrite pipeline cannot proceed.

    The front door treats this as "fall back to functional evaluation",
    mirroring the paper's behaviour for unsupported constructs.

    ``phase`` distinguishes *where* the rewrite failed once known:
    ``"compile"`` (structure inference, partial evaluation, XQuery
    generation, SQL/XML merge) vs ``"execute"`` (running the merged
    plan).  ``stage`` names the specific compile stage.  Both are filled
    in by the pipeline/front door as the error propagates; raisers deep
    in the stack may leave them None.
    """

    def __init__(self, message, phase=None, stage=None):
        super().__init__(message)
        self.phase = phase
        self.stage = stage
