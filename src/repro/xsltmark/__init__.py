"""An XSLTMark-style benchmark suite (paper §5).

The paper evaluates with DataPower's XSLTMark: "forty test cases designed
to assess important functional areas of an XSLT processor".  The original
distribution is not redistributable, so this package re-implements forty
cases by name and functional area from the published case list — each a
genuine stylesheet plus a scalable synthetic document generator, stored
object-relationally with value indexes, exactly the §5 setup.

* :mod:`.generator` — synthetic document generators (the db-style record
  table most cases use, plus sales, tree and text documents);
* :mod:`.cases` — the forty :class:`~repro.xsltmark.cases.BenchmarkCase`
  definitions;
* :mod:`.runner` — loads a case into storage, runs it with and without
  XSLT rewrite, checks both strategies agree, and reports timings,
  execution statistics and the rewrite classification (inline /
  non-inline / fallback) that reproduces the paper's "23 of 40 inline"
  measurement.
"""

from repro.xsltmark.cases import ALL_CASES, BenchmarkCase, get_case
from repro.xsltmark.runner import CaseRun, classify_case, run_case

__all__ = [
    "ALL_CASES",
    "BenchmarkCase",
    "CaseRun",
    "classify_case",
    "get_case",
    "run_case",
]
