"""The forty benchmark cases.

Each case is modelled on the published XSLTMark case list: same name, same
functional area, equivalent workload.  Stylesheets use only XSLT 1.0; the
mix of features mirrors the original suite — value predicates, AVTs,
aggregation, sorting, multi-step patterns, modes, computed constructors,
recursion (named-template recursion → the paper's non-inline mode), axes,
keys, ``xsl:number``, positional access and recursive document structures
(the last groups cannot be rewritten and exercise the functional fallback,
exactly as in the paper, where 23 of 40 cases compiled fully inline).
"""

from __future__ import annotations

from repro.xsltmark import generator as gen

_XSL = 'xmlns:xsl="http://www.w3.org/1999/XSL/Transform"'


def _sheet(body):
    return (
        '<?xml version="1.0"?><xsl:stylesheet version="1.0" %s>%s'
        "</xsl:stylesheet>" % (_XSL, body)
    )


class BenchmarkCase:
    """One benchmark case definition."""

    __slots__ = (
        "name", "area", "dtd", "column_types", "stylesheet",
        "make_document", "indexed_elements", "notes",
    )

    def __init__(self, name, area, dtd, column_types, stylesheet,
                 make_document, indexed_elements=(), notes=""):
        self.name = name
        self.area = area
        self.dtd = dtd
        self.column_types = column_types
        self.stylesheet = stylesheet
        self.make_document = make_document
        self.indexed_elements = list(indexed_elements)
        self.notes = notes

    def __repr__(self):
        return "<BenchmarkCase %s (%s)>" % (self.name, self.area)


def _db_case(name, area, body, indexed=(), notes=""):
    return BenchmarkCase(
        name, area, gen.DB_DTD, gen.DB_COLUMN_TYPES, _sheet(body),
        gen.make_db_document, indexed, notes,
    )


def _sales_case(name, area, body, indexed=(), notes=""):
    return BenchmarkCase(
        name, area, gen.SALES_DTD, gen.SALES_COLUMN_TYPES, _sheet(body),
        gen.make_sales_document, indexed, notes,
    )


def _items_case(name, area, body, indexed=(), notes=""):
    return BenchmarkCase(
        name, area, gen.ITEMS_DTD, gen.ITEMS_COLUMN_TYPES, _sheet(body),
        gen.make_items_document, indexed, notes,
    )


def _groups_case(name, area, body, indexed=(), notes=""):
    return BenchmarkCase(
        name, area, gen.GROUPS_DTD, gen.GROUPS_COLUMN_TYPES, _sheet(body),
        lambda size: gen.make_groups_document(max(size // 10, 1), 10),
        indexed, notes,
    )


ALL_CASES = [
    # -- database access ---------------------------------------------------
    _db_case(
        "dbonerow", "db",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row[id = 37]"/></out></xsl:template>'
        '<xsl:template match="row"><hit>'
        '<xsl:value-of select="firstname"/><xsl:text> </xsl:text>'
        '<xsl:value-of select="lastname"/></hit></xsl:template>',
        indexed=["id"],
        notes="Figure 2 workload: a value predicate selecting one row",
    ),
    _db_case(
        "dbaccess", "db",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row[zip &gt; 95000]"/></out>'
        "</xsl:template>"
        '<xsl:template match="row"><r><xsl:value-of select="lastname"/>'
        "</r></xsl:template>",
        indexed=["zip"],
    ),
    _db_case(
        "dbtail", "db",
        '<xsl:template match="table"><tail>'
        '<xsl:apply-templates select="row[id &gt;= 95]"/></tail>'
        "</xsl:template>"
        '<xsl:template match="row"><r><xsl:value-of select="id"/>'
        "</r></xsl:template>",
        indexed=["id"],
    ),
    _db_case(
        "decoy", "db",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row[id = 11]"/></out></xsl:template>'
        '<xsl:template match="row"><r><xsl:value-of select="city"/></r>'
        "</xsl:template>"
        + "".join(
            '<xsl:template match="ghost%d"><g%d/></xsl:template>' % (i, i)
            for i in range(12)
        ),
        indexed=["id"],
        notes="§3.7: the twelve decoy templates are pruned",
    ),
    _db_case(
        "oddtemplates", "db",
        '<xsl:template match="table/row/firstname"><f>'
        '<xsl:value-of select="."/></f></xsl:template>'
        '<xsl:template match="city/row"><never/></xsl:template>'
        '<xsl:template match="zip/table"><never/></xsl:template>'
        '<xsl:template match="state"><s><xsl:value-of select="."/></s>'
        "</xsl:template>",
    ),
    # -- output generation ---------------------------------------------------
    _db_case(
        "avts", "output",
        '<xsl:template match="table"><html>'
        '<xsl:apply-templates select="row"/></html></xsl:template>'
        '<xsl:template match="row">'
        '<div id="row{id}" class="{state}">'
        '<span title="{city}"><xsl:value-of select="lastname"/></span>'
        "</div></xsl:template>",
        notes="Figure 3 workload: attribute value templates",
    ),
    _db_case(
        "creation", "output",
        '<xsl:template match="row">'
        '<xsl:element name="person"><xsl:attribute name="key">'
        '<xsl:value-of select="id"/></xsl:attribute>'
        '<xsl:value-of select="lastname"/></xsl:element></xsl:template>'
        '<xsl:template match="table"><people>'
        '<xsl:apply-templates select="row"/></people></xsl:template>',
    ),
    _db_case(
        "attsets", "output",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row"/></out></xsl:template>'
        '<xsl:template match="row"><cell>'
        '<xsl:attribute name="id"><xsl:value-of select="id"/></xsl:attribute>'
        '<xsl:attribute name="zip"><xsl:value-of select="zip"/></xsl:attribute>'
        '<xsl:value-of select="city"/></cell></xsl:template>',
    ),
    _db_case(
        "output", "output",
        '<xsl:output method="text"/>'
        '<xsl:template match="table"><xsl:apply-templates select="row"/>'
        "</xsl:template>"
        '<xsl:template match="row"><xsl:value-of select="lastname"/>'
        "<xsl:text>, </xsl:text><xsl:value-of select='firstname'/>"
        "<xsl:text>&#10;</xsl:text></xsl:template>",
    ),
    _items_case(
        "vocab", "output",
        '<xsl:template match="list"><words>'
        '<xsl:for-each select="item"><xsl:value-of select="word"/>'
        "<xsl:text> </xsl:text></xsl:for-each></words></xsl:template>",
    ),
    # -- aggregation / arithmetic ------------------------------------------------
    _sales_case(
        "chart", "compute",
        '<xsl:template match="sales"><chart>'
        "<bars><xsl:apply-templates select='product[quantity &gt; 50]'/></bars>"
        '<count><xsl:value-of select="count(product)"/></count>'
        "</chart></xsl:template>"
        '<xsl:template match="product">'
        '<bar name="{name}" height="{quantity}"/></xsl:template>',
        notes="Figure 3 workload: count() aggregate",
    ),
    _sales_case(
        "total", "compute",
        '<xsl:template match="sales"><totals>'
        '<revenue><xsl:value-of select="sum(product/price)"/></revenue>'
        '<units><xsl:value-of select="sum(product/quantity)"/></units>'
        '<lines><xsl:value-of select="count(product)"/></lines>'
        "</totals></xsl:template>",
        notes="Figure 3 workload: sum() aggregates",
    ),
    _sales_case(
        "metric", "compute",
        '<xsl:template match="sales"><priced>'
        '<xsl:apply-templates select="product"/></priced></xsl:template>'
        '<xsl:template match="product"><m>'
        '<xsl:choose><xsl:when test="price &gt; 250">expensive</xsl:when>'
        '<xsl:when test="price &gt; 100">moderate</xsl:when>'
        "<xsl:otherwise>cheap</xsl:otherwise></xsl:choose>"
        "</m></xsl:template>",
        notes="Figure 3 workload: conditional construction",
    ),
    _db_case(
        "summarize", "compute",
        '<xsl:template match="table"><summary>'
        '<north><xsl:value-of select="count(row[zip &gt; 55000])"/></north>'
        '<south><xsl:value-of select="count(row[zip &lt;= 55000])"/></south>'
        "</summary></xsl:template>",
        indexed=["zip"],
    ),
    _sales_case(
        "product", "compute",
        '<xsl:template match="sales"><report>'
        '<xsl:for-each select="product"><line>'
        '<xsl:value-of select="quantity * price"/></line></xsl:for-each>'
        "</report></xsl:template>",
    ),
    # -- selection / patterns ---------------------------------------------------
    _db_case(
        "patterns", "select",
        '<xsl:template match="row/firstname"><f><xsl:value-of select="."/>'
        "</f></xsl:template>"
        '<xsl:template match="row[zip &gt; 70000]/lastname"><vip>'
        '<xsl:value-of select="."/></vip></xsl:template>'
        '<xsl:template match="lastname"><l><xsl:value-of select="."/></l>'
        "</xsl:template>"
        '<xsl:template match="street | city | state | zip | id"/>',
        notes="§3.5 multi-step patterns with and without predicates",
    ),
    _db_case(
        "priority", "select",
        '<xsl:template match="*" priority="-2"/>'
        '<xsl:template match="row" priority="3"><p3>'
        '<xsl:value-of select="id"/></p3></xsl:template>'
        '<xsl:template match="row" priority="1"><p1/></xsl:template>'
        '<xsl:template match="table" priority="2"><t>'
        '<xsl:apply-templates select="row"/></t></xsl:template>',
    ),
    _db_case(
        "union", "select",
        '<xsl:template match="table"><u>'
        '<xsl:apply-templates select="row[id = 5]"/></u></xsl:template>'
        '<xsl:template match="row">'
        '<xsl:apply-templates select="firstname | lastname"/></xsl:template>'
        '<xsl:template match="firstname"><f><xsl:value-of select="."/></f>'
        "</xsl:template>"
        '<xsl:template match="lastname"><l><xsl:value-of select="."/></l>'
        "</xsl:template>",
        indexed=["id"],
    ),
    _sales_case(
        "current", "select",
        '<xsl:template match="sales"><out>'
        '<xsl:apply-templates select="product[quantity &gt; 90]"/></out>'
        "</xsl:template>"
        '<xsl:template match="product"><peer>'
        '<xsl:value-of select="count(../product[name = current()/name])"/>'
        "</peer></xsl:template>",
        notes="current() in predicates; rewrites to XQuery, SQL merge falls back",
    ),
    _groups_case(
        "inventory", "select",
        '<xsl:template match="catalog"><inv>'
        '<xsl:apply-templates select="group"/></inv></xsl:template>'
        '<xsl:template match="group"><g name="{gname}">'
        '<xsl:apply-templates select="entry[amount &gt; 200]"/></g>'
        "</xsl:template>"
        '<xsl:template match="entry"><e><xsl:value-of select="code"/></e>'
        "</xsl:template>",
        indexed=["amount"],
    ),
    _groups_case(
        "games", "select",
        '<xsl:template match="catalog">'
        '<first><xsl:apply-templates select="group" mode="names"/></first>'
        '<second><xsl:apply-templates select="group" mode="sizes"/></second>'
        "</xsl:template>"
        '<xsl:template match="group" mode="names"><n ref="{generate-id()}">'
        '<xsl:value-of select="gname"/></n></xsl:template>'
        '<xsl:template match="group" mode="sizes"><s>'
        '<xsl:value-of select="count(entry)"/></s></xsl:template>',
        notes="generate-id() cross references: functional fallback",
    ),
    # -- string processing -------------------------------------------------------
    _items_case(
        "functions", "string",
        '<xsl:template match="item"><t>'
        "<xsl:value-of select=\"concat(word, ':', string-length(word))\"/>"
        "<xsl:text>/</xsl:text>"
        "<xsl:value-of select=\"format-number(value, '#,##0')\"/>"
        "</t></xsl:template>"
        '<xsl:template match="list"><out>'
        '<xsl:apply-templates select="item"/></out></xsl:template>',
        notes="format-number() has no XQuery counterpart: fallback",
    ),
    _items_case(
        "encrypt", "string",
        '<xsl:template match="item"><x><xsl:value-of select='
        "\"translate(word, 'abcdefghijklmnopqrstuvwxyz',"
        " 'nopqrstuvwxyzabcdefghijklm')\"/></x></xsl:template>"
        '<xsl:template match="list"><enc>'
        '<xsl:apply-templates select="item"/></enc></xsl:template>',
    ),
    # -- sorting ------------------------------------------------------------------
    _items_case(
        "stringsort", "sort",
        '<xsl:template match="list"><sorted>'
        '<xsl:for-each select="item"><xsl:sort select="word"/>'
        '<w><xsl:value-of select="word"/></w></xsl:for-each>'
        "</sorted></xsl:template>",
    ),
    _items_case(
        "numsort", "sort",
        '<xsl:template match="list"><sorted>'
        '<xsl:apply-templates select="item">'
        '<xsl:sort select="value" data-type="number" order="descending"/>'
        "</xsl:apply-templates></sorted></xsl:template>"
        '<xsl:template match="item"><v><xsl:value-of select="value"/></v>'
        "</xsl:template>",
    ),
    _items_case(
        "alphabetize", "sort",
        '<xsl:template match="list"><alpha>'
        '<xsl:for-each select="item">'
        '<xsl:sort select="substring(word, 1, 1)"/>'
        '<xsl:sort select="value" data-type="number"/>'
        '<a><xsl:value-of select="word"/></a></xsl:for-each>'
        "</alpha></xsl:template>",
    ),
    # -- recursion (non-inline mode) ------------------------------------------------
    _items_case(
        "reverser", "recurse",
        '<xsl:template match="list">'
        '<xsl:call-template name="rev"><xsl:with-param name="s"'
        ' select="string(item[1]/word)"/></xsl:call-template></xsl:template>'
        '<xsl:template name="rev"><xsl:param name="s"/>'
        '<xsl:if test="string-length($s) &gt; 0">'
        '<xsl:call-template name="rev"><xsl:with-param name="s"'
        ' select="substring($s, 2)"/></xsl:call-template>'
        '<xsl:value-of select="substring($s, 1, 1)"/></xsl:if>'
        "</xsl:template>",
        notes="named-template recursion: §4.4 non-inline mode",
    ),
    _items_case(
        "bottles", "recurse",
        '<xsl:template match="list">'
        '<xsl:call-template name="verse"><xsl:with-param name="n"'
        ' select="9"/></xsl:call-template></xsl:template>'
        '<xsl:template name="verse"><xsl:param name="n"/>'
        '<xsl:if test="$n &gt; 0">'
        "<verse><xsl:value-of select='$n'/> bottles</verse>"
        '<xsl:call-template name="verse"><xsl:with-param name="n"'
        ' select="$n - 1"/></xsl:call-template></xsl:if></xsl:template>',
    ),
    _items_case(
        "tower", "recurse",
        '<xsl:template match="list">'
        '<xsl:call-template name="hanoi">'
        '<xsl:with-param name="n" select="4"/>'
        '<xsl:with-param name="from" select="\'A\'"/>'
        '<xsl:with-param name="to" select="\'C\'"/>'
        '<xsl:with-param name="via" select="\'B\'"/>'
        "</xsl:call-template></xsl:template>"
        '<xsl:template name="hanoi">'
        '<xsl:param name="n"/><xsl:param name="from"/>'
        '<xsl:param name="to"/><xsl:param name="via"/>'
        '<xsl:if test="$n &gt; 0">'
        '<xsl:call-template name="hanoi">'
        '<xsl:with-param name="n" select="$n - 1"/>'
        '<xsl:with-param name="from" select="$from"/>'
        '<xsl:with-param name="to" select="$via"/>'
        '<xsl:with-param name="via" select="$to"/>'
        "</xsl:call-template>"
        '<move disc="{$n}"><xsl:value-of select="$from"/>-'
        "<xsl:value-of select='$to'/></move>"
        '<xsl:call-template name="hanoi">'
        '<xsl:with-param name="n" select="$n - 1"/>'
        '<xsl:with-param name="from" select="$via"/>'
        '<xsl:with-param name="to" select="$to"/>'
        '<xsl:with-param name="via" select="$from"/>'
        "</xsl:call-template></xsl:if></xsl:template>",
    ),
    _items_case(
        "queens", "recurse",
        '<xsl:template match="list">'
        '<xsl:call-template name="fib"><xsl:with-param name="n"'
        ' select="10"/></xsl:call-template></xsl:template>'
        '<xsl:template name="fib"><xsl:param name="n"/>'
        "<xsl:choose>"
        '<xsl:when test="$n &lt; 2"><xsl:value-of select="$n"/></xsl:when>'
        "<xsl:otherwise><f>"
        '<xsl:call-template name="fib"><xsl:with-param name="n"'
        ' select="$n - 1"/></xsl:call-template>'
        "</f></xsl:otherwise></xsl:choose></xsl:template>",
        notes="search-style recursion (simplified from the original)",
    ),
    # -- features the rewrite cannot handle (functional fallback) --------------------
    _db_case(
        "identity", "copy",
        '<xsl:template match="@* | node()"><xsl:copy>'
        '<xsl:apply-templates select="@* | node()"/></xsl:copy>'
        "</xsl:template>",
        notes="attribute-axis dispatch: falls back to functional evaluation",
    ),
    _db_case(
        "axis", "axes",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row[id = 3]"/></out></xsl:template>'
        '<xsl:template match="row"><r>'
        '<xsl:value-of select="count(ancestor::*)"/></r></xsl:template>',
        notes="ancestor axis: not merged into the view",
    ),
    _db_case(
        "backwards", "axes",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row[id = 7]"/></out></xsl:template>'
        '<xsl:template match="row"><prev><xsl:value-of select='
        '"preceding-sibling::row[1]/id"/></prev></xsl:template>',
    ),
    _db_case(
        "position", "axes",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row"/></out></xsl:template>'
        '<xsl:template match="row"><i><xsl:value-of select="position()"/>'
        "</i></xsl:template>",
        notes="position() outside predicates cannot be rewritten",
    ),
    _db_case(
        "number", "axes",
        '<xsl:template match="table"><out>'
        '<xsl:apply-templates select="row[id &lt; 4]"/></out></xsl:template>'
        '<xsl:template match="row"><n><xsl:number/></n></xsl:template>',
    ),
    _db_case(
        "keys", "keys",
        '<xsl:key name="by-state" match="row" use="state"/>'
        '<xsl:template match="table"><ca>'
        "<xsl:value-of select=\"count(key('by-state', 'CA'))\"/>"
        "</ca></xsl:template>",
    ),
    _sales_case(
        "trend", "axes",
        '<xsl:template match="sales"><out>'
        '<xsl:apply-templates select="product[quantity &gt; 90]"/></out>'
        "</xsl:template>"
        '<xsl:template match="product"><delta><xsl:value-of select='
        '"quantity - preceding-sibling::product[1]/quantity"/></delta>'
        "</xsl:template>",
    ),
    # -- document structure ------------------------------------------------------------
    BenchmarkCase(
        "depth", "structure", gen.TREE_DTD, {},
        _sheet(
            '<xsl:template match="node"><d>'
            '<xsl:apply-templates select="node"/></d></xsl:template>'
            '<xsl:template match="tree"><t>'
            '<xsl:apply-templates select="node"/></t></xsl:template>'
        ),
        lambda size: gen.make_tree_document(max(2, size.bit_length()), 2),
        notes="recursive document structure: §7.2, no sample document",
    ),
    _db_case(
        "breadth", "structure",
        "",  # empty stylesheet: built-in templates only (Table 20)
        notes="§3.6 built-in-only compaction",
    ),
    _groups_case(
        "workbook", "structure",
        '<xsl:template match="catalog"><book>'
        '<xsl:for-each select="group"><sheet name="{gname}">'
        '<xsl:for-each select="entry"><cell><xsl:value-of select="amount"/>'
        "</cell></xsl:for-each></sheet></xsl:for-each></book>"
        "</xsl:template>",
    ),
]


def get_case(name):
    for case in ALL_CASES:
        if case.name == name:
            return case
    raise KeyError("no benchmark case named %r" % name)
