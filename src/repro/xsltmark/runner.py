"""Benchmark case runner.

``prepare_case`` loads one case's synthetic document into a fresh database
with object-relational storage and value indexes; ``run_case`` then executes
it with and without XSLT rewrite, times both, checks the outputs agree, and
records the rewrite classification:

* ``inline`` — fully inlined XQuery, no functions (the paper's headline
  23/40 statistic counts these);
* ``non-inline`` — recursion forced the §4.4 function mode;
* ``fallback`` — the stylesheet (or document structure) could not be
  partially evaluated; functional evaluation is used.

SQL-merge success is tracked separately: a case can compile to inline
XQuery whose SQL merge is unsupported (it still runs functionally).
"""

from __future__ import annotations

import time

from repro.errors import ReproError, RewriteError, SchemaError
from repro.rdb.database import Database
from repro.rdb.infer import infer_view_structure
from repro.rdb.storage import ObjectRelationalStorage
from repro.schema import schema_from_dtd
from repro.xslt.stylesheet import compile_stylesheet
from repro.core.partial_eval import partially_evaluate
from repro.core.sql_rewrite import SqlRewriter
from repro.core.transform import xml_transform
from repro.core.xquery_gen import generate_xquery

CLASS_INLINE = "inline"
CLASS_NON_INLINE = "non-inline"
CLASS_FALLBACK = "fallback"


class PreparedCase:
    """A case loaded into storage, with its compiled artefacts."""

    def __init__(self, case, size, db, storage, stylesheet):
        self.case = case
        self.size = size
        self.db = db
        self.storage = storage
        self.stylesheet = stylesheet


class CaseRun:
    """The measured outcome of one case at one size."""

    def __init__(self, case, size, classification, sql_merged,
                 rewrite_seconds, functional_seconds, outputs_equal,
                 rewrite_stats, functional_stats, strategy):
        self.case = case
        self.size = size
        self.classification = classification
        self.sql_merged = sql_merged
        self.rewrite_seconds = rewrite_seconds
        self.functional_seconds = functional_seconds
        self.outputs_equal = outputs_equal
        self.rewrite_stats = rewrite_stats
        self.functional_stats = functional_stats
        self.strategy = strategy

    @property
    def speedup(self):
        if self.rewrite_seconds <= 0:
            return float("inf")
        return self.functional_seconds / self.rewrite_seconds

    def __repr__(self):
        return (
            "<CaseRun %s size=%d class=%s rewrite=%.4fs functional=%.4fs>"
            % (
                self.case.name, self.size, self.classification,
                self.rewrite_seconds, self.functional_seconds,
            )
        )


def prepare_case(case, size):
    """Build the database and storage for one case at one document size."""
    db = Database()
    document = case.make_document(size)
    schema = schema_from_dtd(case.dtd) if case.dtd.strip() else None
    stylesheet = compile_stylesheet(case.stylesheet)
    storage = None
    if schema is not None:
        try:
            storage = ObjectRelationalStorage(
                db, schema, "bm", column_types=case.column_types
            )
            storage.load(document)
            for element_name in case.indexed_elements:
                storage.create_value_index(element_name)
        except SchemaError:
            storage = None  # recursive/mixed structure: CLOB-style fallback
    if storage is None:
        from repro.rdb.storage import ClobStorage

        storage = ClobStorage(db, "bm")
        storage.load(document)
    return PreparedCase(case, size, db, storage, stylesheet)


def classify_case(case):
    """Compile-time classification of one case (no execution)."""
    stylesheet = compile_stylesheet(case.stylesheet)
    if not case.dtd.strip():
        return CLASS_INLINE, True  # built-in only: Table 21 compact query
    db = Database()
    try:
        storage = ObjectRelationalStorage(
            db, schema_from_dtd(case.dtd), "cl",
            column_types=case.column_types,
        )
    except SchemaError:
        return CLASS_FALLBACK, False
    view_query = storage.make_view_query()
    try:
        structure = infer_view_structure(view_query)
        partial = partially_evaluate(stylesheet, structure.schema)
        module = generate_xquery(partial)
    except ReproError:
        return CLASS_FALLBACK, False
    classification = CLASS_INLINE if not module.functions else CLASS_NON_INLINE
    try:
        SqlRewriter(view_query, structure).rewrite_module(module)
        sql_merged = True
    except RewriteError:
        sql_merged = False
    return classification, sql_merged


def run_case(case, size, repeat=1):
    """Execute one case at one size with both strategies."""
    prepared = prepare_case(case, size)
    classification, sql_merged = classify_case(case)

    rewrite_seconds, rewrite_result = _timed(
        prepared, rewrite=True, repeat=repeat
    )
    functional_seconds, functional_result = _timed(
        prepared, rewrite=False, repeat=repeat
    )

    outputs_equal = (
        rewrite_result.serialized_rows() == functional_result.serialized_rows()
    )
    return CaseRun(
        case, size, classification, sql_merged,
        rewrite_seconds, functional_seconds, outputs_equal,
        rewrite_result.stats, functional_result.stats,
        rewrite_result.strategy,
    )


def _timed(prepared, rewrite, repeat):
    result = None
    start = time.perf_counter()
    for _ in range(repeat):
        result = xml_transform(
            prepared.db, prepared.storage, prepared.stylesheet,
            rewrite=rewrite,
        )
    elapsed = (time.perf_counter() - start) / repeat
    return elapsed, result


def inline_statistics():
    """The paper's §5 statistic: how many of the forty cases compile fully
    inline.  Returns (classification by name, inline count)."""
    from repro.xsltmark.cases import ALL_CASES

    classifications = {}
    for case in ALL_CASES:
        classification, sql_merged = classify_case(case)
        classifications[case.name] = (classification, sql_merged)
    inline_count = sum(
        1 for classification, _ in classifications.values()
        if classification == CLASS_INLINE
    )
    return classifications, inline_count
