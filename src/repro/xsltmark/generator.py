"""Synthetic document generators for the benchmark cases.

All generators are deterministic (index-arithmetic "randomness", no RNG
state) so benchmark runs are exactly reproducible.  Documents are built
through :class:`~repro.xmlmodel.builder.TreeBuilder`, whitespace-free, the
shape data-oriented XMLType instances have in the database.
"""

from __future__ import annotations

from repro.rdb.types import INT
from repro.xmlmodel.builder import TreeBuilder

_FIRST_NAMES = [
    "Al", "Bea", "Carl", "Dina", "Ed", "Fay", "Gus", "Hana", "Ian", "Joy",
    "Kim", "Leo", "Mia", "Ned", "Ona", "Pat", "Quin", "Rae", "Sol", "Tia",
]
_LAST_NAMES = [
    "Adams", "Baker", "Chen", "Diaz", "Evans", "Fox", "Gray", "Hill",
    "Irwin", "Jones", "Kane", "Lee", "Moore", "Nash", "Owens", "Price",
    "Quist", "Reed", "Stone", "Tran",
]
_STREETS = ["Oak St", "Elm Ave", "Main Rd", "Pine Ln", "Lake Dr"]
_CITIES = ["Springfield", "Riverton", "Lakeside", "Hilltop", "Marble"]
_STATES = ["CA", "NY", "TX", "WA", "OR", "MA", "IL", "GA"]
_PRODUCTS = ["widget", "gadget", "sprocket", "gizmo", "doohickey", "cog"]
_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima",
]


DB_DTD = """
<!ELEMENT table (row*)>
<!ELEMENT row (id, firstname, lastname, street, city, state, zip)>
<!ELEMENT id (#PCDATA)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
"""

DB_COLUMN_TYPES = {"id": INT, "zip": INT}


def make_db_document(rows):
    """The XSLTMark db-style record table with ``rows`` rows."""
    builder = TreeBuilder()
    builder.start_element("table")
    for index in range(rows):
        builder.start_element("row")
        _leaf(builder, "id", str(index + 1))
        _leaf(builder, "firstname", _FIRST_NAMES[index % len(_FIRST_NAMES)])
        _leaf(builder, "lastname", _LAST_NAMES[(index * 7) % len(_LAST_NAMES)])
        _leaf(builder, "street",
              "%d %s" % (100 + index % 900, _STREETS[index % len(_STREETS)]))
        _leaf(builder, "city", _CITIES[(index * 3) % len(_CITIES)])
        _leaf(builder, "state", _STATES[(index * 5) % len(_STATES)])
        _leaf(builder, "zip", str(10000 + (index * 37) % 90000))
        builder.end_element()
    builder.end_element()
    return builder.finish()


SALES_DTD = """
<!ELEMENT sales (product*)>
<!ELEMENT product (name, quantity, price, region)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT region (#PCDATA)>
"""

SALES_COLUMN_TYPES = {"quantity": INT, "price": INT}


def make_sales_document(rows):
    """Product sales records (the chart/total workload)."""
    builder = TreeBuilder()
    builder.start_element("sales")
    for index in range(rows):
        builder.start_element("product")
        _leaf(builder, "name", _PRODUCTS[index % len(_PRODUCTS)])
        _leaf(builder, "quantity", str(1 + (index * 13) % 97))
        _leaf(builder, "price", str(5 + (index * 11) % 500))
        _leaf(builder, "region", _STATES[(index * 3) % 4])
        builder.end_element()
    builder.end_element()
    return builder.finish()


ITEMS_DTD = """
<!ELEMENT list (item*)>
<!ELEMENT item (word, value)>
<!ELEMENT word (#PCDATA)>
<!ELEMENT value (#PCDATA)>
"""

ITEMS_COLUMN_TYPES = {"value": INT}


def make_items_document(rows):
    """A flat word/value list (sorting and string-function workloads)."""
    builder = TreeBuilder()
    builder.start_element("list")
    for index in range(rows):
        builder.start_element("item")
        word = "%s%02d" % (_WORDS[(index * 5) % len(_WORDS)], index % 89)
        _leaf(builder, "word", word)
        _leaf(builder, "value", str((index * 17) % 1000))
        builder.end_element()
    builder.end_element()
    return builder.finish()


TREE_DTD = """
<!ELEMENT tree (node*)>
<!ELEMENT node (label, node*)>
<!ELEMENT label (#PCDATA)>
"""


def make_tree_document(depth, fanout=2):
    """A recursive tree (depth-oriented workloads; recursive schema)."""
    builder = TreeBuilder()
    builder.start_element("tree")

    def emit(level, path):
        builder.start_element("node")
        _leaf(builder, "label", "n%s" % path)
        if level < depth:
            for branch in range(fanout):
                emit(level + 1, "%s.%d" % (path, branch))
        builder.end_element()

    emit(1, "0")
    builder.end_element()
    return builder.finish()


GROUPS_DTD = """
<!ELEMENT catalog (group*)>
<!ELEMENT group (gname, entry*)>
<!ELEMENT gname (#PCDATA)>
<!ELEMENT entry (code, amount)>
<!ELEMENT code (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
"""

GROUPS_COLUMN_TYPES = {"amount": INT}


def make_groups_document(groups, entries_per_group):
    """Two-level master/detail data (nested-iteration workloads)."""
    builder = TreeBuilder()
    builder.start_element("catalog")
    for group_index in range(groups):
        builder.start_element("group")
        _leaf(builder, "gname", "group-%02d" % group_index)
        for entry_index in range(entries_per_group):
            builder.start_element("entry")
            _leaf(builder, "code",
                  "c%d-%d" % (group_index, entry_index))
            _leaf(builder, "amount",
                  str((group_index * 31 + entry_index * 7) % 400))
            builder.end_element()
        builder.end_element()
    builder.end_element()
    return builder.finish()


def _leaf(builder, name, value):
    builder.start_element(name)
    builder.text(value)
    builder.end_element()
