"""repro.api — the unified public facade over the transform pipeline.

Three PRs of organic growth left four overlapping entry points
(``xml_transform``, ``compile_transform``/``execute_compiled``,
``XsltRewriter.compile``, ``TransformService.transform``) with divergent
keyword arguments.  This module is the consolidation:

* :class:`Engine` — one object owning a database plus tracer/metrics,
  with the five verbs a caller needs: :meth:`Engine.compile`,
  :meth:`Engine.transform`, :meth:`Engine.transform_stream`,
  :meth:`Engine.transform_many` and :meth:`Engine.explain`;
* :class:`TransformOptions` — the one options dataclass every entry
  point accepts (``rewrite``, ``inline``, ``explain``, ``deadline``,
  ``batch_size``, ...), replacing the loose kwargs, which keep working
  through a deprecation shim (:func:`warn_legacy`, one
  :class:`DeprecationWarning` per call site).

The legacy entry points delegate here, so behaviour (spans, metrics,
fallback accounting) is identical whichever door a caller uses::

    from repro import Engine, TransformOptions

    engine = Engine(db)
    result = engine.transform(storage, stylesheet)
    for chunk in engine.transform_stream(storage, stylesheet):
        send(chunk)
"""

from __future__ import annotations

import enum
import os
import sys
import threading
import warnings
from dataclasses import dataclass, replace as _dc_replace

from repro.core.transform import (
    DEFAULT_CHUNK_CHARS,
    STRATEGY_FUNCTIONAL,
    STRATEGY_SQL,
    CompiledTransform,
    _compile_impl,
    _functional,
    execute_compiled,
    execute_compiled_stream,
    transform_many as _transform_many,
)
from repro.core.xquery_gen import RewriteOptions
from repro.obs import get_tracer, global_metrics
from repro.xslt.stylesheet import Stylesheet, compile_stylesheet

__all__ = [
    "Engine",
    "OptimizerLevel",
    "Strategy",
    "TransformOptions",
    "warn_legacy",
]


class OptimizerLevel(str, enum.Enum):
    """The plan-optimizer levels ``TransformOptions.optimizer_level``
    accepts (strings work too; both validate at construction time)."""

    OFF = "off"
    RULES = "rules"
    COST = "cost"


class Strategy(str, enum.Enum):
    """How the transform should run: ``AUTO`` follows the ``rewrite``
    flag, ``SQL`` insists on the relational rewrite (falling back
    functionally only on unsupported constructs, as the paper's engine
    does), ``FUNCTIONAL`` skips the rewrite entirely."""

    AUTO = "auto"
    SQL = STRATEGY_SQL
    FUNCTIONAL = STRATEGY_FUNCTIONAL


def _validated_choice(field, value, allowed):
    """None stays None; enum members collapse to their value; anything
    else must be one of ``allowed`` or the constructor raises a
    ``ValueError`` naming every valid value — a typo dies here, not
    three layers down in the planner."""
    if value is None:
        return None
    if isinstance(value, enum.Enum):
        value = value.value
    if value not in allowed:
        raise ValueError(
            "invalid %s %r: expected one of %s (or None)"
            % (field, value, ", ".join(repr(item) for item in allowed))
        )
    return value


# -- deprecation shim --------------------------------------------------------------

_PKG_DIR = os.path.dirname(os.path.abspath(__file__))
_warned_sites = set()
_warned_lock = threading.Lock()


def warn_legacy(entry_point, what, instead=None):
    """Emit a :class:`DeprecationWarning` for a legacy kwarg — once per
    (entry point, caller file, caller line), so a hot loop over an old
    call site warns a single time.  ``instead`` overrides the suggested
    replacement (default: the options object).

    The caller site is the first stack frame outside the ``repro``
    package, and the warning's ``stacklevel`` points at it, so ``python
    -W error::DeprecationWarning`` blames the right line.
    """
    depth = 1
    frame = sys._getframe(depth)
    while frame is not None and frame.f_code.co_filename.startswith(_PKG_DIR):
        depth += 1
        frame = frame.f_back
    if frame is None:  # pragma: no cover - internal-only call chains
        frame = sys._getframe(1)
        depth = 1
    site = (entry_point, what, frame.f_code.co_filename, frame.f_lineno)
    with _warned_lock:
        if site in _warned_sites:
            return
        _warned_sites.add(site)
    warnings.warn(
        "%s: passing %s is deprecated; %s instead" % (
            entry_point, what,
            instead or "pass options=TransformOptions(...)",
        ),
        DeprecationWarning,
        stacklevel=depth + 1,
    )


def _reset_warned_sites():
    """Test hook: forget which call sites already warned."""
    with _warned_lock:
        _warned_sites.clear()


# -- options -----------------------------------------------------------------------


@dataclass(frozen=True)
class TransformOptions:
    """The one options object every transform entry point accepts.

    :param rewrite: attempt the XSLT→XQuery→SQL/XML rewrite (falling
        back functionally on unsupported constructs); False forces
        functional evaluation.
    :param inline: force the rewrite's inline mode on/off (None lets the
        pipeline decide, see RewriteOptions.inline_templates §4.4).
        Ignored when ``rewrite_options`` is given.
    :param explain: ``XsltRewriter.compile(..., options=...)`` returns
        the rewrite-decision ledger instead of the outcome (EXPLAIN
        REWRITE without touching data).
    :param deadline: per-request deadline in seconds
        (:class:`repro.serve.TransformService` only — enforced at
        dequeue time).
    :param batch_size: rows per batch on the vectorized executor path.
        None is automatic: row-at-a-time pull for materialized
        execution (``transform``), ``DEFAULT_BATCH_SIZE`` batches for
        ``transform_stream``.
    :param chunk_chars: coalescing target for streamed output chunks.
    :param profile_plan: collect per-plan-node EXPLAIN ANALYZE counters
        on the rewrite path (skipped whenever tracing is disabled).
    :param rewrite_options: a full
        :class:`~repro.core.xquery_gen.RewriteOptions` for per-technique
        ablation; overrides ``inline``.
    :param optimizer_level: plan-optimizer level — ``"off"`` (execute
        the merged plan as emitted), ``"rules"`` (heuristic index
        selection only) or ``"cost"`` (statistics-driven access-path and
        join-strategy selection).  None uses the planner default
        (``cost``).  Compile-relevant: distinct levels cache distinct
        compiled plans.
    :param feedback: run the post-execution Q-error feedback loop
        (:mod:`repro.obs.feedback`) on profiled rewrite executions —
        estimates vs. actuals land in metrics and on
        ``result.feedback``, and an enabled
        :class:`~repro.obs.feedback.FeedbackPolicy` may auto-ANALYZE /
        re-cost.  Runtime-only: never part of the plan-cache key.
    :param strategy: execution strategy — :class:`Strategy` or its
        string value.  ``"auto"``/None follow ``rewrite``;
        ``"sql-rewrite"`` and ``"functional"`` pin the strategy
        explicitly (and override ``rewrite``).  Invalid values raise
        ``ValueError`` at construction.
    :param decorrelate: the correlated-subquery unnesting pass
        (:mod:`repro.rdb.decorrelate`).  None (default) runs it
        automatically at the ``cost`` optimizer level; False disables
        it; True requires the ``cost`` level and raises
        :class:`~repro.errors.PlanError` otherwise.  Compile-relevant:
        part of the plan-cache key.
    """

    rewrite: bool = True
    inline: bool = None
    explain: bool = False
    deadline: float = None
    batch_size: int = None
    chunk_chars: int = DEFAULT_CHUNK_CHARS
    profile_plan: bool = True
    rewrite_options: RewriteOptions = None
    optimizer_level: str = None
    feedback: bool = True
    strategy: str = None
    decorrelate: bool = None

    def __post_init__(self):
        object.__setattr__(self, "optimizer_level", _validated_choice(
            "optimizer_level", self.optimizer_level,
            tuple(level.value for level in OptimizerLevel),
        ))
        object.__setattr__(self, "strategy", _validated_choice(
            "strategy", self.strategy,
            tuple(choice.value for choice in Strategy),
        ))
        if self.decorrelate not in (None, True, False):
            raise ValueError(
                "invalid decorrelate %r: expected True, False or None"
                % (self.decorrelate,)
            )

    def effective_rewrite(self):
        """Whether the relational rewrite should be attempted, after
        ``strategy`` has had its say over the legacy ``rewrite`` flag."""
        if self.strategy in (None, Strategy.AUTO.value):
            return bool(self.rewrite)
        return self.strategy == Strategy.SQL.value

    @classmethod
    def coerce(cls, value, entry_point=None):
        """Normalize what callers pass as ``options``: None → defaults,
        a :class:`TransformOptions` → itself, a dict → keyword arguments,
        and a legacy :class:`RewriteOptions` → wrapped (with a
        deprecation warning when ``entry_point`` names the caller)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, RewriteOptions):
            if entry_point:
                warn_legacy(entry_point, "options=RewriteOptions(...)")
            return cls(rewrite_options=value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            "options must be a TransformOptions, RewriteOptions, dict or "
            "None, not %r" % type(value).__name__
        )

    def replace(self, **changes):
        """A copy with ``changes`` applied (the dataclass is frozen)."""
        return _dc_replace(self, **changes)

    def resolved_rewrite_options(self):
        """The :class:`RewriteOptions` the pipeline should run with, or
        None for the defaults."""
        if self.rewrite_options is not None:
            return self.rewrite_options
        if self.inline is None:
            return None
        return RewriteOptions(inline_templates=bool(self.inline))

    def cache_key(self):
        """The compile-relevant part of these options, as a stable string
        — the serving layer's plan-cache key component.  Runtime-only
        fields (deadline, batch/chunk sizes, profiling) are excluded so
        they never fragment the cache."""
        from repro.rdb.planner import normalize_level

        rewrite_options = self.resolved_rewrite_options()
        token = ""
        if rewrite_options is not None:
            token = ",".join(
                "%s=%r" % (name, getattr(rewrite_options, name))
                for name in RewriteOptions.__slots__
            )
        # normalized so None and the explicit default level share a key
        decorrelate = {None: "auto", True: "on", False: "off"}[self.decorrelate]
        return "rw=%d;opt=%s;dcr=%s;%s" % (
            self.effective_rewrite(), normalize_level(self.optimizer_level),
            decorrelate, token,
        )


# -- the facade --------------------------------------------------------------------


class Engine:
    """The documented front door: one database, five verbs.

    Owns the tracer/metrics pair every operation reports through
    (defaulting to the process-wide instances), so the spans and
    counters are identical whichever entry point — this facade or a
    legacy wrapper — a caller uses.  An optional
    :class:`~repro.obs.recorder.FlightRecorder` additionally receives
    one :class:`~repro.obs.recorder.RequestRecord` per
    :meth:`transform` call (the serve tier wires its own recorder; pass
    one here for engine-level use without a service).

    ``workers`` sizes the serving tier :meth:`serve` builds: 1 (the
    default) keeps everything in-process, >1 scales out to that many
    worker *processes* (escaping the GIL for CPU-bound transforms).
    """

    __slots__ = ("db", "tracer", "metrics", "recorder", "workers")

    def __init__(self, db, tracer=None, metrics=None, recorder=None,
                 workers=1):
        self.db = db
        self.tracer = tracer or get_tracer()
        self.metrics = metrics or global_metrics()
        self.recorder = recorder
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    # -- compile ------------------------------------------------------------------

    def compile(self, source, stylesheet, options=None):
        """The compile half, for reuse: stylesheet compilation, the
        three rewrite stages and plan optimization against this engine's
        database.  Never raises :class:`~repro.errors.RewriteError` — a
        failed rewrite returns a functional-strategy
        :class:`~repro.core.transform.CompiledTransform` carrying the
        categorized error (negative caching)."""
        opts = TransformOptions.coerce(options, entry_point="Engine.compile")
        if not opts.effective_rewrite():
            if not isinstance(stylesheet, Stylesheet):
                with self.tracer.span("compile.stylesheet"):
                    stylesheet = compile_stylesheet(stylesheet)
            return CompiledTransform(stylesheet, STRATEGY_FUNCTIONAL)
        return _compile_impl(
            self.db, source, stylesheet,
            options=opts.resolved_rewrite_options(),
            tracer=self.tracer, metrics=self.metrics,
            optimizer_level=opts.optimizer_level,
            decorrelate=opts.decorrelate,
        )

    # -- execute ------------------------------------------------------------------

    def transform(self, source, stylesheet, options=None, params=None):
        """Apply ``stylesheet`` to every XMLType instance of ``source``;
        returns a :class:`~repro.core.transform.TransformResult`.

        ``stylesheet`` may be markup or a pre-compiled
        :class:`~repro.xslt.stylesheet.Stylesheet`; a pre-compiled
        artifact from :meth:`compile` goes through
        :meth:`execute` instead."""
        opts = TransformOptions.coerce(options,
                                       entry_point="Engine.transform")
        tracer, metrics = self.tracer, self.metrics
        rewrite = opts.effective_rewrite()
        with tracer.span("xml_transform", rewrite=rewrite) as root:
            if rewrite and not params:
                metrics.counter("transform.rewrite_attempts").inc()
                compiled = self.compile(source, stylesheet, options=opts)
                result = execute_compiled(
                    self.db, source, compiled, params=params, tracer=tracer,
                    metrics=metrics, profile_plan=opts.profile_plan,
                    root=root, batch_size=opts.batch_size,
                    feedback=opts.feedback,
                )
            else:
                if not isinstance(stylesheet, Stylesheet):
                    with tracer.span("compile.stylesheet"):
                        stylesheet = compile_stylesheet(stylesheet)
                result = _functional(self.db, source, stylesheet, params,
                                     tracer)
            root.set_attr(strategy=result.strategy)
        if root:
            result.trace = root
        if self.recorder is not None and root:
            self._record(root, result)
        return result

    def _record(self, root, result):
        """Flight-record one finished :meth:`transform` call."""
        from repro.obs.recorder import stage_seconds

        spans = [span.to_dict() for span in root.iter_spans()]
        feedback = result.feedback
        self.recorder.record(
            root.trace_id, name="xml_transform",
            status="ok" if result.fallback_reason is None else "fallback",
            strategy=result.strategy,
            fallback_category=result.fallback_category,
            execute_seconds=(result.stats.elapsed_seconds
                             if result.stats is not None else None),
            total_seconds=root.duration,
            rows=len(result.rows),
            q_error_max=(feedback.max_q_error
                         if feedback is not None else None),
            q_error_triggered=(feedback is not None and feedback.triggered),
            stages=stage_seconds(spans), spans=spans,
            detail_fn=lambda: "%s\n\nEXPLAIN REWRITE:\n%s" % (
                result.report(), result.explain_report().render()),
        )

    def execute(self, source, compiled, options=None, params=None):
        """Run one request over a pre-compiled artifact from
        :meth:`compile` (what the serving layer pays per cache hit)."""
        opts = TransformOptions.coerce(options, entry_point="Engine.execute")
        return execute_compiled(
            self.db, source, compiled, params=params, tracer=self.tracer,
            metrics=self.metrics, profile_plan=opts.profile_plan,
            batch_size=opts.batch_size, feedback=opts.feedback,
        )

    # -- serve --------------------------------------------------------------------

    def serve(self, sources=None, **kwargs):
        """The serving tier for this engine's database.

        ``Engine(db)`` (workers=1) returns a thread-pool
        :class:`~repro.serve.service.TransformService`;
        ``Engine(db, workers=N)`` with N>1 returns a
        :class:`~repro.serve.cluster.ClusterService` of N worker
        *processes* sharing a persistent plan tier — CPU-bound
        transforms then scale past one core.  The cluster tier
        requires ``sources``, a ``{name: source}`` mapping (requests
        name their source; the objects live in the workers).  Extra
        ``kwargs`` pass through to the chosen service constructor
        (``queue_size``, ``artifact_dir``/``artifact_store``,
        ``default_timeout``, ...)."""
        kwargs.setdefault("metrics", self.metrics)
        if self.workers > 1:
            from repro.serve.cluster import ClusterService

            return ClusterService(
                db=self.db, sources=sources or {}, workers=self.workers,
                **kwargs
            )
        from repro.serve.service import TransformService

        return TransformService(self.db, **kwargs)

    def transform_stream(self, source, stylesheet, options=None,
                         params=None):
        """Streaming transform: returns a
        :class:`~repro.core.transform.TransformStream` yielding
        serialized output chunks.  On the SQL strategy no result DOM is
        built — ``stream.stats.docs_materialized`` stays 0 and peak
        buffering is bounded by ``options.chunk_chars`` (tracked in
        ``stream.stats.peak_buffered_bytes``)."""
        opts = TransformOptions.coerce(
            options, entry_point="Engine.transform_stream"
        )
        if opts.effective_rewrite() and not params:
            self.metrics.counter("transform.rewrite_attempts").inc()
            compiled = self.compile(source, stylesheet, options=opts)
        else:
            stylesheet_obj = stylesheet
            if not isinstance(stylesheet_obj, Stylesheet):
                with self.tracer.span("compile.stylesheet"):
                    stylesheet_obj = compile_stylesheet(stylesheet_obj)
            compiled = CompiledTransform(stylesheet_obj, STRATEGY_FUNCTIONAL)
        return execute_compiled_stream(
            self.db, source, compiled, params=params, tracer=self.tracer,
            metrics=self.metrics, profile_plan=opts.profile_plan,
            batch_size=opts.batch_size, chunk_chars=opts.chunk_chars,
            feedback=opts.feedback,
        )

    def transform_many(self, sources, stylesheet, options=None, params=None):
        """One stylesheet over many sources, compiling once per distinct
        source shape; returns the list of results in input order."""
        return _transform_many(
            self.db, sources, stylesheet, options=options, params=params,
            tracer=self.tracer, metrics=self.metrics,
        )

    # -- explain ------------------------------------------------------------------

    def explain(self, source, stylesheet, options=None, analyze=False):
        """EXPLAIN (REWRITE) of the transform, without executing it, as
        an :class:`~repro.obs.explain.ExplainReport` — strategy, rewrite
        decisions, optimized plan with estimates, plus ``.to_json()``
        for the structured form.  ``analyze=True`` executes and
        annotates every plan node with actual rows/batches/timings
        (EXPLAIN ANALYZE) and includes the Q-error feedback.  The
        report renders as the historical text via ``str()``."""
        from repro.obs.explain import ExplainReport

        opts = TransformOptions.coerce(options, entry_point="Engine.explain")
        compiled = self.compile(source, stylesheet, options=opts)
        if analyze:
            result = execute_compiled(
                self.db, source, compiled, tracer=self.tracer,
                metrics=self.metrics, profile_plan=True,
                batch_size=opts.batch_size,
            )
            return result.explain_report()
        fallback_reason = None
        if compiled.error is not None:
            fallback_reason = "compile: %s" % compiled.error
        return ExplainReport(
            query=compiled.query, ledger=compiled.ledger,
            strategy=compiled.strategy, fallback_reason=fallback_reason,
            include_decisions=True,
        )
