"""Derive a structural schema from a DTD internal subset.

Supports the common DTD content models::

    <!ELEMENT name (a, b*, c?)>       sequence
    <!ELEMENT name (a | b | c)>       choice
    <!ELEMENT name (#PCDATA)>         text-only
    <!ELEMENT name (#PCDATA | a)*>    mixed (text + choice children)
    <!ELEMENT name EMPTY>             empty
    <!ELEMENT name ANY>               rejected (no structure to exploit)
    <!ATTLIST name attr CDATA ...>    attribute names recorded

Nested groups are flattened conservatively: inner members keep their own
cardinality joined with the group's (the flattened model never claims more
structure than the original, so rewrites stay sound).
"""

from __future__ import annotations

import re

from repro.errors import SchemaError
from repro.schema.model import (
    CHOICE,
    MANY,
    ONE,
    ONE_OR_MORE,
    OPTIONAL,
    SEQUENCE,
    ElementDecl,
    Particle,
    StructuralSchema,
)

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.:-]+)\s+([^>]+)>")
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([\w.:-]+)\s+([^>]+)>")
_ATT_NAME_RE = re.compile(
    r"([\w.:-]+)\s+(?:CDATA|ID|IDREF|IDREFS|NMTOKEN|NMTOKENS|ENTITY|"
    r"ENTITIES|NOTATION\s*\([^)]*\)|\([^)]*\))\s+"
    r"(?:#REQUIRED|#IMPLIED|#FIXED\s+(?:\"[^\"]*\"|'[^']*')|\"[^\"]*\"|'[^']*')"
)


def schema_from_dtd(dtd_text, root_name=None):
    """Parse DTD declarations and return a :class:`StructuralSchema`.

    :param root_name: the document element type; defaults to the first
        declared element.
    """
    raw_models = {}
    order = []
    for match in _ELEMENT_RE.finditer(dtd_text):
        name, model = match.group(1), match.group(2).strip()
        if name in raw_models:
            raise SchemaError("duplicate <!ELEMENT %s>" % name)
        raw_models[name] = model
        order.append(name)
    if not raw_models:
        raise SchemaError("no <!ELEMENT> declarations found")

    attributes = {}
    for match in _ATTLIST_RE.finditer(dtd_text):
        name, body = match.group(1), match.group(2)
        names = [m.group(1) for m in _ATT_NAME_RE.finditer(body)]
        attributes.setdefault(name, []).extend(names)

    decls = {
        name: ElementDecl(name, attributes=attributes.get(name, []))
        for name in raw_models
    }

    for name, model in raw_models.items():
        _apply_content_model(decls[name], model, decls)

    if root_name is None:
        root_name = order[0]
    if root_name not in decls:
        raise SchemaError("root element %r is not declared" % root_name)
    return StructuralSchema(decls[root_name])


def _apply_content_model(decl, model, decls):
    model = model.strip()
    if model == "EMPTY":
        return
    if model == "ANY":
        raise SchemaError(
            "<!ELEMENT %s ANY> carries no structural information" % decl.name
        )
    if not model.startswith("("):
        raise SchemaError("malformed content model %r" % model)

    group, occurs, rest = _parse_group(model, decls)
    if rest.strip():
        raise SchemaError("trailing content in model %r" % model)
    kind, particles, has_text = group
    decl.has_text = has_text
    if particles:
        decl.group = kind
        # An outer * / + multiplies every member's cardinality.
        if occurs in (MANY, ONE_OR_MORE):
            particles = [Particle(p.decl, MANY) for p in particles]
        elif occurs == OPTIONAL:
            particles = [
                Particle(p.decl, _optionalize(p.occurs)) for p in particles
            ]
        decl.particles = particles


def _optionalize(occurs):
    if occurs in (ONE, OPTIONAL):
        return OPTIONAL
    return MANY


def _parse_group(text, decls):
    """Parse '(' ... ')' occurs?  → ((kind, particles, has_text), occurs, rest)."""
    assert text[0] == "("
    body = text[1:]
    kind = None
    particles = []
    has_text = False
    expect_member = True

    while True:
        body = body.lstrip()
        if not body:
            raise SchemaError("unterminated group")
        if body.startswith(")"):
            body = body[1:]
            break
        if not expect_member:
            if body[0] in ",|":
                member_kind = SEQUENCE if body[0] == "," else CHOICE
                if kind is None:
                    kind = member_kind
                elif kind != member_kind:
                    raise SchemaError(
                        "mixed ',' and '|' connectors in one group"
                    )
                body = body[1:]
                expect_member = True
                continue
            raise SchemaError("malformed content model near %r" % body[:20])

        if body.startswith("#PCDATA"):
            has_text = True
            body = body[len("#PCDATA"):]
        elif body.startswith("("):
            inner, inner_occurs, body = _parse_group(body, decls)
            _, inner_particles, inner_text = inner
            has_text = has_text or inner_text
            # Flatten: join inner cardinalities with the nested group's.
            for particle in inner_particles:
                occurs = particle.occurs
                if inner_occurs in (MANY, ONE_OR_MORE):
                    occurs = MANY
                elif inner_occurs == OPTIONAL:
                    occurs = _optionalize(occurs)
                particles.append(Particle(particle.decl, occurs))
        else:
            match = re.match(r"[\w.:-]+", body)
            if not match:
                raise SchemaError("malformed content model near %r" % body[:20])
            child_name = match.group(0)
            body = body[len(child_name):]
            occurs = ONE
            if body[:1] in ("*", "+", "?"):
                occurs = body[0]
                body = body[1:]
            child_decl = decls.get(child_name)
            if child_decl is None:
                child_decl = ElementDecl(child_name, has_text=True)
                decls[child_name] = child_decl
            particles.append(Particle(child_decl, occurs))
        expect_member = False

    occurs = ONE
    if body[:1] in ("*", "+", "?"):
        occurs = body[0]
        body = body[1:]

    if has_text and particles:
        kind = CHOICE  # mixed content is (#PCDATA | a | b)*
    return (kind or SEQUENCE, particles, has_text), occurs, body
