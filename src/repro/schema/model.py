"""The structural schema model.

This is deliberately simpler than full XML Schema: it captures exactly the
facts the paper's rewrite techniques consume —

* §3.4 children model group: ``sequence`` / ``choice`` / ``all``;
* §3.4 cardinality: at-most-one (LET) vs many (FOR);
* §3.5 parent uniqueness (for removing backward-axis tests);
* §4.2/7.2 recursion (recursive structures fall back to functional
  evaluation, as the paper's implementation does).
"""

from __future__ import annotations

from repro.errors import SchemaError

# Model-group kinds
SEQUENCE = "sequence"
CHOICE = "choice"
ALL = "all"

# Occurrence indicators
ONE = "1"
OPTIONAL = "?"
MANY = "*"
ONE_OR_MORE = "+"

_SINGLE_OCCURS = frozenset([ONE, OPTIONAL])
_VALID_OCCURS = frozenset([ONE, OPTIONAL, MANY, ONE_OR_MORE])
_VALID_GROUPS = frozenset([SEQUENCE, CHOICE, ALL])


class Particle:
    """One child slot: an element declaration plus its cardinality."""

    __slots__ = ("decl", "occurs")

    def __init__(self, decl, occurs=ONE):
        if occurs not in _VALID_OCCURS:
            raise SchemaError("invalid occurrence indicator %r" % occurs)
        self.decl = decl
        self.occurs = occurs

    @property
    def at_most_one(self):
        """True when a LET suffices to bind this child (§3.4)."""
        return self.occurs in _SINGLE_OCCURS

    @property
    def required(self):
        return self.occurs in (ONE, ONE_OR_MORE)

    def __repr__(self):
        suffix = "" if self.occurs == ONE else self.occurs
        return "%s%s" % (self.decl.name, suffix)


class ElementDecl:
    """Declaration of one element type."""

    __slots__ = ("name", "group", "particles", "has_text", "attributes")

    def __init__(self, name, group=None, particles=None, has_text=False,
                 attributes=None):
        if group is not None and group not in _VALID_GROUPS:
            raise SchemaError("invalid model group %r" % group)
        self.name = name
        self.group = group                # None = no element children
        self.particles = particles or []
        self.has_text = has_text
        self.attributes = attributes or []

    @property
    def is_leaf(self):
        return not self.particles

    def particle_for(self, child_name):
        """The particle declaring ``child_name``, or None."""
        for particle in self.particles:
            if particle.decl.name == child_name:
                return particle
        return None

    def child_names(self):
        return [particle.decl.name for particle in self.particles]

    def __repr__(self):
        return "<ElementDecl %s group=%s children=%s>" % (
            self.name, self.group, self.child_names(),
        )


class StructuralSchema:
    """A whole-document structural schema rooted at one element type."""

    def __init__(self, root):
        self.root = root
        self._parents = None

    # -- global analyses -----------------------------------------------------

    def iter_decls(self):
        """All reachable declarations (each yielded once)."""
        seen = set()
        stack = [self.root]
        while stack:
            decl = stack.pop()
            if id(decl) in seen:
                continue
            seen.add(id(decl))
            yield decl
            stack.extend(particle.decl for particle in decl.particles)

    def is_recursive(self):
        """True if any element type can (indirectly) contain itself."""
        visiting = set()
        finished = set()

        def visit(decl):
            if id(decl) in finished:
                return False
            if id(decl) in visiting:
                return True
            visiting.add(id(decl))
            for particle in decl.particles:
                if visit(particle.decl):
                    return True
            visiting.discard(id(decl))
            finished.add(id(decl))
            return False

        return visit(self.root)

    def parents_of(self, name):
        """All element-type names that can be the parent of ``name``.

        Drives §3.5: if an element type has exactly one possible parent, the
        backward parent-axis test in a translated pattern is redundant.
        """
        if self._parents is None:
            parents = {}
            for decl in self.iter_decls():
                for particle in decl.particles:
                    parents.setdefault(particle.decl.name, set()).add(decl.name)
            self._parents = parents
        return self._parents.get(name, set())

    def unique_parent(self, name):
        """The single possible parent name, or None if ambiguous/root."""
        parents = self.parents_of(name)
        if len(parents) == 1:
            return next(iter(parents))
        return None

    def find_decl(self, name):
        """Any reachable declaration with this element name, or None.

        Distinct declarations may share a name; this returns the first in
        traversal order (sufficient for homogeneous schemas; the rewrite
        tracks declarations directly, not by name).
        """
        for decl in self.iter_decls():
            if decl.name == name:
                return decl
        return None

    def validate(self, document):
        """Check a document instance against the schema; returns a list of
        violation strings (empty when valid)."""
        violations = []

        def check(element, decl, path):
            child_elements = element.child_elements()
            names = [child.name.local for child in child_elements]
            allowed = set(decl.child_names())
            for name in names:
                if name not in allowed:
                    violations.append(
                        "%s: unexpected child <%s>" % (path, name)
                    )
            if decl.group == CHOICE and len(child_elements) > 1:
                violations.append(
                    "%s: choice group with %d children" % (path, len(names))
                )
            if decl.group == SEQUENCE:
                expected = [
                    particle.decl.name
                    for particle in decl.particles
                ]
                ordered = [name for name in names if name in allowed]
                rank = {name: index for index, name in enumerate(expected)}
                if any(
                    rank[a] > rank[b]
                    for a, b in zip(ordered, ordered[1:])
                    if a in rank and b in rank
                ):
                    violations.append("%s: sequence order violated" % path)
            for particle in decl.particles:
                count = names.count(particle.decl.name)
                if particle.occurs == ONE and decl.group != CHOICE and count != 1:
                    violations.append(
                        "%s: <%s> occurs %d times, expected 1"
                        % (path, particle.decl.name, count)
                    )
                if particle.occurs == OPTIONAL and count > 1:
                    violations.append(
                        "%s: <%s> occurs %d times, expected at most 1"
                        % (path, particle.decl.name, count)
                    )
            for child in child_elements:
                child_particle = decl.particle_for(child.name.local)
                if child_particle is not None:
                    check(child, child_particle.decl,
                          path + "/" + child.name.local)

        root_element = document.document_element
        if root_element is None:
            return ["document has no element"]
        if root_element.name.local != self.root.name:
            return [
                "root is <%s>, expected <%s>"
                % (root_element.name.local, self.root.name)
            ]
        check(root_element, self.root, "/" + self.root.name)
        return violations


# -- terse constructors (tests, benchmarks) --------------------------------------


def leaf(name, attributes=None):
    """A text-only element declaration."""
    return ElementDecl(name, has_text=True, attributes=attributes)


def seq(name, *children, **kwargs):
    """A sequence-group element; children are Particles or ElementDecls."""
    return _group(name, SEQUENCE, children, kwargs)


def choice(name, *children, **kwargs):
    """A choice-group element."""
    return _group(name, CHOICE, children, kwargs)


def all_group(name, *children, **kwargs):
    """An all-group element."""
    return _group(name, ALL, children, kwargs)


def many(decl):
    """Particle with ``*`` cardinality."""
    return Particle(decl, MANY)


def optional(decl):
    """Particle with ``?`` cardinality."""
    return Particle(decl, OPTIONAL)


def _group(name, kind, children, kwargs):
    particles = [
        child if isinstance(child, Particle) else Particle(child)
        for child in children
    ]
    return ElementDecl(name, group=kind, particles=particles, **kwargs)
