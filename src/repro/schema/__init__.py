"""Structural information about XML documents (paper §3.2).

The partial evaluator needs to know, for each element type: its possible
children, their model group (sequence / choice / all), their cardinality,
whether text content can occur, and whether the structure is recursive.
This package provides:

* :mod:`.model` — the structural schema model
  (:class:`~repro.schema.model.ElementDecl`,
  :class:`~repro.schema.model.Particle`,
  :class:`~repro.schema.model.StructuralSchema`);
* :mod:`.dtd` — deriving a schema from a DTD internal subset;
* :mod:`.sample` — generating the annotated *sample document* of §4.2.

Deriving structure from SQL/XML view definitions lives in
:mod:`repro.rdb.infer` (it needs the relational expression types), and from
XQuery static typing in :mod:`repro.xquery.static_type`.
"""

from repro.schema.model import (
    ALL,
    CHOICE,
    MANY,
    ONE,
    ONE_OR_MORE,
    OPTIONAL,
    SEQUENCE,
    ElementDecl,
    Particle,
    StructuralSchema,
)
from repro.schema.dtd import schema_from_dtd
from repro.schema.sample import ANNOTATION_NS, SampleDocument, generate_sample

__all__ = [
    "ALL",
    "ANNOTATION_NS",
    "CHOICE",
    "ElementDecl",
    "MANY",
    "ONE",
    "ONE_OR_MORE",
    "OPTIONAL",
    "Particle",
    "SEQUENCE",
    "SampleDocument",
    "StructuralSchema",
    "generate_sample",
    "schema_from_dtd",
]
