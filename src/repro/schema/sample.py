"""Sample XML document generation (paper §4.2).

The sample document "captures all the structural information from the input
XMLType but not the actual content values".  Every declared child appears —
for a *choice* group, **all** alternatives are materialised so the traced
execution covers every branch (the conservative stance §4.3 requires); for
a ``*``/``+`` particle a single representative child is emitted.

Model-group and cardinality facts are annotated on the elements with
attributes in a reserved namespace (the paper uses a predefined Oracle XDB
namespace), and the generator also returns a direct node→declaration map,
which is what the partial evaluator actually consumes.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import QName

ANNOTATION_NS = "urn:repro:xdb-annotation"
_ANNOTATION_PREFIX = "xdbann"

_SAMPLE_TEXT = "sample"


class SampleDocument:
    """The generated sample document plus its node→declaration map."""

    def __init__(self, document, decl_of, particle_of):
        self.document = document
        self._decl_of = decl_of          # id(element node) -> ElementDecl
        self._particle_of = particle_of  # id(element node) -> Particle|None

    def decl_for(self, node):
        """The :class:`ElementDecl` a sample element was generated from."""
        return self._decl_of.get(id(node))

    def particle_for(self, node):
        """The :class:`Particle` (cardinality slot) of a sample element;
        None for the root."""
        return self._particle_of.get(id(node))


def generate_sample(schema):
    """Generate the annotated sample document for a structural schema.

    Raises :class:`SchemaError` for recursive schemas — the paper's
    implementation does not handle recursive structures either (§7.2) and
    falls back to functional evaluation.
    """
    if schema.is_recursive():
        raise SchemaError(
            "recursive structural schema: sample generation unsupported"
            " (paper §7.2)"
        )
    builder = TreeBuilder()
    decl_of = {}
    particle_of = {}
    if schema.root.name == "#fragment":
        # A fragment schema (e.g. the statically-typed result of another
        # query): its items sit directly under the document node.
        for particle in schema.root.particles:
            _emit(builder, particle.decl, particle, decl_of, particle_of)
        document = builder.finish()
        decl_of[id(document)] = schema.root
        return SampleDocument(document, decl_of, particle_of)
    _emit(builder, schema.root, None, decl_of, particle_of)
    return SampleDocument(builder.finish(), decl_of, particle_of)


def _emit(builder, decl, particle, decl_of, particle_of):
    namespaces = None
    if particle is None:
        namespaces = {_ANNOTATION_PREFIX: ANNOTATION_NS}
    element = builder.start_element(decl.name, namespaces=namespaces)
    decl_of[id(element)] = decl
    particle_of[id(element)] = particle

    if decl.group is not None:
        builder.attribute(_annotation("group"), decl.group)
    if particle is not None and particle.occurs != "1":
        builder.attribute(_annotation("occurs"), particle.occurs)
    for attribute_name in decl.attributes:
        builder.attribute(attribute_name, _SAMPLE_TEXT)

    for child_particle in decl.particles:
        _emit(builder, child_particle.decl, child_particle, decl_of,
              particle_of)
    if decl.has_text:
        builder.text(_SAMPLE_TEXT)
    builder.end_element()


def _annotation(local):
    return QName(local, ANNOTATION_NS, _ANNOTATION_PREFIX)
