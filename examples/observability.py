#!/usr/bin/env python
"""Observability tour: trace a transform end to end.

Runs the paper's example 1 with a live ``Tracer`` and ``MetricsRegistry``
and prints ``result.report()`` — the span tree over the three compile
stages (partial evaluation -> XQuery generation -> SQL merge) plus plan
execution, with per-stage wall times and paper-relevant attributes
(templates pruned per §3.7/§4.3, backward steps removed per §3.5), and
the EXPLAIN ANALYZE rendering of the executed plan.

Then prints **EXPLAIN REWRITE** — the rewrite-decision ledger with
XSLT -> XQuery -> SQL-plan-node provenance interleaved into the plan —
and exports the metrics in Prometheus text format.

Then runs a stylesheet the rewrite cannot handle (``xsl:number``) to show
the non-silent fallback: a categorized reason on the result, a warning on
the ``repro.obs`` logger, and a labelled fallback counter.

Finally demonstrates the **adaptive feedback loop**: the Q-error record
every profiled execution produces, and what happens when a
``FeedbackPolicy`` is enabled and the planner's estimates miss —
auto-ANALYZE plus a ``plan-feedback`` ledger stage.

Run:  python examples/observability.py
"""

import logging

from repro.core import xml_transform
from repro.obs import (
    FeedbackPolicy,
    JsonLinesSink,
    MetricsRegistry,
    Tracer,
    prometheus_text,
)

from examples.quickstart import STYLESHEET, build_database, dept_emp_view

UNSUPPORTED_STYLESHEET = """<?xml version="1.0"?><xsl:stylesheet
 version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="emp">
<item><xsl:number value="position()"/></item>
</xsl:template>
</xsl:stylesheet>"""


def main():
    logging.basicConfig(level=logging.WARNING,
                        format="%(levelname)s %(name)s: %(message)s")
    db = build_database()
    view = dept_emp_view(db)
    tracer = Tracer()
    metrics = MetricsRegistry()

    print("=" * 72)
    print("Traced rewrite: span tree + EXPLAIN ANALYZE")
    print("=" * 72)
    result = xml_transform(db, view, STYLESHEET,
                           tracer=tracer, metrics=metrics)
    print(result.report())

    print()
    print("=" * 72)
    print("EXPLAIN REWRITE: the decision ledger, anchored to plan nodes")
    print("=" * 72)
    print(result.explain_report().render())
    ledger = result.ledger
    print()
    print("ledger counts: %s" % ledger.counts())
    print("JSON export round-trips: %d decisions, %d bytes"
          % (len(ledger), len(ledger.to_json())))

    print()
    print("=" * 72)
    print("Unsupported stylesheet: categorized, counted fallback")
    print("=" * 72)
    fallback = xml_transform(db, view, UNSUPPORTED_STYLESHEET,
                             tracer=tracer, metrics=metrics)
    print(fallback.report())

    print()
    print("=" * 72)
    print("Adaptive feedback: Q-error per plan node, actions on drift")
    print("=" * 72)
    if result.feedback is not None:
        print("observe-only record from the first transform:")
        for line in result.feedback.render():
            print("  " + line)
    policy = db.feedback.enable(FeedbackPolicy(node_threshold=2.0,
                                               plan_threshold=2.0,
                                               consecutive_misses=1))
    print("enabled %r" % policy)
    judged = xml_transform(db, view, STYLESHEET,
                           tracer=tracer, metrics=metrics)
    feedback = judged.feedback
    if feedback is not None and feedback.triggered:
        print("plan distrusted (max q=%.2f); actions:" % feedback.max_q_error)
        for action in feedback.actions:
            print("  " + action)
        print("stats_version is now %d; EXPLAIN REWRITE gained a "
              "plan-feedback stage" % db.stats_version())
    else:
        print("plan trusted (max q=%s) — estimates track actuals"
              % ("%.2f" % feedback.max_q_error if feedback else "-"))
    db.feedback.disable()

    print()
    print("=" * 72)
    print("Metrics snapshot across both transforms")
    print("=" * 72)
    snapshot = metrics.snapshot()
    for key, value in sorted(snapshot["counters"].items()):
        print("  %-60s %s" % (key, value))
    for key, summary in sorted(snapshot["histograms"].items()):
        print("  %-60s count=%d p50=%.6fs max=%.6fs"
              % (key, summary["count"], summary["p50"], summary["max"]))

    print()
    print("=" * 72)
    print("Prometheus text rendering of the same registry")
    print("=" * 72)
    for line in prometheus_text(metrics).splitlines()[:12]:
        print("  " + line)
    print("  ...")

    print()
    print("Spans can also stream to a sink, e.g. JSON lines:")
    path = "trace.jsonl"
    sink = JsonLinesSink(path)
    sink_tracer = Tracer(sinks=[sink])
    xml_transform(db, view, STYLESHEET,
                  tracer=sink_tracer, metrics=metrics)
    sink.close()
    with open(path, "r", encoding="utf-8") as handle:
        line_count = sum(1 for _ in handle)
    print("  wrote %d span records to %s" % (line_count, path))


if __name__ == "__main__":
    main()
