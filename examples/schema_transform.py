#!/usr/bin/env python
"""Schema-to-schema document transformation at scale.

The paper's motivating use case (§3.2): "XSLT transformation is used to
transform a set of XML documents conforming to schema S1 to another XML
documents conforming to schema S2 ... defined by different organizations."

Here: purchase orders stored object-relationally under schema S1
(order/customer/lines/line) are converted to a partner's S2 shape
(invoice/client/items) — for thousands of stored documents, with the
rewrite turning the whole conversion into one relational query.

Run:  python examples/schema_transform.py [doc_count]
"""

import sys
import time

from repro import Engine, TransformOptions
from repro.rdb import Database, INT
from repro.rdb.storage import ObjectRelationalStorage
from repro.schema import schema_from_dtd
from repro.xmlmodel import parse_document

S1_DTD = """
<!ELEMENT order (orderno, customer, lines)>
<!ELEMENT orderno (#PCDATA)>
<!ELEMENT customer (cname, country)>
<!ELEMENT cname (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT lines (line*)>
<!ELEMENT line (sku, qty, price)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

# S1 -> S2: rename elements, hoist the customer, keep only lines with a
# total above a threshold, add computed line totals.
CONVERT = """<?xml version="1.0"?><xsl:stylesheet version="1.0"
 xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="order">
<invoice ref="{orderno}">
<client><xsl:value-of select="customer/cname"/>
 (<xsl:value-of select="customer/country"/>)</client>
<items><xsl:apply-templates select="lines/line[qty &gt; 5]"/></items>
<grand><xsl:value-of select="sum(lines/line/price)"/></grand>
</invoice>
</xsl:template>
<xsl:template match="line">
<item sku="{sku}"><xsl:value-of select="qty * price"/></item>
</xsl:template>
</xsl:stylesheet>"""


def make_order(index):
    lines = "".join(
        "<line><sku>S%03d</sku><qty>%d</qty><price>%d</price></line>"
        % (line, (index + line) % 12, 10 + (line * 7) % 90)
        for line in range(6)
    )
    return parse_document(
        "<order><orderno>O%05d</orderno>"
        "<customer><cname>Customer %d</cname><country>%s</country></customer>"
        "<lines>%s</lines></order>"
        % (index, index, ["DE", "FR", "JP", "US"][index % 4], lines)
    )


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    db = Database()
    storage = ObjectRelationalStorage(
        db, schema_from_dtd(S1_DTD), "orders",
        column_types={"qty": INT, "price": INT},
    )
    print("loading %d purchase orders into object-relational storage..."
          % count)
    for index in range(count):
        storage.load(make_order(index))
    storage.create_value_index("qty")

    engine = Engine(db)
    start = time.perf_counter()
    rewritten = engine.transform(storage, CONVERT)
    rewrite_seconds = time.perf_counter() - start

    start = time.perf_counter()
    functional = engine.transform(
        storage, CONVERT, options=TransformOptions(rewrite=False))
    functional_seconds = time.perf_counter() - start

    print()
    print("first converted document (S2 shape):")
    print(rewritten.serialized_rows()[0])
    print()
    print("strategy            :", rewritten.strategy)
    print("documents converted :", len(rewritten.rows))
    print("outputs identical   :",
          rewritten.serialized_rows() == functional.serialized_rows())
    print("rewrite time        : %.4fs  %r"
          % (rewrite_seconds, rewritten.stats))
    print("functional time     : %.4fs  %r"
          % (functional_seconds, functional.stats))
    print("speedup             : %.1fx"
          % (functional_seconds / rewrite_seconds))


if __name__ == "__main__":
    main()
