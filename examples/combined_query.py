#!/usr/bin/env python
"""The paper's example 2: combined XSLT + XQuery optimisation.

An XSLT view wraps ``XMLTransform()`` (Table 9); a further ``XMLQuery()``
FLWOR selects table rows from its result (Table 10).  The combined rewrite
composes both rewrites into one optimal relational query — the paper's
Table 11 — which probes the B-tree index on emp.sal and never constructs
the intermediate HTML at all.

Run:  python examples/combined_query.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from quickstart import STYLESHEET, build_database, dept_emp_view

from repro.core import rewrite_combined
from repro.xmlmodel import serialize
from repro.xmlmodel.nodes import Node

USER_XQUERY = "for $tr in ./table/tr return $tr"  # Table 10


def row_markup(value):
    if isinstance(value, list):
        return "".join(serialize(item) for item in value)
    if isinstance(value, Node):
        return serialize(value)
    return "" if value is None else str(value)


def main():
    db = build_database()
    print("user XQuery over the XSLT view (Table 10):", USER_XQUERY)
    print()

    combined, xslt_outcome = rewrite_combined(
        STYLESHEET, dept_emp_view(), USER_XQUERY
    )

    print("--- intermediate: the XSLT view rewritten to SQL/XML ---")
    print(xslt_outcome.sql_text()[:200], "...")
    print()
    print("--- combined optimal query (paper Table 11) ---")
    print(combined.to_sql())
    print()

    rows, stats = db.execute(combined)
    print("--- results ---")
    for row in rows:
        print(row_markup(row[0]))
    print()
    print("execution statistics:", stats)
    print("note: index probes =", stats.index_probes,
          "(the sal predicate runs on the B-tree; the intermediate HTML of"
          " the XSLT view is never built)")
    print()

    # The cost-based planner (optimizer_level="cost", the default) costs
    # every access path against ANALYZE statistics; EXPLAIN shows the
    # estimates it decided on, and every level returns identical rows.
    print("--- cost-based plan (after ANALYZE) ---")
    print(db.sql("ANALYZE"))
    print(db.explain(combined))
    expected = [row_markup(row[0]) for row in rows]
    for level in ("off", "rules", "cost"):
        level_rows, _ = db.execute(combined, level=level)
        markup = [row_markup(row[0]) for row in level_rows]
        marker = "identical output" if markup == expected else "DIFFERENT!"
        print("optimizer_level=%-5s -> %d row(s), %s"
              % (level, len(level_rows), marker))


if __name__ == "__main__":
    main()
