#!/usr/bin/env python
"""Ops plane: trace a served request end to end over HTTP.

Starts a :class:`repro.serve.TransformService` with its HTTP ops plane
(``ops_port=0`` binds an ephemeral port), serves a cold-miss, a
cached-hit and a streamed request — each carrying W3C ``traceparent``
context or minting its own — then walks the four endpoints:

* ``GET /metrics`` — the service's counters, gauges (admission-queue
  depth/capacity/saturation) and latency histograms in Prometheus text
  exposition format;
* ``GET /healthz`` / ``GET /readyz`` — liveness vs. readiness (readiness
  drops at queue saturation, liveness does not);
* ``GET /debug/requests`` — the flight recorder's ring, newest first;
* ``GET /debug/trace/<id>`` — one request's full record: every span of
  its trace (admission -> compile -> plan execution -> stream drain,
  all sharing the request's trace id), per-stage timings, and — for
  slow or tail-sampled requests — the retained EXPLAIN ANALYZE +
  decision-ledger detail.

Run:  python examples/ops.py [--port N] [--hold SECONDS]

``--port`` fixes the ops port (default: ephemeral).  ``--hold`` keeps
the service and ops plane up for that many seconds after the tour so an
external client (curl, a CI step, a browser) can probe the same URLs.
"""

import argparse
import json
import time
import urllib.request

from quickstart import STYLESHEET, build_database, dept_emp_view

from repro.obs import FlightRecorder, new_span_id, new_trace_id
from repro.obs.trace import TraceContext
from repro.serve import TransformService


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=0,
                        help="ops-plane port (default: ephemeral)")
    parser.add_argument("--hold", type=float, default=0.0,
                        help="keep serving this many seconds after the tour")
    args = parser.parse_args()

    db = build_database()
    view_query = dept_emp_view(db)

    # retain full detail for every request so the demo always has an
    # EXPLAIN to show; production keeps the default slow-only policy
    recorder = FlightRecorder(slow_threshold_seconds=0.0)
    with TransformService(db, workers=4, recorder=recorder,
                          ops_port=args.port) as service:
        base = service.ops.url
        print("ops plane listening on %s" % base)

        # -- one upstream-correlated miss, one hit, one stream --------------
        upstream = TraceContext(new_trace_id(), new_span_id())
        cold = service.transform(view_query, STYLESHEET,
                                 traceparent=upstream.to_traceparent())
        warm = service.transform(view_query, STYLESHEET)
        stream = service.transform_stream(view_query, STYLESHEET)
        stream.text()
        print("cold miss joined upstream trace: %s (traceparent in, %s)"
              % (cold.trace_id, cold.trace_id == upstream.trace_id))
        print("cached hit minted its own trace: %s (cache_hit=%s)"
              % (warm.trace_id, warm.cache_hit))
        print("stream drained under trace:      %s" % stream.trace_id)

        # -- /metrics -------------------------------------------------------
        print()
        print("GET /metrics (serve_* families):")
        for line in fetch(base + "/metrics").splitlines():
            if line.startswith("serve_queue") \
                    or line.startswith("serve_completed"):
                print("  " + line)

        # -- probes ---------------------------------------------------------
        health = json.loads(fetch(base + "/healthz"))
        print()
        print("GET /healthz: status=%s queue=%s rejected=%d"
              % (health["status"], health["queue"], health["rejected"]))
        print("GET /readyz:  %s" % fetch(base + "/readyz").strip())

        # -- the flight recorder over HTTP ----------------------------------
        ring = json.loads(fetch(base + "/debug/requests?limit=5"))
        print()
        print("GET /debug/requests: %d record(s), newest first:" %
              ring["count"])
        for record in ring["records"]:
            print("  %(trace_id)s %(status)-4s cache_hit=%(cache_hit)s "
                  "total=%(total_seconds).4fs" % record)

        # -- one full trace -------------------------------------------------
        trace = json.loads(fetch(base + "/debug/trace/" + cold.trace_id))
        print()
        print("GET /debug/trace/%s:" % cold.trace_id)
        print("  stages: %s" % {
            name: round(seconds, 6)
            for name, seconds in sorted(trace["stages"].items())})
        for span in trace["spans"]:
            print("  span %-22s trace=%s parent=%s"
                  % (span["name"], span["trace_id"],
                     span["parent_id"] or "-"))
        detail = trace.get("detail") or ""
        print("  retained detail (%s): %d chars, starts %r"
              % (trace["detail_reason"], len(detail),
                 detail.splitlines()[0] if detail else ""))

        if args.hold:
            print()
            print("holding for %.1fs — probe %s/healthz yourself"
                  % (args.hold, base))
            time.sleep(args.hold)


if __name__ == "__main__":
    main()
