#!/usr/bin/env python
"""Serving: concurrent ``XMLTransform()`` with the compiled-plan cache.

Starts a :class:`repro.serve.TransformService` over the quickstart
database (Tables 1–3), drives it with concurrent clients, and shows the
serving story end to end:

* the first request *compiles* — partial evaluation → XQuery → SQL/XML
  merge → optimize — and the plan lands in the cache;
* every later request for the same (stylesheet, source) *hits*: its
  trace contains no compile span at all, yet EXPLAIN REWRITE still
  renders the full decision ledger preserved from the one compile;
* a closed-loop load run reports throughput, p50/p95/p99 latency and
  the cache hit ratio;
* after schema-affecting DDL, ``invalidate(source=...)`` evicts every
  plan compiled against that source, so the next request recompiles
  against the new physical design.  (Object-relational storage sources
  need no explicit call: index DDL changes their structural
  fingerprint, so stale plans miss automatically.)

Run:  python examples/serving.py
"""

import threading

from quickstart import STYLESHEET, build_database, dept_emp_view

from repro.serve import TransformService, WorkItem, run_load


def main():
    db = build_database()
    view_query = dept_emp_view(db)

    with TransformService(db, workers=4, queue_size=64) as service:
        # -- cold request: compiles, caches ---------------------------------
        cold = service.transform(view_query, STYLESHEET)
        print("cold request: strategy=%s cache_hit=%s"
              % (cold.strategy, cold.cache_hit))

        # -- concurrent warm requests: all hit ------------------------------
        results = []
        lock = threading.Lock()

        def client():
            result = service.transform(view_query, STYLESHEET)
            with lock:
                results.append(result)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hits = sum(1 for result in results if result.cache_hit)
        print("8 concurrent requests: %d cache hits, %d compile(s) total"
              % (hits, service.cache.stats().compiles))

        # -- a cache hit skips compilation but keeps its provenance ---------
        warm = results[0]
        print()
        print("cache-hit report (no compile stages in the trace):")
        print(warm.report())
        print()
        print("cache-hit EXPLAIN REWRITE (ledger preserved from compile):")
        print(warm.explain_report().render())

        # -- closed-loop load -----------------------------------------------
        report = run_load(
            service,
            [WorkItem(view_query, STYLESHEET, name="dept_emp")],
            clients=4, requests_per_client=25,
        )
        print()
        print("load: %d requests, %.0f req/s, hit ratio %.2f"
              % (report.requests, report.throughput_rps, report.hit_ratio))
        print("latency ms: p50=%.3f p95=%.3f p99=%.3f"
              % (report.latency_ms(50), report.latency_ms(95),
                 report.latency_ms(99)))

        # -- schema change invalidates --------------------------------------
        print()
        print("cache entries before DDL: %d" % len(service.cache))
        db.sql("CREATE INDEX ON emp (empno)")
        evicted = service.invalidate(source=view_query)
        print("after CREATE INDEX, invalidate(source) evicted %d plan(s)"
              % evicted)
        fresh = service.transform(view_query, STYLESHEET)
        print("next request recompiles: cache_hit=%s" % fresh.cache_hit)


if __name__ == "__main__":
    main()
