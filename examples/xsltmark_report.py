#!/usr/bin/env python
"""Run the full XSLTMark-style suite and print a report.

For each of the forty cases: the rewrite classification (inline /
non-inline / fallback), whether the SQL merge succeeded, both strategies'
times, and whether their outputs agree.

Run:  python examples/xsltmark_report.py [rows]
"""

import sys

from repro.xsltmark import ALL_CASES
from repro.xsltmark.runner import run_case


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print("%-14s %-9s %-11s %-4s %-10s %-10s %-7s %s"
          % ("case", "area", "class", "sql", "rewrite", "no-rw", "ratio",
             "equal"))
    print("-" * 82)
    inline = 0
    for case in ALL_CASES:
        run = run_case(case, size)
        if run.classification == "inline":
            inline += 1
        print("%-14s %-9s %-11s %-4s %-10.5f %-10.5f %-7.1f %s"
              % (case.name, case.area, run.classification,
                 "yes" if run.sql_merged else "no",
                 run.rewrite_seconds, run.functional_seconds,
                 run.speedup, "yes" if run.outputs_equal else "NO!"))
    print("-" * 82)
    print("fully inline: %d / %d   (paper: 23 / 40)"
          % (inline, len(ALL_CASES)))


if __name__ == "__main__":
    main()
