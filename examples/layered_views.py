#!/usr/bin/env python
"""Cross-language layering — the paper's Figure-1 story end to end.

Four language layers over one set of base tables, all collapsing into
single relational queries:

1. relational tables (SQL DDL/DML text);
2. a SQL/XML XMLType view (Table-3 style, SQL text);
3. an XQuery *redefining* the XML shape (static typing derives its
   structure — §3.2 third bullet);
4. an XSLT stylesheet over the XQuery result (partial evaluation +
   composition), plus XMLExists/extract pushdowns on the SQL/XML view.

Run:  python examples/layered_views.py
"""

from repro.core import (
    rewrite_extract,
    rewrite_xml_exists,
    rewrite_xslt_over_xquery,
)
from repro.rdb import Database
from repro.rdb.infer import infer_view_structure
from repro.xmlmodel import parse_document, serialize, serialize_children
from repro.xmlmodel.nodes import Node
from repro.xquery import parse_xquery
from repro.xquery.evaluator import evaluate_module, sequence_to_document


def markup(value):
    if isinstance(value, list):
        return "".join(serialize(item) for item in value)
    if isinstance(value, Node):
        return serialize(value)
    return "" if value is None else str(value)


def main():
    db = Database()
    db.sql("CREATE TABLE team (tid INT, tname TEXT)")
    db.sql(
        "CREATE TABLE player (pid INT, pname TEXT, goals INT, tid INT)"
    )
    db.sql("INSERT INTO team VALUES (1, 'Rovers'), (2, 'United')")
    db.sql(
        "INSERT INTO player VALUES"
        " (10, 'Ana', 12, 1), (11, 'Ben', 3, 1),"
        " (12, 'Cora', 9, 2), (13, 'Dev', 15, 2)"
    )
    db.sql("CREATE INDEX ON player (goals)")

    # Layer 2: the XMLType view, in SQL text
    db.sql("""
        CREATE VIEW team_xml AS
        SELECT XMLElement("team",
                 XMLElement("tname", tname),
                 XMLElement("squad",
                   (SELECT XMLAgg(XMLElement("player",
                      XMLElement("pname", pname),
                      XMLElement("goals", goals)))
                    FROM player WHERE player.tid = team.tid))) AS content
        FROM team
    """)
    view_query = db.view("team_xml").query

    print("=== XMLExists pushdown (teams with a 10+ goal scorer) ===")
    exists_query = rewrite_xml_exists(
        view_query, "/team/squad/player[goals >= 10]"
    )
    rows, stats = db.execute(exists_query)
    for row in rows:
        print(" ", serialize(row[0])[:60], "...")
    print("  stats:", stats)

    print()
    print("=== extract pushdown (all player names per team) ===")
    extract_query = rewrite_extract(view_query, "/team/squad/player/pname")
    rows, _ = db.execute(extract_query)
    for row in rows:
        print(" ", markup(row[0]))

    # Layer 3: an XQuery reshaping the view's XML
    reshape = parse_xquery(
        "declare variable $t := .;\n"
        "<scorers team=\"{fn:string($t/team/tname)}\">{"
        " for $p in $t/team/squad/player[goals > 5]"
        " return <s>{fn:string($p/pname)}</s>"
        "}</scorers>"
    )

    # Layer 4: XSLT over the XQuery result, composed by static typing
    stylesheet = (
        '<xsl:stylesheet version="1.0"'
        ' xmlns:xsl="http://www.w3.org/1999/XSL/Transform">'
        '<xsl:template match="scorers"><h3><xsl:value-of select="@team"/>'
        ": <xsl:value-of select='count(s)'/> scorer(s)</h3>"
        '<ol><xsl:apply-templates select="s"/></ol></xsl:template>'
        '<xsl:template match="s"><li><xsl:value-of select="."/></li>'
        "</xsl:template></xsl:stylesheet>"
    )
    structure = infer_view_structure(view_query)
    composed, outcome = rewrite_xslt_over_xquery(
        stylesheet, reshape, structure.schema
    )
    print()
    print("=== composed XSLT-over-XQuery (static typing, %s) ==="
          % ("inline" if outcome.inline_mode else "non-inline"))
    view_rows, _ = db.execute(view_query)
    for row in view_rows:
        from repro.xmlmodel.builder import TreeBuilder

        builder = TreeBuilder()
        builder.copy_node(row[0])
        result = evaluate_module(composed, builder.finish())
        print(" ", serialize_children(sequence_to_document(result)))


if __name__ == "__main__":
    main()
