#!/usr/bin/env python
"""Streaming: batched execution with incremental XML emission.

Runs the quickstart transform (Tables 1–3, Table-5 stylesheet) through
``Engine.transform_stream`` and shows the streaming story end to end:

* the rewritten plan executes *vectorized* — operators exchange row
  batches instead of single rows — and the result column is serialized
  by the incremental SQL/XML emitter, so chunks of output text flow out
  while the plan is still running and no result document is ever built
  (``docs_materialized`` stays 0, ``peak_buffered_bytes`` stays tiny);
* chunk concatenation is byte-identical to the materialized transform;
* ``Engine.transform_many`` amortizes one compiled plan over a batch of
  same-shaped documents — each extra document pays only execution.

Run:  python examples/streaming.py
"""

from quickstart import STYLESHEET, build_database, dept_emp_view

from repro import Engine, TransformOptions


def main():
    db = build_database()
    view_query = dept_emp_view(db)
    engine = Engine(db)

    # -- stream: chunks flow while the plan runs ---------------------------
    print("=" * 72)
    print("Streaming transform (batched plan -> incremental emitter)")
    print("=" * 72)
    stream = engine.transform_stream(
        view_query, STYLESHEET,
        options=TransformOptions(chunk_chars=256),
    )
    chunks = []
    for index, chunk in enumerate(stream):
        chunks.append(chunk)
        print("chunk %d: %d chars" % (index, len(chunk)))
    print("strategy            :", stream.strategy)
    print("output rows         :", stream.stats.output_rows)
    print("batches             :", stream.stats.batches)
    print("docs materialized   :", stream.stats.docs_materialized)
    print("peak buffered bytes :", stream.stats.peak_buffered_bytes)

    # -- byte-identical with the materialized path -------------------------
    materialized = engine.transform(view_query, STYLESHEET)
    identical = "".join(chunks) == "".join(materialized.serialized_rows())
    print("byte-identical with materialized transform:", identical)

    # -- transform_many: one compile, N executions -------------------------
    print()
    print("=" * 72)
    print("transform_many over same-shaped databases")
    print("=" * 72)
    batch = []
    for _ in range(5):
        doc_db = build_database()
        batch.append((doc_db, dept_emp_view(doc_db)))
    results = engine.transform_many(batch, STYLESHEET)
    print("documents transformed:", len(results))
    print("strategies           :",
          sorted({result.strategy for result in results}))
    print("all equal            :",
          all(result.serialized_rows() == results[0].serialized_rows()
              for result in results))


if __name__ == "__main__":
    main()
