#!/usr/bin/env python
"""Quickstart: the paper's example 1, end to end.

Creates the dept/emp tables (Tables 1–2), the dept_emp SQL/XML view
(Table 3), and applies the Table-5 stylesheet through ``Engine`` —
first with the XSLT rewrite (partial evaluation → XQuery → SQL/XML), then
functionally — showing the generated XQuery (Table 8), the merged SQL
(Table 7), the transformation results (Table 6), and the execution
statistics that make the rewrite fast.

Run:  python examples/quickstart.py
"""

from repro import Engine, TransformOptions
from repro.rdb import Database

STYLESHEET = """<?xml version="1.0"?><xsl:stylesheet version="1.0"
 xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match="emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>"""


def build_database():
    """Tables 1 and 2, plus the sal index, in plain SQL."""
    db = Database()
    db.sql("CREATE TABLE dept (deptno INT, dname TEXT, loc TEXT)")
    db.sql(
        "CREATE TABLE emp (empno INT, ename TEXT, job TEXT, sal INT,"
        " deptno INT)"
    )
    db.sql(
        "INSERT INTO dept VALUES (10, 'ACCOUNTING', 'NEW YORK'),"
        " (40, 'OPERATIONS', 'BOSTON')"
    )
    db.sql(
        "INSERT INTO emp VALUES"
        " (7782, 'CLARK', 'MANAGER', 2450, 10),"
        " (7934, 'MILLER', 'CLERK', 1300, 10),"
        " (7954, 'SMITH', 'VP', 4900, 40)"
    )
    db.sql("CREATE INDEX ON emp (sal)")
    return db


def dept_emp_view(db=None):
    """Table 3 — verbatim: the XMLType view over dept and emp."""
    query_db = db or build_database()
    query_db.sql("""
        CREATE VIEW dept_emp AS
        SELECT
          XMLElement("dept",
            XMLElement("dname", dname),
            XMLElement("loc", loc),
            XMLElement("employees",
              (SELECT XMLAgg(XMLElement("emp",
                 XMLElement("empno", empno),
                 XMLElement("ename", ename),
                 XMLElement("sal", sal)))
               FROM emp
               WHERE emp.deptno = dept.deptno))) AS dept_content
        FROM dept
    """)
    return query_db.view("dept_emp").query


def main():
    db = build_database()
    view = dept_emp_view(db)

    print("=" * 72)
    print("XSLT rewrite path (partial evaluation -> XQuery -> SQL/XML)")
    print("=" * 72)
    engine = Engine(db)
    result = engine.transform(view, STYLESHEET)
    print("strategy:", result.strategy)
    print()
    print("--- generated XQuery (paper Table 8) ---")
    print(result.outcome.xquery_text())
    print("--- merged SQL/XML query (paper Table 7) ---")
    print(result.outcome.sql_text())
    print()
    print("--- results (paper Table 6) ---")
    for row in result.serialized_rows(method="html"):
        print(row)
        print()
    print("execution statistics:", result.stats)

    print("=" * 72)
    print("Functional (no-rewrite) path for comparison")
    print("=" * 72)
    functional = engine.transform(
        view, STYLESHEET, options=TransformOptions(rewrite=False))
    print("strategy:", functional.strategy)
    print("execution statistics:", functional.stats)
    print()
    print("outputs identical:",
          result.serialized_rows() == functional.serialized_rows())


if __name__ == "__main__":
    main()
