"""Guard: the observability layer, when tracing is disabled, costs noise.

The hot path (plan execution) is permanently instrumented — ``iter_rows``
checks for a profiler, ``Query.execute`` stamps ``elapsed_seconds``, spans
wrap the stages.  With tracing disabled those reduce to an attribute check
and a couple of ``perf_counter`` calls per *query* (not per row), so the
fig2 micro case must run within 5% of the bare closure.  Measured as
min-of-batches to squeeze out scheduler noise, with a couple of retries so
one noisy neighbour does not fail CI.
"""

import time

from benchmarks.helpers import PreparedBenchmark
from repro.obs import Tracer

BATCH = 40
ROUNDS = 5
MARGIN = 1.05
ATTEMPTS = 3


def _best_batch_seconds(callable_):
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(BATCH):
            callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracing_overhead_within_noise():
    bench = PreparedBenchmark("dbonerow", 500)
    tracer = Tracer(enabled=False)

    def plain():
        bench.sql_query.execute(bench.db)

    def instrumented():
        # the xml_transform shape with tracing off: disabled spans around
        # the same execution (each yields NULL_SPAN and returns)
        with tracer.span("xml_transform"):
            with tracer.span("plan.execute"):
                bench.sql_query.execute(bench.db)

    # warm-up
    plain()
    instrumented()

    last_ratio = None
    for _ in range(ATTEMPTS):
        plain_seconds = _best_batch_seconds(plain)
        instrumented_seconds = _best_batch_seconds(instrumented)
        last_ratio = instrumented_seconds / plain_seconds
        if last_ratio <= MARGIN:
            return
    raise AssertionError(
        "disabled-tracing overhead %.1f%% exceeds %.0f%%"
        % ((last_ratio - 1.0) * 100.0, (MARGIN - 1.0) * 100.0)
    )


def test_profiling_is_off_by_default():
    bench = PreparedBenchmark("dbonerow", 500)
    _, stats = bench.sql_query.execute(bench.db)
    assert stats.profiler is None


def test_disabled_tracer_allocates_no_spans():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything")
    assert span is tracer.span("anything-else")  # the shared null span
