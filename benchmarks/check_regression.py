#!/usr/bin/env python
"""Benchmark regression gate.

Compares a fresh ``BENCH_obs.json`` (from ``benchmarks/run_figures.py``)
against the committed ``benchmarks/baseline.json`` and fails when any
figure case's *rewrite-path* best time slows down by more than the
threshold (default 25%).

Two defences against noise.  Machines differ, so absolute times are
first calibrated: the median ratio of new/baseline **no-rewrite**
(functional) times across all shared cases estimates the host-speed
factor, and each rewrite time is judged against
``baseline * calibration * (1 + threshold)``.  The functional path
exercises the same interpreter and data structures, so it is a decent
clock for "this machine is simply slower" — while a genuine rewrite
regression moves the rewrite time *relative to* it.  And the fastest
rewrite cases finish in ~100µs, where scheduler jitter swamps any
ratio, so a case only counts as regressed when the slowdown also
exceeds ``--min-delta`` absolute seconds (default 2ms).  Per-case
times are min-of-repeats — the standard microbenchmark statistic.

Usage::

    python benchmarks/run_figures.py --sizes 500,1000,2000 --fig3-size 800 \
        --repeat 3 --obs-out BENCH_obs.json
    python benchmarks/check_regression.py BENCH_obs.json

    # refresh the committed baseline (same run_figures parameters!)
    python benchmarks/check_regression.py BENCH_obs.json --update

Exit status: 0 when every shared case is within the threshold, 1 on any
regression or when the artifacts share no cases.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baseline.json")
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_DELTA = 0.002


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def case_times(artifact):
    """``{case_key: (rewrite_best, functional_best)}`` for timed cases."""
    times = {}
    for key, case in artifact.get("cases", {}).items():
        seconds = case.get("seconds")
        if not seconds:
            continue  # e.g. the inline_stat entry carries no timings
        rewrite = _best(seconds.get("rewrite", {}))
        functional = _best(seconds.get("no-rewrite", {}))
        if rewrite and functional:
            times[key] = (rewrite, functional)
    return times


def _best(summary):
    return summary.get("min") or summary.get("p50")


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def calibration_factor(baseline, fresh, shared):
    """Host-speed factor: median new/old ratio of functional medians."""
    ratios = [fresh[key][1] / baseline[key][1] for key in shared]
    return _median(ratios)


def check(baseline_artifact, fresh_artifact, threshold=DEFAULT_THRESHOLD,
          min_delta=DEFAULT_MIN_DELTA, out=None):
    """Print the per-case verdicts; return the list of regressed keys."""
    out = out if out is not None else sys.stdout
    baseline = case_times(baseline_artifact)
    fresh = case_times(fresh_artifact)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("no shared benchmark cases between baseline and fresh "
              "artifact", file=out)
        return ["<no shared cases>"]
    factor = calibration_factor(baseline, fresh, shared)
    print("host calibration factor (functional-path median): %.3f" % factor,
          file=out)
    print("%-24s %-12s %-12s %-8s %s"
          % ("case", "baseline", "fresh", "ratio", "verdict"), file=out)
    regressed = []
    for key in shared:
        base_rewrite = baseline[key][0] * factor
        new_rewrite = fresh[key][0]
        ratio = new_rewrite / base_rewrite
        verdict = "ok"
        if ratio > 1.0 + threshold and new_rewrite - base_rewrite > min_delta:
            verdict = "REGRESSION (>%d%%)" % round(threshold * 100)
            regressed.append(key)
        print("%-24s %-12.5f %-12.5f %-8.2f %s"
              % (key, base_rewrite, new_rewrite, ratio, verdict), file=out)
    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print("note: %d baseline case(s) absent from fresh artifact: %s"
              % (len(missing), ", ".join(missing)), file=out)
    return regressed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="fresh BENCH_obs.json to check")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="committed baseline artifact")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--min-delta", type=float,
                        default=DEFAULT_MIN_DELTA,
                        help="absolute slowdown (seconds) below which a "
                             "case never counts as regressed")
    parser.add_argument("--update", action="store_true",
                        help="copy the fresh artifact over the baseline "
                             "instead of checking")
    args = parser.parse_args(argv)
    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print("baseline updated: %s" % args.baseline)
        return 0
    if not os.path.exists(args.baseline):
        print("no baseline at %s — seed one with --update" % args.baseline)
        return 1
    regressed = check(load_artifact(args.baseline), load_artifact(args.fresh),
                      args.threshold, args.min_delta)
    if regressed:
        print("FAIL: %d case(s) regressed: %s"
              % (len(regressed), ", ".join(regressed)))
        return 1
    print("PASS: no rewrite-path regression beyond %d%%"
          % round(args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
