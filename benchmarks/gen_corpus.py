#!/usr/bin/env python
"""Deterministic xsltmark-style corpus scaler for huge-document runs.

The xsltmark generators (:mod:`repro.xsltmark.generator`) produce the
seed-size documents the benchmark suite uses.  This module scales that
corpus up — 10x, 100x, any integer factor — **without materializing the
scaled document**: :func:`iter_tree_xml` is a generator of markup chunks,
so a 100x document can be streamed into
:meth:`~repro.rdb.treestorage.TreeStorage.load_stream` while the full
text never exists in memory at once.  Everything is a pure function of
``(scale, depth, fanout)``: two runs, or the DOM and streaming ingest
paths, always see byte-identical input.

The document shape follows the xsltmark ``TREE_DTD``::

    <tree> ( <node> <label>text</label> <node>* </node> )* </tree>

with ``SECTIONS_PER_SCALE`` independent depth-``depth`` subtrees per unit
of scale, so element counts grow linearly with ``scale``.

Usage as a script (writes the serialized corpus to stdout or a file)::

    python benchmarks/gen_corpus.py --scale 10 --out corpus_10x.xml
"""

from __future__ import annotations

import argparse
import sys

# Scale 1 mirrors the seed workload: a depth-4 / fanout-3 subtree
# (1+3+9+27 = 40 <node> elements and 40 <label> leaves per subtree).
SECTIONS_PER_SCALE = 1
DEFAULT_DEPTH = 4
DEFAULT_FANOUT = 3


def nodes_per_section(depth=DEFAULT_DEPTH, fanout=DEFAULT_FANOUT):
    """``<node>`` elements in one subtree: 1 + f + f^2 + ... + f^(d-1)."""
    total, width = 0, 1
    for _ in range(depth):
        total += width
        width *= fanout
    return total


def corpus_node_count(scale, depth=DEFAULT_DEPTH, fanout=DEFAULT_FANOUT):
    """``<node>`` elements in the whole scaled corpus."""
    return SECTIONS_PER_SCALE * scale * nodes_per_section(depth, fanout)


def iter_tree_xml(scale, depth=DEFAULT_DEPTH, fanout=DEFAULT_FANOUT):
    """Yield the scaled corpus as markup chunks (one tag-ish per chunk).

    Deterministic: labels encode the (section, path) coordinates, so the
    same arguments always produce the same bytes.
    """
    yield "<tree>"
    for section in range(SECTIONS_PER_SCALE * scale):
        for chunk in _subtree(section, "0", 1, depth, fanout):
            yield chunk
    yield "</tree>"


def _subtree(section, path, level, depth, fanout):
    yield "<node>"
    yield "<label>s%d-n%s</label>" % (section, path)
    if level < depth:
        for branch in range(fanout):
            for chunk in _subtree(section, "%s.%d" % (path, branch),
                                  level + 1, depth, fanout):
                yield chunk
    yield "</node>"


def tree_xml(scale, depth=DEFAULT_DEPTH, fanout=DEFAULT_FANOUT):
    """The scaled corpus as one string (for DOM-path comparisons)."""
    return "".join(iter_tree_xml(scale, depth, fanout))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=10)
    parser.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    parser.add_argument("--fanout", type=int, default=DEFAULT_FANOUT)
    parser.add_argument("--out", default="-",
                        help="output file ('-' for stdout)")
    args = parser.parse_args(argv)
    chunks = iter_tree_xml(args.scale, args.depth, args.fanout)
    if args.out == "-":
        for chunk in chunks:
            sys.stdout.write(chunk)
        sys.stdout.write("\n")
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            for chunk in chunks:
                handle.write(chunk)
        total = corpus_node_count(args.scale, args.depth, args.fanout)
        print("wrote %s (%d <node> elements)" % (args.out, total))
    return 0


if __name__ == "__main__":
    sys.exit(main())
