#!/usr/bin/env python
"""Adaptive-feedback benchmark: the Q-error loop, drift to recovery.

Usage::

    python benchmarks/run_feedback.py [--scales 40,160] [--repeat 3]
                                      [--out BENCH_feedback.json] [--smoke]

Two case families over a scaled version of the paper's dept/emp example
(each scale = number of ``dept`` documents, each with a skewed salary
distribution so the ``sal > 2000`` probe has a non-default
selectivity):

* **loop** — the acceptance scenario end to end.  The *drifted* side
  (``no-rewrite``) times the transform against the plan the cost
  planner picks from default selectivities (no statistics); the
  *recovered* side (``rewrite``) times it after one pass of the
  feedback loop — the policy observed a Q-error above threshold,
  auto-ANALYZEd the offending tables and the serve tier evicted the
  distrusted compiled plan (``reason=recost``).  Checks: the drifted
  Q-error really exceeded the threshold, the recovered one really
  dropped below it, the eviction happened, and both plans return
  identical rows.
* **overhead** — what observation costs when nothing is wrong:
  the same transform on an analyzed database with feedback on
  (``rewrite``) vs. ``TransformOptions(feedback=False)``
  (``no-rewrite``).  Check: Q-error histograms were really recorded on
  the observed side.

The ``--out`` artifact (default ``BENCH_feedback.json``) follows the
``BENCH_obs.json`` shape — ``feedback/<case>/<scale>`` entries whose
``seconds`` blocks feed ``check_regression.py`` — plus a ``feedback``
block with the observed Q-errors and actions.  ``--smoke`` shrinks
everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import Engine, TransformOptions
from repro.obs import FeedbackPolicy, MetricsRegistry
from repro.rdb import Database, INT
from repro.rdb.storage import ObjectRelationalStorage
from repro.schema import schema_from_dtd
from repro.serve import TransformService
from repro.serve.cache import EVICT_RECOST
from repro.xmlmodel import parse_document

from tests.core.paper_example import DEPT_DTD, EXAMPLE1_STYLESHEET

DEFAULT_SCALES = (40, 160)
THRESHOLD = 4.0  # the policy both families are judged against


def summarize(latencies):
    """A histogram-summary-shaped dict (seconds) from raw samples."""
    if not latencies:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p95": None}
    ordered = sorted(latencies)

    def pct(p):
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    return {
        "count": len(ordered),
        "sum": sum(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": pct(50),
        "p95": pct(95),
    }


def dept_doc(index, emps_per_dept):
    """One scaled dept document; ~1 in 8 employees beats sal > 2000."""
    emps = []
    for e in range(emps_per_dept):
        empno = index * 1000 + e
        sal = 2500 if (index + e) % 8 == 0 else 900 + (e % 7) * 100
        emps.append("<emp><empno>%d</empno><ename>E%d</ename>"
                    "<sal>%d</sal></emp>" % (empno, empno, sal))
    return ("<dept><dname>D%d</dname><loc>L%d</loc><employees>%s"
            "</employees></dept>" % (index, index % 5, "".join(emps)))


def make_storage(scale, emps_per_dept=8):
    db = Database()
    storage = ObjectRelationalStorage(
        db, schema_from_dtd(DEPT_DTD), "xd",
        column_types={"sal": INT, "empno": INT},
    )
    for index in range(scale):
        storage.load(parse_document(dept_doc(index, emps_per_dept)))
    return db, storage


def timed_transform(engine, storage, repeat, feedback):
    options = TransformOptions(feedback=feedback)
    samples, result = [], None
    for _ in range(repeat):
        start = time.perf_counter()
        result = engine.transform(storage, EXAMPLE1_STYLESHEET,
                                  options=options)
        samples.append(time.perf_counter() - start)
    return samples, result


def run_loop(scale, repeat):
    """Drift -> trigger -> recover; time both sides of the loop."""
    db, storage = make_storage(scale)
    engine = Engine(db, metrics=MetricsRegistry())

    # drifted: the default-statistics plan (observe-only, no actions)
    drift_seconds, drift_result = timed_transform(
        engine, storage, repeat, feedback=True)
    q_before = (drift_result.feedback.max_q_error
                if drift_result.feedback else None)

    # one pass of the loop through the serve tier
    metrics = MetricsRegistry()
    policy = FeedbackPolicy(node_threshold=THRESHOLD,
                            plan_threshold=THRESHOLD,
                            consecutive_misses=1)
    with TransformService(db, workers=1, metrics=metrics,
                          feedback_policy=policy) as service:
        triggered = service.transform(storage, EXAMPLE1_STYLESHEET)
        feedback = triggered.transform.feedback
        recost_evictions = service.cache.stats().evictions.get(
            EVICT_RECOST, 0)

    # recovered: statistics are in place, the replan is trusted
    recovered_seconds, recovered_result = timed_transform(
        engine, storage, repeat, feedback=True)
    q_after = (recovered_result.feedback.max_q_error
               if recovered_result.feedback else None)

    entry = {
        "seconds": {
            "rewrite": summarize(recovered_seconds),
            "no-rewrite": summarize(drift_seconds),
        },
        "feedback": {
            "q_before": q_before,
            "q_after": q_after,
            "actions": list(feedback.actions) if feedback else [],
            "recost_evictions": recost_evictions,
            "stats_version": db.stats_version(),
        },
        "checks": {
            "drift_detected": bool(q_before and q_before >= THRESHOLD),
            "loop_triggered": bool(feedback and feedback.triggered),
            "recost_evicted": recost_evictions >= 1,
            "recovered": bool(q_after and q_after < THRESHOLD),
            "rows_match": (drift_result.serialized_rows()
                           == recovered_result.serialized_rows()),
        },
    }
    return entry, q_before, q_after


def run_overhead(scale, repeat):
    """Observation cost on a healthy, analyzed database."""
    db, storage = make_storage(scale)
    db.analyze()
    metrics = MetricsRegistry()
    engine = Engine(db, metrics=metrics)
    off_seconds, off_result = timed_transform(
        engine, storage, repeat, feedback=False)
    on_seconds, on_result = timed_transform(
        engine, storage, repeat, feedback=True)
    qerror_samples = sum(
        histogram.count for histogram in metrics.histograms("planner.qerror")
    )
    entry = {
        "seconds": {
            "rewrite": summarize(on_seconds),
            "no-rewrite": summarize(off_seconds),
        },
        "feedback": {
            "qerror_samples": qerror_samples,
            "max_q_error": (on_result.feedback.max_q_error
                            if on_result.feedback else None),
        },
        "checks": {
            "qerror_recorded": qerror_samples > 0,
            "off_side_unobserved": off_result.feedback is None,
            "rows_match": (on_result.serialized_rows()
                           == off_result.serialized_rows()),
        },
    }
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=",".join(
        str(scale) for scale in DEFAULT_SCALES))
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default="BENCH_feedback.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scales = "20"
        args.repeat = 1

    scales = [int(scale) for scale in args.scales.split(",") if scale]
    cases = {}
    failures = []
    print("Feedback benchmark: scales %s, repeat %d, threshold %.1f"
          % (scales, args.repeat, THRESHOLD))
    print("%-24s %-12s %-12s %s"
          % ("case", "drift-p50", "recover-p50", "checks"))

    def report(key, entry, note=""):
        cases[key] = entry
        ok = all(entry["checks"].values())
        if not ok:
            failures.append("%s: %s" % (key, entry["checks"]))
        print("%-24s %-12.4f %-12.4f %s %s" % (
            key,
            entry["seconds"]["no-rewrite"]["p50"],
            entry["seconds"]["rewrite"]["p50"],
            "ok" if ok else "FAIL",
            note,
        ))

    for scale in scales:
        entry, q_before, q_after = run_loop(scale, args.repeat)
        report("feedback/loop/%d" % scale, entry,
               "q %.2f -> %.2f" % (q_before or 0.0, q_after or 0.0))
        entry = run_overhead(scale, args.repeat)
        report("feedback/overhead/%d" % scale, entry)

    artifact = {
        "benchmark": "run_feedback",
        "config": {
            "scales": scales,
            "repeat": args.repeat,
            "threshold": THRESHOLD,
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
