"""Figure 2: 'dbonerow' — XSLT rewrite vs no-rewrite over growing documents.

The paper sweeps 8M/16M/32M/64M documents; we sweep a ×2 geometric series
of row counts (the claim is about growth *rate*: the rewrite probes a
B-tree and stays near-flat, the no-rewrite path materialises the whole
document and grows linearly).  ``benchmarks/run_figures.py`` prints the
full series; these benchmarks time each point for pytest-benchmark.
"""

import pytest

from benchmarks.helpers import PreparedBenchmark

SIZES = [500, 1000, 2000, 4000]

_prepared = {}


def prepared(size):
    if size not in _prepared:
        _prepared[size] = PreparedBenchmark("dbonerow", size)
    return _prepared[size]


@pytest.mark.parametrize("size", SIZES)
def test_fig2_rewrite(benchmark, size):
    bench = prepared(size)
    rows, stats = benchmark(bench.execute_rewrite)
    assert stats.index_probes >= 1
    assert rows[0][0]  # the one selected row produced output


@pytest.mark.parametrize("size", SIZES)
def test_fig2_no_rewrite(benchmark, size):
    bench = prepared(size)
    results = benchmark(bench.execute_functional)
    assert len(results) == 1


def test_fig2_shape(benchmark):
    """The headline claim: rewrite wins, and its advantage grows with
    document size (no-rewrite grows linearly, rewrite stays near-flat)."""
    import time

    def measure():
        points = []
        for size in (500, 4000):
            bench = prepared(size)
            start = time.perf_counter()
            for _ in range(3):
                bench.execute_rewrite()
            rewrite_time = (time.perf_counter() - start) / 3
            start = time.perf_counter()
            for _ in range(3):
                bench.execute_functional()
            functional_time = (time.perf_counter() - start) / 3
            points.append((size, rewrite_time, functional_time))
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    small, large = points
    assert small[2] > small[1], "no-rewrite should lose even at small sizes"
    assert large[2] > large[1]
    # no-rewrite grows roughly with size; rewrite must grow much slower
    functional_growth = large[2] / small[2]
    rewrite_growth = large[1] / max(small[1], 1e-9)
    assert functional_growth > 2.0
    assert rewrite_growth < functional_growth
