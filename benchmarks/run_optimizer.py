#!/usr/bin/env python
"""Cost-based optimizer benchmark: hash joins, Top-N heaps, statistics.

Usage::

    python benchmarks/run_optimizer.py [--scales 500,1500,3000]
                                       [--table7-size 400] [--repeat 2]
                                       [--out BENCH_optimizer.json] [--smoke]

Three case families, each timed at optimizer level ``cost`` (the new
planner) against level ``rules`` (the seed behaviour):

* **join** — a doc >< line equi-join with no index on the join column,
  at several scale factors.  The rules planner can only nested-loop
  (inner table re-scanned per outer row, O(N*M)); the cost planner
  builds a hash table instead.  The largest scale must show at least a
  **3x** speedup or the run exits non-zero.
* **topn** — ``ORDER BY ... LIMIT k`` over a large table: full sort
  versus the fused bounded-heap Top-N.
* **table7** — the paper's Table 7 shape (dept >< emp join with a
  selective filter, ordered, first rows only) driven through SQL, with
  an EXPLAIN check that the ledger-recorded access-path/join decisions
  and the estimated-vs-actual row annotations are really present.
* **correlated** — the shape the XSLT rewrite emits: a correlated
  aggregating ``ScalarSubquery`` probe per parent row.  With
  ``decorrelate=False`` the probe re-runs per doc row (a correlated
  nested loop, O(N*M) without an index); the decorrelation pass turns
  it into a build-once HashLeftJoin over a grouped aggregate.  The
  largest scale must show at least a **3x** speedup, the rewritten
  plan must really be a ``HashLeftJoin`` with zero per-row subquery
  executions, and the rewrite must be ledger-evidenced.

Every case also checks that both levels return identical rows; any
check failure makes the run exit 1.

The ``--out`` artifact (default ``BENCH_optimizer.json``) follows the
``BENCH_obs.json`` shape — ``optimizer/<case>/<scale>`` entries whose
``seconds`` blocks (``rewrite`` = cost level, ``no-rewrite`` = rules
level, the calibration clock) feed ``check_regression.py`` — plus an
``optimizer`` block with the speedup and chosen plan shapes.
``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.obs.decisions import (
    ACCESS_PATH,
    DECORRELATE,
    JOIN_STRATEGY,
    DecisionLedger,
)
from repro.rdb import Database, INT, TEXT
from repro.rdb.expressions import ScalarSubquery, col, eq
from repro.rdb.plan import (
    ExecutionStats,
    Filter,
    HashLeftJoin,
    PlanProfiler,
    Query,
    Scan,
    explain,
)
from repro.rdb.sql_parser import parse_select
from repro.rdb.sqlxml import AggCall

DEFAULT_SCALES = (500, 1500, 3000)
SPEEDUP_FLOOR = 3.0  # required hash-vs-nested-loop ratio at the top scale


def summarize(latencies):
    """A histogram-summary-shaped dict (seconds) from raw samples."""
    if not latencies:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p95": None}
    ordered = sorted(latencies)

    def pct(p):
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    return {
        "count": len(ordered),
        "sum": sum(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": pct(50),
        "p95": pct(95),
    }


def timed(db, query, level, repeat):
    """(per-call seconds, rows) for ``repeat`` optimize+execute calls."""
    samples, rows = [], None
    for _ in range(repeat):
        start = time.perf_counter()
        rows, _ = db.execute(query, level=level)
        samples.append(time.perf_counter() - start)
    return samples, rows


def plan_shape(db, query, level):
    plan = db.optimize(query, level=level).plan
    names = []
    for node in plan.iter_plan():
        names.append(type(node).__name__)
    return names


def make_join_db(scale):
    docs = max(10, scale // 10)
    db = Database()
    db.create_table("doc", [("id", INT), ("name", TEXT)])
    db.create_index("doc", "id")
    db.insert("doc", *[(i, "d%d" % i) for i in range(docs)])
    # deliberately NO index on line.doc: the rules planner is stuck with
    # a quadratic nested loop, the cost planner hashes the inner table
    db.create_table("line", [("id", INT), ("doc", INT), ("qty", INT)])
    db.insert("line", *[(i, i % docs, i % 100) for i in range(scale)])
    return db


JOIN_SQL = ("SELECT d.name, l.qty FROM doc d, line l "
            "WHERE d.id = l.doc AND l.qty > 10")
TOPN_SQL = "SELECT l.qty, l.id FROM line l ORDER BY l.qty DESC LIMIT 10"
TABLE7_SQL = ("SELECT d.name, l.qty FROM doc d, line l "
              "WHERE d.id = l.doc AND l.qty > 90 "
              "ORDER BY l.qty DESC LIMIT 10")


def run_pair(db, sql, repeat, analyze=True):
    """Time one query at rules vs cost level; entry dict + speedup."""
    if analyze:
        db.analyze()
    query = parse_select(sql)
    rules_seconds, rules_rows = timed(db, query, "rules", repeat)
    cost_seconds, cost_rows = timed(db, query, "cost", repeat)
    speedup = (min(rules_seconds) / min(cost_seconds)
               if min(cost_seconds) > 0 else float("inf"))
    entry = {
        "seconds": {
            "rewrite": summarize(cost_seconds),
            "no-rewrite": summarize(rules_seconds),
        },
        "optimizer": {
            "speedup": speedup,
            "rows": len(cost_rows),
            "cost_plan": plan_shape(db, query, "cost"),
            "rules_plan": plan_shape(db, query, "rules"),
        },
        "checks": {"rows_match": cost_rows == rules_rows},
    }
    return entry, speedup


def correlated_query():
    """``SELECT d.name, (SELECT SUM(l.qty) FROM line l WHERE l.doc =
    d.id) FROM doc d`` — the correlated aggregate probe the XSLT→SQL
    merge emits for every repeating element."""
    probe = Query(
        Filter(Scan("line", "l"), eq(col("doc", "l"), col("id", "d"))),
        [(None, AggCall("SUM", col("qty", "l")))],
    )
    return Query(
        Scan("doc", "d"),
        [(None, col("name", "d")), (None, ScalarSubquery(probe))],
    )


def timed_decorrelate(db, decorrelate, repeat):
    """(per-call seconds, rows, stats) optimizing + executing the
    correlated query at the cost level with decorrelation on/off."""
    samples, rows, stats = [], None, None
    for _ in range(repeat):
        start = time.perf_counter()
        optimized = db.optimize(correlated_query(), level="cost",
                                decorrelate=decorrelate)
        rows, stats = optimized.execute(db, stats=ExecutionStats())
        samples.append(time.perf_counter() - start)
    return samples, rows, stats


def run_correlated(db, repeat):
    """Correlated-NLJ vs decorrelated-hash-join, plus plan/ledger
    evidence checks."""
    db.analyze()
    nlj_seconds, nlj_rows, nlj_stats = timed_decorrelate(db, False, repeat)
    hash_seconds, hash_rows, hash_stats = timed_decorrelate(db, None, repeat)
    speedup = (min(nlj_seconds) / min(hash_seconds)
               if min(hash_seconds) > 0 else float("inf"))
    ledger = DecisionLedger()
    optimized = db.optimize(correlated_query(), ledger=ledger)
    unnested = [
        decision for decision in ledger
        if decision.kind == DECORRELATE
        and decision.action != "keep-correlated"
    ]
    entry = {
        "seconds": {
            "rewrite": summarize(hash_seconds),
            "no-rewrite": summarize(nlj_seconds),
        },
        "optimizer": {
            "speedup": speedup,
            "rows": len(hash_rows),
            "cost_plan": [type(node).__name__
                          for node in optimized.plan.iter_plan()],
            "subquery_executions": {
                "correlated": nlj_stats.subquery_executions,
                "decorrelated": hash_stats.subquery_executions,
            },
            "decisions": [
                "[%s] %s -> %s" % (d.kind, d.subject, d.action)
                for d in unnested
            ],
        },
        "checks": {
            "rows_match": hash_rows == nlj_rows,
            "hash_left_join_planned": isinstance(optimized.plan,
                                                 HashLeftJoin),
            "no_per_row_subqueries": hash_stats.subquery_executions == 0,
            "correlated_probe_per_row":
                nlj_stats.subquery_executions == len(nlj_rows),
            "ledger_evidenced": bool(unnested),
        },
    }
    return entry, speedup


def run_table7(db, repeat):
    """The Table-7-shaped case plus its EXPLAIN/ledger evidence checks."""
    entry, speedup = run_pair(db, TABLE7_SQL, repeat)
    ledger = DecisionLedger()
    query = db.optimize(parse_select(TABLE7_SQL), ledger=ledger)
    ledger.attach_plan(query)
    stats = ExecutionStats()
    stats.profiler = PlanProfiler()
    analyzed = explain(query, analyze=True, db=db, stats=stats)
    kinds = {decision.kind for decision in ledger}
    entry["checks"].update({
        "access_path_recorded": ACCESS_PATH in kinds,
        "join_strategy_recorded": JOIN_STRATEGY in kinds,
        "estimates_rendered": "est rows=" in analyzed,
        "actuals_rendered": "actual" in analyzed,
    })
    entry["optimizer"]["decisions"] = [
        "[%s] %s -> %s" % (decision.kind, decision.subject, decision.action)
        for decision in ledger
        if decision.stage == "plan-optimize"
    ]
    return entry, speedup


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=",".join(
        str(scale) for scale in DEFAULT_SCALES))
    parser.add_argument("--table7-size", type=int, default=400)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--out", default="BENCH_optimizer.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scales = "500"
        args.table7_size = 200
        args.repeat = 1

    scales = [int(scale) for scale in args.scales.split(",") if scale]
    cases = {}
    failures = []
    print("Optimizer benchmark: scales %s, repeat %d"
          % (scales, args.repeat))
    print("%-28s %-10s %-10s %-8s %s"
          % ("case", "rules-p50", "cost-p50", "speedup", "checks"))

    def report(key, entry, speedup):
        cases[key] = entry
        ok = all(entry["checks"].values())
        if not ok:
            failures.append("%s: %s" % (key, entry["checks"]))
        print("%-28s %-10.4f %-10.4f %-8.2f %s" % (
            key,
            entry["seconds"]["no-rewrite"]["p50"],
            entry["seconds"]["rewrite"]["p50"],
            speedup,
            "ok" if ok else "FAIL",
        ))
        return ok

    top_speedup = 0.0
    top_correlated_speedup = 0.0
    for scale in scales:
        db = make_join_db(scale)
        entry, speedup = run_pair(db, JOIN_SQL, args.repeat)
        report("optimizer/join/%d" % scale, entry, speedup)
        if scale == max(scales):
            top_speedup = speedup
        entry, speedup = run_pair(db, TOPN_SQL, args.repeat)
        report("optimizer/topn/%d" % scale, entry, speedup)
        entry, speedup = run_correlated(db, args.repeat)
        report("optimizer/correlated/%d" % scale, entry, speedup)
        if scale == max(scales):
            top_correlated_speedup = speedup

    table7_db = make_join_db(args.table7_size)
    entry, speedup = run_table7(table7_db, args.repeat)
    report("optimizer/table7/%d" % args.table7_size, entry, speedup)

    if not args.smoke and top_speedup < SPEEDUP_FLOOR:
        failures.append(
            "join speedup %.2fx at scale %d below the %.1fx floor"
            % (top_speedup, max(scales), SPEEDUP_FLOOR))
    if not args.smoke and top_correlated_speedup < SPEEDUP_FLOOR:
        failures.append(
            "decorrelation speedup %.2fx at scale %d below the %.1fx floor"
            % (top_correlated_speedup, max(scales), SPEEDUP_FLOOR))

    artifact = {
        "benchmark": "run_optimizer",
        "config": {
            "scales": scales,
            "table7_size": args.table7_size,
            "repeat": args.repeat,
            "speedup_floor": SPEEDUP_FLOOR,
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
