#!/usr/bin/env python
"""Structural-index benchmark: descendant axes + bounded-memory ingest.

Usage::

    python benchmarks/run_structural.py [--scales 1,10] [--ingest-scale 100]
                                        [--repeat 2]
                                        [--out BENCH_structural.json]
                                        [--smoke]

Two case families over the :mod:`gen_corpus` tree corpus stored in
:class:`~repro.rdb.treestorage.TreeStorage`:

* **descendant** — the ``//node//label`` pattern as a self-join over the
  node table, timed at optimizer level ``rules`` (the
  ``TREE_CONTAINS`` parent-chain walk: one ``node_id`` index probe per
  hop, for every candidate pair) against level ``cost`` (the
  structural path index feeding a label-range
  :class:`~repro.rdb.plan.StructuralJoin`, O(n+m)).  The largest scale
  must show at least a **5x** speedup or the run exits non-zero, the
  structural plan must really contain a ``StructuralJoin``, the choice
  must be ledger-evidenced, and both levels must return identical rows.
* **ingest** — DOM ingest (parse + label + shred) versus streaming
  ingest of the *same bytes* at ``--ingest-scale`` (default 100x).  The
  streamed corpus is produced chunk-by-chunk and never materialized;
  the check asserts the ingest buffer high-water mark stays a small
  fraction of the document size and that a DOM-loaded and a
  stream-loaded storage agree on fingerprint and row count.

The ``--out`` artifact (default ``BENCH_structural.json``) follows the
``BENCH_optimizer.json`` shape so ``check_regression.py`` and the CI
speedup gate can consume it.  ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from benchmarks.gen_corpus import corpus_node_count, iter_tree_xml, tree_xml
from repro.obs.decisions import STRUCTURAL_PATH, DecisionLedger
from repro.obs.metrics import global_metrics
from repro.rdb import Database
from repro.rdb.plan import ExecutionStats
from repro.rdb.treestorage import TreeStorage
from repro.xmlmodel import parse_document

DEFAULT_SCALES = (1, 10)
DEFAULT_INGEST_SCALE = 100
SPEEDUP_FLOOR = 5.0  # structural join vs tree walk at the top scale
BOUNDED_FRACTION = 0.02  # ingest buffer must stay under 2% of the bytes


def summarize(latencies):
    if not latencies:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p95": None}
    ordered = sorted(latencies)

    def pct(p):
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    return {
        "count": len(ordered),
        "sum": sum(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": pct(50),
        "p95": pct(95),
    }


def make_storage(scale):
    db = Database()
    storage = TreeStorage(db, "bench")
    storage.load(parse_document(tree_xml(scale)))
    return db, storage


def timed(db, query, level, repeat):
    # One untimed warm-up execution per level: the first run after a
    # multi-second tree walk can pay a full gen-2 GC over the loaded
    # document's heap, which would otherwise dominate min-of-2 samples.
    db.execute(query, level=level)
    samples, rows = [], None
    for _ in range(repeat):
        start = time.perf_counter()
        rows, _ = db.execute(query, level=level)
        samples.append(time.perf_counter() - start)
    return samples, rows


def run_descendant(scale, repeat):
    """//node//label: parent-chain walk (rules) vs StructuralJoin (cost)."""
    db, storage = make_storage(scale)
    query = storage.descendant_query("node", "label")
    walk_seconds, walk_rows = timed(db, query, "rules", repeat)
    struct_seconds, struct_rows = timed(db, query, "cost", repeat)
    speedup = (min(walk_seconds) / min(struct_seconds)
               if min(struct_seconds) > 0 else float("inf"))

    ledger = DecisionLedger()
    optimized = db.optimize(query, level="cost", ledger=ledger)
    plan_names = [type(node).__name__ for node in optimized.plan.iter_plan()]
    chosen = [
        decision for decision in ledger
        if decision.kind == STRUCTURAL_PATH
        and decision.action == "structural-join"
    ]
    stats = ExecutionStats()
    optimized.execute(db, stats=stats)

    entry = {
        "seconds": {
            "rewrite": summarize(struct_seconds),
            "no-rewrite": summarize(walk_seconds),
        },
        "optimizer": {
            "speedup": speedup,
            "rows": len(struct_rows),
            "node_elements": corpus_node_count(scale),
            "cost_plan": plan_names,
            "struct_range_scans": stats.struct_range_scans,
            "struct_join_rows": stats.struct_join_rows,
            "decisions": [
                "[%s] %s -> %s" % (d.kind, d.subject, d.action)
                for d in chosen
            ],
        },
        "checks": {
            "rows_match": walk_rows == struct_rows,
            "structural_join_planned": "StructuralJoin" in plan_names,
            "ledger_evidenced": bool(chosen),
            "range_scans_counted": stats.struct_range_scans > 0,
        },
    }
    return entry, speedup


class _Meter:
    """Wraps a chunk iterator, counting the bytes that flow through."""

    def __init__(self, chunks):
        self.chunks = iter(chunks)
        self.total = 0

    def __iter__(self):
        return self

    def __next__(self):
        chunk = next(self.chunks)
        self.total += len(chunk)
        return chunk


def run_ingest(scale, equivalence_scale, repeat):
    """DOM vs streaming ingest of the same corpus, plus memory bound."""
    dom_seconds = []
    for _ in range(repeat):
        text = tree_xml(scale)
        db = Database()
        storage = TreeStorage(db, "bench")
        start = time.perf_counter()
        storage.load(parse_document(text))
        dom_seconds.append(time.perf_counter() - start)

    stream_seconds = []
    stats = ExecutionStats()
    meter = None
    for _ in range(repeat):
        db = Database()
        storage = TreeStorage(db, "bench")
        stats = ExecutionStats()
        meter = _Meter(iter_tree_xml(scale))
        start = time.perf_counter()
        storage.load_stream(meter, stats=stats, chunk_size=4096)
        stream_seconds.append(time.perf_counter() - start)
    stream_rows = len(db.table(storage.table_name))
    peak = stats.peak_ingest_buffered_bytes
    bound = max(65536, int(meter.total * BOUNDED_FRACTION))

    # Equivalence at a size where holding the DOM is cheap: identical
    # rows and fingerprints from both ingest paths.
    dom_db = Database()
    dom_storage = TreeStorage(dom_db, "bench")
    dom_storage.load(parse_document(tree_xml(equivalence_scale)))
    stream_db = Database()
    stream_storage = TreeStorage(stream_db, "bench")
    stream_storage.load_stream(iter_tree_xml(equivalence_scale))
    dom_rows = [row for _, row in dom_db.table("bench_nodes").scan()]
    srows = [row for _, row in stream_db.table("bench_nodes").scan()]

    entry = {
        "seconds": {
            "rewrite": summarize(stream_seconds),
            "no-rewrite": summarize(dom_seconds),
        },
        "optimizer": {
            "document_bytes": meter.total,
            "peak_ingest_buffered_bytes": peak,
            "rows": stream_rows,
            "node_elements": corpus_node_count(scale),
        },
        "checks": {
            "bounded_memory": 0 < peak <= bound,
            "rows_identical": dom_rows == srows,
            "fingerprints_match":
                dom_storage.fingerprint() == stream_storage.fingerprint(),
        },
    }
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=",".join(
        str(scale) for scale in DEFAULT_SCALES))
    parser.add_argument("--ingest-scale", type=int,
                        default=DEFAULT_INGEST_SCALE)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--out", default="BENCH_structural.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scales = "1"
        args.ingest_scale = 5
        args.repeat = 1

    scales = [int(scale) for scale in args.scales.split(",") if scale]
    cases = {}
    failures = []
    print("Structural benchmark: scales %s, ingest %dx, repeat %d"
          % (scales, args.ingest_scale, args.repeat))
    print("%-26s %-10s %-10s %-8s %s"
          % ("case", "walk-p50", "index-p50", "speedup", "checks"))

    def report(key, entry, speedup):
        cases[key] = entry
        ok = all(entry["checks"].values())
        if not ok:
            failures.append("%s: %s" % (key, entry["checks"]))
        print("%-26s %-10.4f %-10.4f %-8.2f %s" % (
            key,
            entry["seconds"]["no-rewrite"]["p50"],
            entry["seconds"]["rewrite"]["p50"],
            speedup,
            "ok" if ok else "FAIL",
        ))
        return ok

    top_speedup = 0.0
    for scale in scales:
        entry, speedup = run_descendant(scale, args.repeat)
        report("structural/descendant/%d" % scale, entry, speedup)
        if scale == max(scales):
            top_speedup = speedup

    entry = run_ingest(args.ingest_scale, min(scales), args.repeat)
    ratio = (entry["seconds"]["no-rewrite"]["min"]
             / entry["seconds"]["rewrite"]["min"]
             if entry["seconds"]["rewrite"]["min"] else float("inf"))
    report("structural/ingest/%d" % args.ingest_scale, entry, ratio)

    if not args.smoke and top_speedup < SPEEDUP_FLOOR:
        failures.append(
            "descendant speedup %.2fx at scale %d below the %.1fx floor"
            % (top_speedup, max(scales), SPEEDUP_FLOOR))

    metrics = global_metrics()
    structural_metrics = {
        "structural.index.entries":
            metrics.gauge("structural.index.entries").value,
        "structural.index.range_scans":
            metrics.counter("structural.index.range_scans").value,
        "structural.index.join_rows":
            metrics.counter("structural.index.join_rows").value,
    }

    artifact = {
        "benchmark": "run_structural",
        "config": {
            "scales": scales,
            "ingest_scale": args.ingest_scale,
            "repeat": args.repeat,
            "speedup_floor": SPEEDUP_FLOOR,
            "bounded_fraction": BOUNDED_FRACTION,
            "cpu_count": os.cpu_count(),
        },
        "metrics": structural_metrics,
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
