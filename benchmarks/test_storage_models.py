"""Storage-model comparison (paper §7.4's proposed study).

"We will need to study the XSLT performance for different physical XML
storage and index models (object relational storage, CLOB or BLOB storage
with path/value index, ...) so that we know what type of storage is ideal
for what type of XSLT query."

Measured here on the `dbonerow` workload:

* object-relational + XSLT rewrite (value index probe) — the §5 setup;
* object-relational, functional (materialise from shredded tables);
* CLOB, functional (parse the serialised text, then transform).
"""

import pytest

from repro.core.transform import xml_transform
from repro.rdb.database import Database
from repro.rdb.storage import ClobStorage, ObjectRelationalStorage
from repro.schema import schema_from_dtd
from repro.xslt import compile_stylesheet
from repro.xsltmark.cases import get_case

SIZE = 1200


class _Setup:
    def __init__(self):
        case = get_case("dbonerow")
        document = case.make_document(SIZE)
        self.stylesheet = compile_stylesheet(case.stylesheet)

        self.or_db = Database()
        self.or_storage = ObjectRelationalStorage(
            self.or_db, schema_from_dtd(case.dtd), "sm",
            column_types=case.column_types,
        )
        self.or_storage.load(document)
        for element in case.indexed_elements:
            self.or_storage.create_value_index(element)

        self.clob_db = Database()
        self.clob_storage = ClobStorage(self.clob_db, "sm")
        self.clob_storage.load(document)

        from repro.rdb.treestorage import TreeStorage

        self.tree_db = Database()
        self.tree_storage = TreeStorage(self.tree_db, "sm")
        self.tree_storage.load(document)


_setup = []


def setup():
    if not _setup:
        _setup.append(_Setup())
    return _setup[0]


def test_object_relational_rewrite(benchmark):
    prepared = setup()
    result = benchmark(
        lambda: xml_transform(
            prepared.or_db, prepared.or_storage, prepared.stylesheet,
            rewrite=True,
        )
    )
    assert result.strategy == "sql-rewrite"


def test_object_relational_functional(benchmark):
    prepared = setup()
    result = benchmark(
        lambda: xml_transform(
            prepared.or_db, prepared.or_storage, prepared.stylesheet,
            rewrite=False,
        )
    )
    assert result.strategy == "functional"


def test_clob_functional(benchmark):
    prepared = setup()
    result = benchmark(
        lambda: xml_transform(
            prepared.clob_db, prepared.clob_storage, prepared.stylesheet,
        )
    )
    # CLOB carries no structure: the rewrite cannot apply.
    assert result.strategy == "functional"
    assert result.fallback_reason


def test_tree_storage_functional(benchmark):
    prepared = setup()
    result = benchmark(
        lambda: xml_transform(
            prepared.tree_db, prepared.tree_storage, prepared.stylesheet,
        )
    )
    # tree storage is schema-less: no structure for the rewrite to exploit
    assert result.strategy == "functional"


def test_storage_model_ordering(benchmark):
    """OR+rewrite beats both functional paths; all agree on output."""
    import time

    prepared = setup()

    def measure():
        timings = {}
        outputs = {}
        for label, db, storage, rewrite in (
            ("or-rewrite", prepared.or_db, prepared.or_storage, True),
            ("or-functional", prepared.or_db, prepared.or_storage, False),
            ("clob-functional", prepared.clob_db, prepared.clob_storage,
             False),
        ):
            start = time.perf_counter()
            result = xml_transform(db, storage, prepared.stylesheet,
                                   rewrite=rewrite)
            timings[label] = time.perf_counter() - start
            outputs[label] = result.serialized_rows()
        return timings, outputs

    timings, outputs = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert outputs["or-rewrite"] == outputs["or-functional"]
    assert outputs["or-rewrite"] == outputs["clob-functional"]
    assert timings["or-rewrite"] < timings["or-functional"]
    assert timings["or-rewrite"] < timings["clob-functional"]
