#!/usr/bin/env python
"""Observability-plane benchmark: trace connectivity and tracing cost.

Usage::

    python benchmarks/run_ops.py [--scales 100] [--repeat 20]
                                 [--out BENCH_ops.json] [--smoke]

Two case families over the scaled dept/emp corpus shared with
``run_feedback.py``:

* **trace** — the acceptance scenario: a cold-miss and a cached-hit
  request (plus a streamed one) through a live
  ``TransformService(ops_port=0)``.  Checks, all over the real HTTP
  ops plane: each request yields ONE connected trace — every span
  shares the request's trace id, the miss carries compile spans and
  the hit none — retrievable via ``/debug/trace/<id>``; ``/metrics``,
  ``/healthz`` and ``/debug/requests`` answer well-formed output.
  This family carries no timings (like ``inline_stat``) so the
  regression gate skips it.
* **overhead** — what always-on tracing + flight recording costs on
  the cached-hit path: ``rewrite`` times requests on a service with
  per-request tracing and the recorder enabled, ``no-rewrite`` the
  same requests with both disabled.  Check: best-of traced within 5%
  of best-of untraced (plus an absolute 2ms jitter allowance),
  re-measured up to 3 attempts so one noisy neighbour does not fail
  CI.  These cases land in ``baseline.json`` and are gated by
  ``check_regression.py`` like every other family.

``--smoke`` shrinks everything for CI.  Exit status 1 when any check
fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.request

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from benchmarks.run_feedback import make_storage, summarize

from repro.obs import FlightRecorder, MetricsRegistry
from repro.serve import TransformService

from tests.core.paper_example import EXAMPLE1_STYLESHEET

DEFAULT_SCALES = (100,)
MARGIN = 1.05       # traced path must stay within 5% of untraced ...
MIN_DELTA = 0.002   # ... plus this absolute scheduler-jitter allowance
ATTEMPTS = 3


def fetch(url):
    """(status, content-type, body) of one GET against the ops plane."""
    with urllib.request.urlopen(url, timeout=10) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def connected(payload, trace_id, expect_compile):
    """True when a ``/debug/trace`` payload is one connected trace."""
    spans = payload.get("spans") or []
    if not spans:
        return False
    if {span.get("trace_id") for span in spans} != {trace_id}:
        return False
    names = {span.get("name") for span in spans}
    if "serve.request" not in names or "serve.execute" not in names:
        return False
    return ("compile.stylesheet" in names) is expect_compile


def run_trace(scale):
    """Cold-miss / cached-hit / stream traces through the HTTP plane."""
    db, storage = make_storage(scale)
    checks = {}
    with TransformService(db, workers=2, metrics=MetricsRegistry(),
                          ops_port=0) as service:
        cold = service.transform(storage, EXAMPLE1_STYLESHEET)
        warm = service.transform(storage, EXAMPLE1_STYLESHEET)
        stream = service.transform_stream(storage, EXAMPLE1_STYLESHEET)
        stream.text()

        def trace_payload(trace_id):
            status, _, body = fetch("%s/debug/trace/%s"
                                    % (service.ops.url, trace_id))
            return json.loads(body) if status == 200 else {}

        checks["miss_trace_connected"] = (
            not cold.cache_hit
            and connected(trace_payload(cold.trace_id), cold.trace_id,
                          expect_compile=True))
        checks["hit_trace_connected"] = (
            warm.cache_hit
            and cold.trace_id != warm.trace_id
            and connected(trace_payload(warm.trace_id), warm.trace_id,
                          expect_compile=False))
        drain = trace_payload(stream.trace_id)
        checks["stream_trace_connected"] = (
            {span.get("trace_id") for span in drain.get("spans") or []}
            == {stream.trace_id}
            and "serve.stream.drain"
            in {span.get("name") for span in drain.get("spans") or []})

        status, content_type, body = fetch(service.ops.url + "/metrics")
        metrics_ok = (status == 200
                      and content_type.startswith("text/plain")
                      and "serve_completed_total" in body
                      and "serve_queue_capacity" in body)
        status, content_type, body = fetch(service.ops.url + "/healthz")
        health = json.loads(body) if status == 200 else {}
        health_ok = (status == 200
                     and content_type.startswith("application/json")
                     and health.get("status") == "ok"
                     and "saturation" in health.get("queue", {}))
        status, _, body = fetch(service.ops.url + "/debug/requests?limit=10")
        requests_ok = (status == 200
                       and json.loads(body)["count"] >= 3)
        checks["endpoints_ok"] = metrics_ok and health_ok and requests_ok
    return {"checks": checks}


def timed_requests(service, storage, repeat):
    service.transform(storage, EXAMPLE1_STYLESHEET)  # warm the plan cache
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        service.transform(storage, EXAMPLE1_STYLESHEET)
        samples.append(time.perf_counter() - start)
    return samples


def measure_overhead(db, storage, repeat):
    with TransformService(db, workers=1, metrics=MetricsRegistry(),
                          trace_requests=False, recorder=False) as service:
        off = timed_requests(service, storage, repeat)
    recorder = FlightRecorder(slow_threshold_seconds=None)
    with TransformService(db, workers=1, metrics=MetricsRegistry(),
                          recorder=recorder) as service:
        on = timed_requests(service, storage, repeat)
    return off, on, len(recorder)


def run_overhead(scale, repeat):
    """Always-on tracing + recorder vs. bare serve, cached-hit path."""
    db, storage = make_storage(scale)
    for attempt in range(ATTEMPTS):
        off, on, recorded = measure_overhead(db, storage, repeat)
        overhead_ok = min(on) <= min(off) * MARGIN + MIN_DELTA
        if overhead_ok:
            break
    return {
        "seconds": {
            "rewrite": summarize(on),        # traced + recorded
            "no-rewrite": summarize(off),    # tracing and recorder off
        },
        "ops": {
            "overhead_ratio": min(on) / min(off),
            "recorded_requests": recorded,
            "attempts": attempt + 1,
        },
        "checks": {
            "overhead_ok": overhead_ok,
            "recorder_saw_every_request": recorded == repeat + 1,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=",".join(
        str(scale) for scale in DEFAULT_SCALES))
    parser.add_argument("--repeat", type=int, default=20)
    parser.add_argument("--out", default="BENCH_ops.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scales = "20"
        args.repeat = 5

    scales = [int(scale) for scale in args.scales.split(",") if scale]
    cases = {}
    failures = []
    print("Ops-plane benchmark: scales %s, repeat %d, margin %.0f%%"
          % (scales, args.repeat, (MARGIN - 1.0) * 100))

    def report(key, entry, note=""):
        cases[key] = entry
        ok = all(entry["checks"].values())
        if not ok:
            failures.append("%s: %s" % (key, entry["checks"]))
        print("%-20s %s %s" % (key, "ok" if ok else "FAIL", note))

    for scale in scales:
        report("ops/trace/%d" % scale, run_trace(scale))
        entry = run_overhead(scale, args.repeat)
        report("ops/overhead/%d" % scale, entry,
               "traced/untraced %.3f" % entry["ops"]["overhead_ratio"])

    artifact = {
        "benchmark": "run_ops",
        "config": {
            "scales": scales,
            "repeat": args.repeat,
            "margin": MARGIN,
            "min_delta": MIN_DELTA,
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
