"""Figure 3: 'avts', 'chart', 'metric', 'total' — rewrite vs no-rewrite
where no value index applies.

These stylesheets have no value predicate, so no index filters rows; the
rewrite still wins by constructing the result directly from columns
instead of materialising a DOM and interpreting templates over it.
"""

import pytest

from benchmarks.helpers import PreparedBenchmark

CASES = ["avts", "chart", "metric", "total"]
SIZE = 1500

_prepared = {}


def prepared(name):
    if name not in _prepared:
        _prepared[name] = PreparedBenchmark(name, SIZE)
    return _prepared[name]


@pytest.mark.parametrize("name", CASES)
def test_fig3_rewrite(benchmark, name):
    bench = prepared(name)
    rows, stats = benchmark(bench.execute_rewrite)
    assert rows
    # No *value* index exists in these workloads (that is the point of
    # Figure 3); the only probes are the parent-key correlation of the
    # shredded child table, at most one per document row.
    assert stats.index_probes <= len(rows) * 3


@pytest.mark.parametrize("name", CASES)
def test_fig3_no_rewrite(benchmark, name):
    bench = prepared(name)
    results = benchmark(bench.execute_functional)
    assert results


def test_fig3_shape(benchmark):
    """Rewrite outperforms no-rewrite on every Figure-3 case."""
    import time

    def measure():
        ratios = {}
        for name in CASES:
            bench = prepared(name)
            start = time.perf_counter()
            for _ in range(3):
                bench.execute_rewrite()
            rewrite_time = (time.perf_counter() - start) / 3
            start = time.perf_counter()
            for _ in range(3):
                bench.execute_functional()
            functional_time = (time.perf_counter() - start) / 3
            ratios[name] = functional_time / rewrite_time
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, ratio in ratios.items():
        assert ratio > 1.0, "%s: rewrite should win (ratio %.2f)" % (
            name, ratio,
        )
