#!/usr/bin/env python
"""Serving benchmark: concurrent TransformService vs the uncached front door.

Usage::

    python benchmarks/run_serve.py [--cases dbonerow,avts,total]
                                   [--sizes 500] [--workers 4] [--clients 4]
                                   [--requests 25] [--uncached-repeat 5]
                                   [--out BENCH_serve.json] [--smoke]

For each xsltmark case the harness measures three things:

* **uncached** — ``xml_transform`` called in a single-thread loop, the
  seed behaviour: every call pays stylesheet compile + the full rewrite
  pipeline before executing;
* **served** — a :class:`repro.serve.TransformService` driven by a
  closed-loop multi-client generator (:func:`repro.serve.run_load`):
  the first request compiles, every other request hits the plan cache;
* **functional** — ``xml_transform(rewrite=False)``, the calibration
  clock ``benchmarks/check_regression.py`` uses.

Each case also runs two checks and records them in the artifact:
cache-hit requests' traces contain **no** compile span (the cache
really skips every compile stage), and served results are byte-identical
to the uncached front door's.

The ``--out`` artifact (default ``BENCH_serve.json``) is shaped like
``BENCH_obs.json`` — each ``serve/<case>/<size>`` entry carries a
``seconds`` block (``rewrite`` = served per-request latency,
``no-rewrite`` = functional per-call latency) that
``check_regression.py`` gates against ``benchmarks/baseline.json`` —
plus a ``serve`` block with throughput, p50/p95/p99 latency and cache
hit ratio.  ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import TransformOptions
from repro.core.transform import xml_transform
from repro.obs import MetricsRegistry, Tracer
from repro.serve import TransformService, WorkItem, run_load
from repro.xsltmark.cases import get_case
from repro.xsltmark.runner import prepare_case

DEFAULT_CASES = ("dbonerow", "avts", "total")


def summarize(latencies):
    """A histogram-summary-shaped dict (seconds) from raw samples."""
    if not latencies:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p95": None}
    ordered = sorted(latencies)

    def pct(p):
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    return {
        "count": len(ordered),
        "sum": sum(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": pct(50),
        "p95": pct(95),
    }


def timed_loop(fn, repeat):
    """Per-call wall seconds for ``repeat`` sequential calls."""
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def verify_served(service, storage, stylesheet, expected_rows):
    """Cache-hit request: no compile span in its trace, identical rows."""
    result = service.transform(storage, stylesheet)
    if not result.cache_hit:
        return {"cache_hit": False, "no_compile_spans": False,
                "rows_match": False}
    span_names = [span.name for span in result.trace.iter_spans()] \
        if result.trace else []
    return {
        "cache_hit": True,
        "no_compile_spans": not any(
            name.startswith("compile") for name in span_names
        ),
        "rows_match": result.serialized_rows() == expected_rows,
    }


def run_serve_case(name, size, args, cases_out):
    prepared = prepare_case(get_case(name), size)
    db, storage = prepared.db, prepared.storage
    stylesheet = prepared.stylesheet
    quiet = Tracer(enabled=False)
    scratch = MetricsRegistry()

    # single-thread uncached baseline: compile + execute per call
    uncached = timed_loop(
        lambda: xml_transform(db, storage, stylesheet,
                              tracer=quiet, metrics=scratch),
        args.uncached_repeat,
    )
    expected_rows = xml_transform(
        db, storage, stylesheet, tracer=quiet, metrics=scratch
    ).serialized_rows()

    # functional baseline — the regression gate's calibration clock
    functional = timed_loop(
        lambda: xml_transform(db, storage, stylesheet,
                              options=TransformOptions(rewrite=False),
                              tracer=quiet, metrics=scratch),
        args.uncached_repeat,
    )

    registry = MetricsRegistry()
    # untraced during the load run — the uncached baseline loop also runs
    # with tracing (and therefore plan profiling) off
    service = TransformService(db, workers=args.workers, metrics=registry,
                               trace_requests=False)
    try:
        report = run_load(
            service,
            [WorkItem(storage, stylesheet, name=name)],
            clients=args.clients,
            requests_per_client=args.requests,
        )
        # tracing back on for the verification request only: its span
        # tree must show the cache hit skipping every compile stage
        service.trace_requests = True
        checks = verify_served(service, storage, stylesheet, expected_rows)
        cache_stats = service.cache.stats().as_dict()
    finally:
        service.close()

    uncached_summary = summarize(uncached)
    uncached_rps = (1.0 / uncached_summary["p50"]
                    if uncached_summary["p50"] else 0.0)
    entry = {
        "seconds": {
            "rewrite": summarize(report.latencies_seconds),
            "no-rewrite": summarize(functional),
        },
        "serve": {
            "workers": args.workers,
            "clients": args.clients,
            "requests": report.requests,
            "errors": report.errors,
            "throughput_rps": report.throughput_rps,
            "latency_ms": {
                "p50": report.latency_ms(50),
                "p95": report.latency_ms(95),
                "p99": report.latency_ms(99),
            },
            "hit_ratio": report.hit_ratio,
            "cache": cache_stats,
            "uncached_seconds": uncached_summary,
            "uncached_rps": uncached_rps,
            "throughput_vs_uncached": (
                report.throughput_rps / uncached_rps if uncached_rps else None
            ),
        },
        "checks": checks,
        "metrics": registry.snapshot(),
    }
    cases_out["serve/%s/%d" % (name, size)] = entry
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", default=",".join(DEFAULT_CASES))
    parser.add_argument("--sizes", default="500")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client")
    parser.add_argument("--uncached-repeat", type=int, default=5)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.cases = "dbonerow"
        args.sizes = "300"
        args.clients = min(args.clients, 2)
        args.requests = min(args.requests, 8)
        args.uncached_repeat = min(args.uncached_repeat, 3)

    names = [name for name in args.cases.split(",") if name]
    sizes = [int(size) for size in args.sizes.split(",") if size]
    cases = {}
    print("Serving benchmark: %d worker(s), %d client(s), %d req/client"
          % (args.workers, args.clients, args.requests))
    print("%-20s %-10s %-10s %-10s %-8s %-8s"
          % ("case", "served-rps", "uncached", "p95-ms", "hits", "checks"))
    failures = []
    for name in names:
        for size in sizes:
            entry = run_serve_case(name, size, args, cases)
            serve = entry["serve"]
            checks = entry["checks"]
            ok = all(checks.values())
            if not ok:
                failures.append("serve/%s/%d: %s" % (name, size, checks))
            print("%-20s %-10.1f %-10.1f %-10.3f %-8.2f %-8s" % (
                "%s/%d" % (name, size),
                serve["throughput_rps"],
                serve["uncached_rps"],
                serve["latency_ms"]["p95"] or 0.0,
                serve["hit_ratio"],
                "ok" if ok else "FAIL",
            ))

    artifact = {
        "benchmark": "run_serve",
        "config": {
            "workers": args.workers,
            "clients": args.clients,
            "requests_per_client": args.requests,
            "uncached_repeat": args.uncached_repeat,
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
