"""The paper's §5 statistic: how many of the forty XSLTMark-style cases
compile fully inline ("23 out of 40 ... more than 50%")."""

from repro.xsltmark.runner import inline_statistics


def test_inline_statistic(benchmark):
    classifications, inline_count = benchmark.pedantic(
        inline_statistics, rounds=1, iterations=1
    )
    assert len(classifications) == 40
    # Paper: 23/40.  Ours: 29/40 — the same "more than 50%" conclusion;
    # EXPERIMENTS.md discusses the delta.
    assert inline_count > 20
    non_inline = sum(
        1 for c, _ in classifications.values() if c == "non-inline"
    )
    fallback = sum(
        1 for c, _ in classifications.values() if c == "fallback"
    )
    assert inline_count + non_inline + fallback == 40
