#!/usr/bin/env python
"""Cluster benchmark: process-parallel serving vs a single worker.

Usage::

    python benchmarks/run_cluster.py [--cases dbonerow,total] [--sizes 500]
                                     [--workers 4] [--clients 8]
                                     [--duration 3.0] [--cold-variants 3]
                                     [--min-scaling 2.5]
                                     [--out BENCH_cluster.json] [--smoke]

For each xsltmark case the harness soaks a
:class:`repro.serve.ClusterService` (sustained closed-loop load, mixed
hit/miss workload — the hot stylesheet plus ``--cold-variants`` distinct
variants that each force a cold compile) at **1 worker** and at
**--workers workers**, and reports the throughput scaling ratio.  That
ratio is the tentpole claim: worker *processes* escape the GIL, so a
CPU-bound workload on a multi-core host scales with workers where the
thread tier cannot.

The scaling gate is **core- and cost-aware**: the full ``--min-scaling``
bar (default 2.5x at 4 workers) applies only when the host actually has
at least ``--workers`` CPUs *and* the case's single-worker service time
is at least ``--cpu-bound-ms`` (dispatch IPC runs in the parent and is
GIL-bound by construction, so sub-millisecond cases measure the pipe,
not the workers).  Core-starved hosts (e.g. a 1-CPU container, where N
processes time-share one core) and IPC-bound cases degrade to
``--min-scaling-starved`` (default 0.5x — "adding workers must not
collapse throughput").  The artifact records ``cpu_count``,
``service_ms``, and both the requested and effective bars so CI on a
real multi-core runner asserts the real ratio on the CPU-bound cases.

Each case also runs three functional checks recorded in the artifact:

* **two_tier_hit** — a plan compiled by worker 0 is a tier-2 (shared
  disk) hit in worker 1;
* **warm_restart** — a brand-new cluster pointed at the same artifact
  directory serves its first repeat request from disk with **zero**
  rewrite attempts in any worker;
* **rows_match** — cluster output is byte-identical to the
  single-process front door.

The ``--out`` artifact (default ``BENCH_cluster.json``) carries a
``seconds`` block per case (``rewrite`` = multi-worker soak latency,
``no-rewrite`` = functional single-thread latency) gated by
``check_regression.py`` against ``benchmarks/baseline.json``, plus a
``cluster`` block with both soak reports and the scaling verdict.
``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import TransformOptions
from repro.core.transform import xml_transform
from repro.obs import MetricsRegistry, Tracer
from repro.serve import ClusterService, WorkItem, run_soak
from repro.xsltmark.cases import get_case
from repro.xsltmark.runner import prepare_case

DEFAULT_CASES = ("dbonerow", "total")


def summarize(latencies):
    """A histogram-summary-shaped dict (seconds) from raw samples."""
    if not latencies:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p95": None}
    ordered = sorted(latencies)

    def pct(p):
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    return {
        "count": len(ordered),
        "sum": sum(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": pct(50),
        "p95": pct(95),
    }


def cold_variant(stylesheet, index):
    """A semantically identical stylesheet with a distinct content hash
    (trailing whitespace is legal after the document element) — each
    variant is a guaranteed cold compile."""
    return stylesheet + "\n" * (index + 1)


def workload_for(stylesheet, cold_variants):
    """Mixed hit/miss workload: the hot item plus N cold variants,
    hot-weighted so steady state exercises both cache paths."""
    items = [WorkItem("doc", stylesheet, name="hot"),
             WorkItem("doc", stylesheet, name="hot")]
    for index in range(cold_variants):
        items.append(WorkItem("doc", cold_variant(stylesheet, index),
                              name="cold-%d" % index))
    return items


def soak_cluster(db, storage, workload, workers, args, artifact_dir):
    """One sustained soak at ``workers`` processes; returns the report
    and the cluster's merged stats."""
    cluster = ClusterService(
        db=db, sources={"doc": storage}, workers=workers,
        queue_size=max(64, args.clients * 4),
        artifact_dir=artifact_dir, metrics=MetricsRegistry(),
        trace_requests=False, recorder=False,
    )
    try:
        report = run_soak(cluster, workload, clients=args.clients,
                          duration_seconds=args.duration)
        stats = cluster.stats()
    finally:
        cluster.close()
    return report, stats


def check_two_tier(db, storage, stylesheet, tmp_dir):
    """worker 0 compiles; worker 1 must hit the shared disk tier."""
    cluster = ClusterService(
        db=db, sources={"doc": storage}, workers=2,
        artifact_dir=os.path.join(tmp_dir, "two-tier"),
        metrics=MetricsRegistry(), trace_requests=False, recorder=False,
    )
    try:
        first = cluster.transform_on(0, "doc", stylesheet)
        second = cluster.transform_on(1, "doc", stylesheet)
        return {
            "first_tier": first.cache_tier,
            "second_tier": second.cache_tier,
            "ok": first.cache_tier == "miss" and second.cache_tier == "l2",
        }
    finally:
        cluster.close()


def check_warm_restart(db, storage, stylesheet, tmp_dir):
    """A fresh cluster on a warmed directory must serve from disk with
    zero rewrite attempts in every worker."""
    warm_dir = os.path.join(tmp_dir, "warm")

    def build():
        return ClusterService(
            db=db, sources={"doc": storage}, workers=2,
            artifact_dir=warm_dir, metrics=MetricsRegistry(),
            trace_requests=False, recorder=False,
        )

    cluster = build()
    try:
        cold = cluster.transform("doc", stylesheet)
    finally:
        cluster.close()

    restarted = build()
    try:
        warm = restarted.transform("doc", stylesheet)
        merged = restarted.stats()["metrics"]["counters"]
        return {
            "warm_tier": warm.cache_tier,
            "disk_hits": merged.get("serve.cache.disk.hits", 0),
            "rewrite_attempts": merged.get("transform.rewrite_attempts", 0),
            "rows_stable": warm.rows == cold.rows,
            "ok": (warm.cache_tier == "l2"
                   and merged.get("serve.cache.disk.hits", 0) >= 1
                   and merged.get("transform.rewrite_attempts", 0) == 0
                   and warm.rows == cold.rows),
        }
    finally:
        restarted.close()


def run_cluster_case(name, size, args, cases_out, core_starved):
    prepared = prepare_case(get_case(name), size)
    db, storage = prepared.db, prepared.storage
    # the cluster protocol ships stylesheet *text* (content-hash keyed)
    stylesheet = prepared.case.stylesheet
    quiet = Tracer(enabled=False)
    scratch = MetricsRegistry()

    expected_rows = xml_transform(
        db, storage, stylesheet, tracer=quiet, metrics=scratch
    ).serialized_rows()

    # functional baseline — the regression gate's calibration clock
    functional = []
    for _ in range(args.functional_repeat):
        start = time.perf_counter()
        xml_transform(db, storage, stylesheet,
                      options=TransformOptions(rewrite=False),
                      tracer=quiet, metrics=scratch)
        functional.append(time.perf_counter() - start)

    workload = workload_for(stylesheet, args.cold_variants)
    tmp_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    try:
        single, _ = soak_cluster(
            db, storage, workload, 1, args,
            os.path.join(tmp_dir, "w1"),
        )
        # The full --min-scaling bar asserts the tentpole claim —
        # worker *processes* escape the GIL — and therefore only
        # applies where worker compute dominates: enough CPUs to host
        # the workers, and per-request service time heavy enough that
        # dispatch IPC (parent-side, GIL-bound by construction) is not
        # the bottleneck.  Everything else gets the no-collapse floor.
        service_ms = (1000.0 / single.throughput_rps
                      if single.throughput_rps else 0.0)
        cpu_bound = service_ms >= args.cpu_bound_ms
        effective_min_scaling = (
            args.min_scaling if cpu_bound and not core_starved
            else args.min_scaling_starved
        )
        # Re-soak once if the ratio misses the bar: a shared host can
        # stall all N workers at once (CPU quota throttling, noisy
        # neighbours), and a transient stall is indistinguishable from
        # a true collapse in a single sample.  A genuine regression
        # fails both attempts.
        retries = 0
        while True:
            multi, multi_stats = soak_cluster(
                db, storage, workload, args.workers, args,
                os.path.join(tmp_dir, "wN-%d" % retries),
            )
            scaling = (multi.throughput_rps / single.throughput_rps
                       if single.throughput_rps else None)
            if (scaling is not None
                    and scaling >= effective_min_scaling) or retries >= 1:
                break
            retries += 1
        two_tier = check_two_tier(db, storage, stylesheet, tmp_dir)
        warm = check_warm_restart(db, storage, stylesheet, tmp_dir)

        sample = ClusterService(
            db=db, sources={"doc": storage}, workers=1,
            artifact_dir=os.path.join(tmp_dir, "verify"),
            metrics=MetricsRegistry(), trace_requests=False,
            recorder=False,
        )
        try:
            rows_match = sample.transform(
                "doc", stylesheet).rows == expected_rows
        finally:
            sample.close()
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)

    checks = {
        "scaling_ok": (scaling is not None
                       and scaling >= effective_min_scaling),
        "two_tier_hit": two_tier["ok"],
        "warm_restart": warm["ok"],
        "rows_match": rows_match,
        "no_errors": single.errors == 0 and multi.errors == 0,
    }
    entry = {
        "seconds": {
            "rewrite": summarize(multi.latencies_seconds),
            "no-rewrite": summarize(functional),
        },
        "cluster": {
            "workers": args.workers,
            "clients": args.clients,
            "duration_seconds": args.duration,
            "cold_variants": args.cold_variants,
            "single_worker": single.as_dict(),
            "multi_worker": multi.as_dict(),
            "scaling": scaling,
            "soak_retries": retries,
            "service_ms": service_ms,
            "cpu_bound": cpu_bound,
            "min_scaling_requested": args.min_scaling,
            "min_scaling_effective": effective_min_scaling,
            "tier1": multi_stats["tier1"],
            "tier2": multi_stats["tier2"],
            "two_tier": two_tier,
            "warm_restart": warm,
        },
        "checks": checks,
    }
    cases_out["cluster/%s/%d" % (name, size)] = entry
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", default=",".join(DEFAULT_CASES))
    parser.add_argument("--sizes", default="500")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=3.0,
                        help="soak duration per configuration, seconds")
    parser.add_argument("--cold-variants", type=int, default=3,
                        help="distinct cold stylesheets mixed into the "
                             "workload")
    parser.add_argument("--functional-repeat", type=int, default=5)
    parser.add_argument("--min-scaling", type=float, default=2.5,
                        help="required multi/single throughput ratio on "
                             "hosts with >= --workers CPUs")
    parser.add_argument("--min-scaling-starved", type=float, default=0.5,
                        help="degraded bar when the host has fewer CPUs "
                             "than workers (no-collapse check)")
    parser.add_argument("--cpu-bound-ms", type=float, default=1.5,
                        help="single-worker service time (ms/request) "
                             "above which a case counts as CPU-bound "
                             "and must meet the full --min-scaling bar")
    parser.add_argument("--out", default="BENCH_cluster.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.cases = "dbonerow"
        args.sizes = "300"
        args.workers = min(args.workers, 2)
        args.clients = min(args.clients, 4)
        args.duration = min(args.duration, 1.0)
        args.cold_variants = min(args.cold_variants, 2)
        args.functional_repeat = min(args.functional_repeat, 3)

    cpu_count = os.cpu_count() or 1
    core_starved = cpu_count < args.workers
    names = [name for name in args.cases.split(",") if name]
    sizes = [int(size) for size in args.sizes.split(",") if size]
    cases = {}
    print("Cluster benchmark: %d workers vs 1, %d client(s), %.1fs soak, "
          "%d CPU(s)%s"
          % (args.workers, args.clients, args.duration, cpu_count,
             " [core-starved: scaling bar degraded to %.2fx]"
             % args.min_scaling_starved if core_starved else ""))
    print("%-20s %-10s %-10s %-9s %-8s %-8s"
          % ("case", "1w-rps", "%dw-rps" % args.workers, "scaling",
             "p99-ms", "checks"))
    failures = []
    for name in names:
        for size in sizes:
            entry = run_cluster_case(name, size, args, cases, core_starved)
            cluster = entry["cluster"]
            checks = entry["checks"]
            ok = all(checks.values())
            if not ok:
                failed = {key: value for key, value in checks.items()
                          if not value}
                failures.append("cluster/%s/%d: %s" % (name, size, failed))
            print("%-20s %-10.1f %-10.1f %-9.2f %-8.2f %-8s" % (
                "%s/%d" % (name, size),
                cluster["single_worker"]["throughput_rps"],
                cluster["multi_worker"]["throughput_rps"],
                cluster["scaling"] or 0.0,
                cluster["multi_worker"]["latency_ms"]["p99"] or 0.0,
                "ok" if ok else "FAIL",
            ))

    artifact = {
        "benchmark": "run_cluster",
        "config": {
            "workers": args.workers,
            "clients": args.clients,
            "duration_seconds": args.duration,
            "cold_variants": args.cold_variants,
            "functional_repeat": args.functional_repeat,
            "min_scaling": args.min_scaling,
            "min_scaling_starved": args.min_scaling_starved,
            "cpu_bound_ms": args.cpu_bound_ms,
            "cpu_count": cpu_count,
            "core_starved": core_starved,
        },
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
