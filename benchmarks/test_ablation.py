"""Ablation benchmarks for the §3.3–3.7 rewrite techniques.

Each technique from DESIGN.md is disabled individually and the generated
XQuery is evaluated over a materialised document (the SQL merge is not
always possible for the degraded query shapes — e.g. the Table-12 "all"
fallback needs dynamic instance-of dispatch — which is itself part of the
point: the optimisations are what make the query mergeable)."""

import pytest

from repro.core.partial_eval import partially_evaluate
from repro.core.xquery_gen import RewriteOptions, generate_xquery
from repro.schema import schema_from_dtd
from repro.xquery.evaluator import evaluate_module
from repro.xslt import compile_stylesheet
from repro.xsltmark.cases import get_case
from repro.xsltmark.generator import make_db_document

SIZE = 800

VARIANTS = {
    "full": RewriteOptions(),
    "no-model-groups": RewriteOptions(use_model_groups=False),
    "no-backward-removal": RewriteOptions(remove_backward_tests=False),
    "no-pruning": RewriteOptions(prune_templates=False),
    "no-builtin-compaction": RewriteOptions(builtin_compaction=False),
}


def build(case_name, options):
    case = get_case(case_name)
    stylesheet = compile_stylesheet(case.stylesheet)
    schema = schema_from_dtd(case.dtd)
    partial = partially_evaluate(stylesheet, schema)
    return generate_xquery(partial, options)


@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_ablation_patterns_case(benchmark, variant):
    """'patterns' exercises model groups, backward removal and pruning."""
    module = build("patterns", VARIANTS[variant])
    document = make_db_document(SIZE)
    result = benchmark(lambda: evaluate_module(module, document))
    assert result


@pytest.mark.parametrize(
    "variant", ["full", "no-builtin-compaction"],
    ids=["full", "no-builtin-compaction"],
)
def test_ablation_builtin_only(benchmark, variant):
    """'breadth' (empty stylesheet): Table 21 compaction vs per-node
    dispatch."""
    module = build("breadth", VARIANTS[variant])
    document = make_db_document(SIZE)
    result = benchmark(lambda: evaluate_module(module, document))
    assert result


def test_ablation_query_sizes(benchmark):
    """Disabled optimisations inflate the generated query (the paper's
    point about the straightforward [9] translation)."""
    from repro.xquery import xquery_to_text

    def measure():
        sizes = {}
        for name, options in VARIANTS.items():
            module = build("patterns", options)
            sizes[name] = len(xquery_to_text(module))
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert sizes["no-model-groups"] > sizes["full"]
    assert sizes["no-backward-removal"] >= sizes["full"]


PARTIAL_INLINE_SHEET = (
    '<?xml version="1.0"?><xsl:stylesheet version="1.0"'
    ' xmlns:xsl="http://www.w3.org/1999/XSL/Transform">'
    '<xsl:template match="table"><t>'
    '<xsl:apply-templates select="row[id &lt; 40]"/></t></xsl:template>'
    '<xsl:template match="row"><r><xsl:value-of select="lastname"/>'
    '<xsl:call-template name="pad"><xsl:with-param name="n" select="4"/>'
    "</xsl:call-template></r></xsl:template>"
    '<xsl:template name="pad"><xsl:param name="n"/>'
    '<xsl:if test="$n &gt; 0">.<xsl:call-template name="pad">'
    '<xsl:with-param name="n" select="$n - 1"/></xsl:call-template>'
    "</xsl:if></xsl:template>"
    "</xsl:stylesheet>"
)


@pytest.mark.parametrize(
    "variant, options",
    [
        ("partial-inline", RewriteOptions()),
        ("all-functions", RewriteOptions(partial_inline=False)),
    ],
    ids=["partial-inline", "all-functions"],
)
def test_ablation_partial_inline(benchmark, variant, options):
    """§7.2 partial inline vs the paper's all-or-nothing function mode on a
    stylesheet mixing matched templates with a recursive helper."""
    from repro.xslt import compile_stylesheet

    stylesheet = compile_stylesheet(PARTIAL_INLINE_SHEET)
    schema = schema_from_dtd(get_case("dbonerow").dtd)
    partial = partially_evaluate(stylesheet, schema)
    module = generate_xquery(partial, options)
    if variant == "partial-inline":
        assert len(module.functions) == 1   # only the recursive helper
    else:
        assert len(module.functions) >= 3
    document = make_db_document(SIZE)
    result = benchmark(lambda: evaluate_module(module, document))
    assert result
