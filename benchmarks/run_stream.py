#!/usr/bin/env python
"""Streaming benchmark: batched execution + incremental emission vs the
materialized front door, plus ``transform_many`` plan amortization.

Usage::

    python benchmarks/run_stream.py [--cases dbonerow,chart,total]
                                    [--sizes 500] [--repeat 5]
                                    [--many-docs 100] [--many-size 30]
                                    [--out BENCH_stream.json] [--smoke]

For each xsltmark case the harness measures:

* **stream** — ``Engine.transform_stream`` drained to exhaustion: the
  plan runs vectorized (``iter_batches``) and its result column goes
  through the incremental SQL/XML emitter, so no result DOM is built;
* **materialized** — ``Engine.transform``, the row-at-a-time seed path;
* **functional** — ``rewrite=False``, the calibration clock
  ``benchmarks/check_regression.py`` uses.

Each case also verifies (and records in the artifact) that chunk
concatenation is byte-identical to the materialized output, that the
SQL strategy materialized no documents, and that peak chunk buffering
stayed under a quarter of the serialized output.

A separate ``stream/many/<docs>`` entry times ``transform_many`` over
``--many-docs`` same-shaped single-document databases against the same
count of independent ``xml_transform`` calls — the compiled plan is
amortized across the batch, which must come out >= 2x faster.

The ``--out`` artifact (default ``BENCH_stream.json``) carries a
``seconds`` block per entry (``rewrite`` = streaming / batched times,
``no-rewrite`` = the calibration clock) shaped for
``check_regression.py`` gating against ``benchmarks/baseline.json``.
``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import Engine, TransformOptions
from repro.core import STRATEGY_SQL
from repro.obs import MetricsRegistry, Tracer
from repro.xsltmark.cases import get_case
from repro.xsltmark.runner import prepare_case

from benchmarks.run_serve import summarize, timed_loop

DEFAULT_CASES = ("dbonerow", "chart", "total")
FUNCTIONAL_OPTS = TransformOptions(rewrite=False, profile_plan=False)


def quiet_engine(db):
    return Engine(db, tracer=Tracer(enabled=False),
                  metrics=MetricsRegistry())


def run_stream_case(name, size, args, cases_out):
    prepared = prepare_case(get_case(name), size)
    engine = quiet_engine(prepared.db)
    storage, stylesheet = prepared.storage, prepared.stylesheet
    compiled = engine.compile(storage, stylesheet)

    materialized = engine.transform(storage, stylesheet)
    expected = "".join(materialized.serialized_rows())

    # coalesce at ~1/8 of the output (clamped) so the buffering bound
    # below stays meaningful even on small cases
    chunk_chars = max(512, min(2048, len(expected) // 8 or 512))
    stream_opts = TransformOptions(chunk_chars=chunk_chars)

    stream_samples = timed_loop(
        lambda: engine.transform_stream(storage, stylesheet,
                                        options=stream_opts).text(),
        args.repeat,
    )
    materialized_samples = timed_loop(
        lambda: engine.transform(storage, stylesheet),
        args.repeat,
    )
    functional_samples = timed_loop(
        lambda: engine.transform(storage, stylesheet,
                                 options=FUNCTIONAL_OPTS),
        args.repeat,
    )

    # one verified pass collecting the streaming counters
    stream = engine.transform_stream(storage, stylesheet,
                                     options=stream_opts)
    text = stream.text()
    stats = stream.stats
    is_sql = stream.strategy == STRATEGY_SQL
    checks = {
        "byte_identical": text == expected,
        "no_docs_materialized": (not is_sql)
        or stats.docs_materialized == 0,
        "bounded_buffering": (not is_sql) or len(expected) < 4096
        or stats.peak_buffered_bytes < len(expected) / 4.0,
    }
    stream_summary = summarize(stream_samples)
    best = stream_summary["min"] or 0.0
    entry = {
        "seconds": {
            "rewrite": stream_summary,
            "no-rewrite": summarize(functional_samples),
        },
        "stream": {
            "strategy": stream.strategy,
            "compiled_strategy": compiled.strategy,
            "chunk_chars": chunk_chars,
            "output_chars": len(text),
            "throughput_chars_per_s": (len(text) / best) if best else None,
            "peak_buffered_bytes": stats.peak_buffered_bytes,
            "batches": stats.batches,
            "output_rows": stats.output_rows,
            "docs_materialized": stats.docs_materialized,
            "materialized_seconds": summarize(materialized_samples),
        },
        "checks": checks,
    }
    cases_out["stream/%s/%d" % (name, size)] = entry
    return entry


def run_many(args, cases_out):
    """transform_many over N same-shaped databases vs N independent
    xml_transform calls (each paying its own compile)."""
    case = get_case(args.many_case)
    prepared_docs = [prepare_case(case, args.many_size)
                     for _ in range(args.many_docs)]
    pairs = [(prepared.db, prepared.storage) for prepared in prepared_docs]
    engine = quiet_engine(pairs[0][0])

    start = time.perf_counter()
    batched = engine.transform_many(pairs, prepared_docs[0].stylesheet)
    many_seconds = time.perf_counter() - start

    independent_samples = []
    independent_outputs = []
    for prepared in prepared_docs:
        doc_engine = quiet_engine(prepared.db)
        start = time.perf_counter()
        result = doc_engine.transform(prepared.storage, prepared.stylesheet)
        independent_samples.append(time.perf_counter() - start)
        independent_outputs.append(result.serialized_rows())

    independent_seconds = sum(independent_samples)
    speedup = (independent_seconds / many_seconds) if many_seconds else 0.0
    checks = {
        "outputs_identical": [r.serialized_rows() for r in batched]
        == independent_outputs,
        "amortization_2x": speedup >= 2.0,
    }
    per_doc_many = many_seconds / len(pairs)
    entry = {
        "seconds": {
            # per-document latency so the regression gate compares
            # like-for-like with the calibration clock
            "rewrite": {"count": len(pairs), "sum": many_seconds,
                        "min": per_doc_many, "max": per_doc_many,
                        "p50": per_doc_many, "p95": per_doc_many},
            "no-rewrite": summarize(independent_samples),
        },
        "many": {
            "case": args.many_case,
            "docs": args.many_docs,
            "doc_rows": args.many_size,
            "transform_many_seconds": many_seconds,
            "independent_seconds": independent_seconds,
            "speedup": speedup,
        },
        "checks": checks,
    }
    cases_out["stream/many/%d" % args.many_docs] = entry
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", default=",".join(DEFAULT_CASES))
    parser.add_argument("--sizes", default="500")
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--many-case", default="total")
    parser.add_argument("--many-docs", type=int, default=100)
    parser.add_argument("--many-size", type=int, default=30)
    parser.add_argument("--out", default="BENCH_stream.json")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal parameters for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        args.cases = "chart"
        args.sizes = "300"
        args.repeat = min(args.repeat, 3)
        args.many_docs = min(args.many_docs, 25)
        args.many_size = min(args.many_size, 30)

    names = [name for name in args.cases.split(",") if name]
    sizes = [int(size) for size in args.sizes.split(",") if size]
    cases = {}
    failures = []
    print("Streaming benchmark: repeat=%d" % args.repeat)
    print("%-20s %-10s %-12s %-10s %-8s %-8s"
          % ("case", "stream-ms", "chars/s", "peak-buf", "batches",
             "checks"))
    for name in names:
        for size in sizes:
            entry = run_stream_case(name, size, args, cases)
            stream = entry["stream"]
            checks = entry["checks"]
            ok = all(checks.values())
            if not ok:
                failures.append("stream/%s/%d: %s" % (name, size, checks))
            print("%-20s %-10.3f %-12.0f %-10d %-8d %-8s" % (
                "%s/%d" % (name, size),
                (entry["seconds"]["rewrite"]["min"] or 0.0) * 1000.0,
                stream["throughput_chars_per_s"] or 0.0,
                stream["peak_buffered_bytes"],
                stream["batches"],
                "ok" if ok else "FAIL",
            ))

    entry = run_many(args, cases)
    many = entry["many"]
    ok = all(entry["checks"].values())
    if not ok:
        failures.append("stream/many/%d: %s"
                        % (args.many_docs, entry["checks"]))
    print("transform_many: %d docs in %.3fs vs %.3fs independent "
          "(%.1fx) %s" % (
              many["docs"], many["transform_many_seconds"],
              many["independent_seconds"], many["speedup"],
              "ok" if ok else "FAIL",
          ))

    artifact = {
        "benchmark": "run_stream",
        "config": {
            "repeat": args.repeat,
            "many_case": args.many_case,
            "many_docs": args.many_docs,
            "many_size": args.many_size,
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (%d case(s))" % (args.out, len(cases)))
    if failures:
        print("verification FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
