"""Shared benchmark plumbing.

The paper's measurements compare *execution* of the rewritten query against
functional evaluation; compilation (partial evaluation + rewrite) happens
once at query-compile time.  These helpers therefore prepare everything
up front and expose two comparable execution closures per case.
"""

from __future__ import annotations

from repro.core.pipeline import XsltRewriter
from repro.xslt.vm import XsltVM
from repro.xsltmark.cases import get_case
from repro.xsltmark.runner import prepare_case


class PreparedBenchmark:
    """One case at one size, ready for repeated timed execution."""

    def __init__(self, case_name, size):
        self.case = get_case(case_name)
        self.size = size
        prepared = prepare_case(self.case, size)
        self.db = prepared.db
        self.storage = prepared.storage
        self.stylesheet = prepared.stylesheet
        outcome = XsltRewriter().rewrite_view(
            self.stylesheet, self.storage.make_view_query()
        )
        self.sql_query = self.db.optimize(outcome.sql_query)
        self.outcome = outcome

    def execute_rewrite(self):
        """XSLT rewrite path: run the merged relational query."""
        rows, stats = self.sql_query.execute(self.db)
        return rows, stats

    def execute_functional(self):
        """No-rewrite path: materialise each document, run the XSLT VM."""
        vm = XsltVM(self.stylesheet)
        results = []
        for doc_id in self.storage.document_ids():
            document = self.storage.materialize(doc_id)
            results.append(vm.transform_document(document))
        return results
