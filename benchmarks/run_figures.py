#!/usr/bin/env python
"""Regenerate the paper's evaluation artefacts and print them as tables.

Usage::

    python benchmarks/run_figures.py [--sizes 500,1000,2000,4000] [--repeat 3]

Prints:

* Figure 2 — 'dbonerow' rewrite vs no-rewrite across document sizes;
* Figure 3 — 'avts', 'chart', 'metric', 'total' rewrite vs no-rewrite;
* the §5 inline statistic over all forty cases.

The numbers land in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.helpers import PreparedBenchmark
from repro.xsltmark.runner import inline_statistics


def timed(callable_, repeat):
    start = time.perf_counter()
    for _ in range(repeat):
        callable_()
    return (time.perf_counter() - start) / repeat


def figure2(sizes, repeat):
    print("Figure 2 - dbonerow: rewrite vs no-rewrite (seconds per run)")
    print("%-10s %-12s %-12s %-8s" % ("rows", "rewrite", "no-rewrite", "ratio"))
    rows = []
    for size in sizes:
        bench = PreparedBenchmark("dbonerow", size)
        rewrite_time = timed(bench.execute_rewrite, repeat)
        functional_time = timed(bench.execute_functional, repeat)
        ratio = functional_time / rewrite_time
        rows.append((size, rewrite_time, functional_time, ratio))
        print("%-10d %-12.5f %-12.5f %-8.1fx"
              % (size, rewrite_time, functional_time, ratio))
    return rows


def figure3(size, repeat):
    print()
    print("Figure 3 - no-value-predicate cases at %d rows (seconds per run)"
          % size)
    print("%-10s %-12s %-12s %-8s" % ("case", "rewrite", "no-rewrite", "ratio"))
    rows = []
    for name in ("avts", "chart", "metric", "total"):
        bench = PreparedBenchmark(name, size)
        rewrite_time = timed(bench.execute_rewrite, repeat)
        functional_time = timed(bench.execute_functional, repeat)
        ratio = functional_time / rewrite_time
        rows.append((name, rewrite_time, functional_time, ratio))
        print("%-10s %-12.5f %-12.5f %-8.1fx"
              % (name, rewrite_time, functional_time, ratio))
    return rows


def inline_stat():
    print()
    print("Inline statistic (paper: 23 of 40 fully inline)")
    classifications, inline_count = inline_statistics()
    by_class = {}
    for name, (classification, sql_merged) in sorted(classifications.items()):
        by_class.setdefault(classification, []).append(
            name + ("" if sql_merged else "*")
        )
    for classification in ("inline", "non-inline", "fallback"):
        names = by_class.get(classification, [])
        print("%-11s %2d  %s" % (classification, len(names), ", ".join(names)))
    print("(* = XQuery generated but SQL merge unsupported)")
    print("inline: %d / 40" % inline_count)
    return inline_count


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="500,1000,2000,4000")
    parser.add_argument("--fig3-size", type=int, default=1500)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()
    sizes = [int(part) for part in args.sizes.split(",")]
    figure2(sizes, args.repeat)
    figure3(args.fig3_size, args.repeat)
    inline_stat()


if __name__ == "__main__":
    main()
