#!/usr/bin/env python
"""Regenerate the paper's evaluation artefacts and print them as tables.

Usage::

    python benchmarks/run_figures.py [--sizes 500,1000,2000,4000] [--repeat 3]
                                     [--obs-out BENCH_obs.json]

Prints:

* Figure 2 — 'dbonerow' rewrite vs no-rewrite across document sizes;
* Figure 3 — 'avts', 'chart', 'metric', 'total' rewrite vs no-rewrite;
* the §5 inline statistic over all forty cases.

Every figure case runs against its **own** fresh
:class:`repro.obs.MetricsRegistry` — no bleed between cases — and the
artifact written to ``--obs-out`` (default ``BENCH_obs.json``) carries,
per case key (``fig2/dbonerow/500``-style): the raw registry snapshot,
the Prometheus text rendering of the same registry, and a ``seconds``
summary per strategy.  ``benchmarks/check_regression.py`` diffs that
artifact against the committed ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from benchmarks.helpers import PreparedBenchmark
from repro.obs import MetricsRegistry, prometheus_text
from repro.xsltmark.runner import inline_statistics


def timed(callable_, repeat, histogram=None):
    """Mean seconds per run; each run also lands in ``histogram``."""
    total = 0.0
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - start
        total += elapsed
        if histogram is not None:
            histogram.record(elapsed)
    return total / repeat


def run_case(figure, name, size, repeat, cases):
    """Time one case both ways in a fresh, case-local registry.

    The registry snapshot, its Prometheus rendering and a per-strategy
    ``seconds`` summary land in ``cases`` under ``figure/name/size``.
    Returns (rewrite mean, no-rewrite mean).
    """
    bench = PreparedBenchmark(name, size)
    registry = MetricsRegistry()
    rewrite_hist = registry.histogram(
        "bench.seconds", figure=figure, case=name,
        strategy="rewrite", rows=size,
    )
    functional_hist = registry.histogram(
        "bench.seconds", figure=figure, case=name,
        strategy="no-rewrite", rows=size,
    )
    rewrite_time = timed(bench.execute_rewrite, repeat, rewrite_hist)
    functional_time = timed(bench.execute_functional, repeat,
                            functional_hist)
    registry.counter("bench.runs", figure=figure, case=name).inc(2 * repeat)
    cases["%s/%s/%d" % (figure, name, size)] = {
        "seconds": {
            "rewrite": rewrite_hist.summary(),
            "no-rewrite": functional_hist.summary(),
        },
        "metrics": registry.snapshot(),
        "prometheus": prometheus_text(registry),
    }
    return rewrite_time, functional_time


def figure2(sizes, repeat, cases):
    print("Figure 2 - dbonerow: rewrite vs no-rewrite (seconds per run)")
    print("%-10s %-12s %-12s %-8s" % ("rows", "rewrite", "no-rewrite", "ratio"))
    rows = []
    for size in sizes:
        rewrite_time, functional_time = run_case(
            "fig2", "dbonerow", size, repeat, cases
        )
        ratio = functional_time / rewrite_time
        rows.append((size, rewrite_time, functional_time, ratio))
        print("%-10d %-12.5f %-12.5f %-8.1fx"
              % (size, rewrite_time, functional_time, ratio))
    return rows


def figure3(size, repeat, cases):
    print()
    print("Figure 3 - no-value-predicate cases at %d rows (seconds per run)"
          % size)
    print("%-10s %-12s %-12s %-8s" % ("case", "rewrite", "no-rewrite", "ratio"))
    rows = []
    for name in ("avts", "chart", "metric", "total"):
        rewrite_time, functional_time = run_case(
            "fig3", name, size, repeat, cases
        )
        ratio = functional_time / rewrite_time
        rows.append((name, rewrite_time, functional_time, ratio))
        print("%-10s %-12.5f %-12.5f %-8.1fx"
              % (name, rewrite_time, functional_time, ratio))
    return rows


def inline_stat(cases):
    print()
    print("Inline statistic (paper: 23 of 40 fully inline)")
    registry = MetricsRegistry()
    classifications, inline_count = inline_statistics()
    by_class = {}
    for name, (classification, sql_merged) in sorted(classifications.items()):
        by_class.setdefault(classification, []).append(
            name + ("" if sql_merged else "*")
        )
        registry.counter("bench.case_classification",
                         classification=classification).inc()
    for classification in ("inline", "non-inline", "fallback"):
        names = by_class.get(classification, [])
        print("%-11s %2d  %s" % (classification, len(names), ", ".join(names)))
    print("(* = XQuery generated but SQL merge unsupported)")
    print("inline: %d / 40" % inline_count)
    cases["inline_stat"] = {
        "inline_count": inline_count,
        "metrics": registry.snapshot(),
        "prometheus": prometheus_text(registry),
    }
    return inline_count


def write_obs_artifact(path, cases, args):
    artifact = {
        "benchmark": "run_figures",
        "sizes": args.sizes,
        "fig3_size": args.fig3_size,
        "repeat": args.repeat,
        "cases": cases,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("observability artifact written to %s" % path)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="500,1000,2000,4000")
    parser.add_argument("--fig3-size", type=int, default=1500)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--obs-out", default="BENCH_obs.json",
                        help="where to write the per-case observability "
                             "artifact")
    args = parser.parse_args(argv)
    sizes = [int(part) for part in args.sizes.split(",")]
    cases = {}
    figure2(sizes, args.repeat, cases)
    figure3(args.fig3_size, args.repeat, cases)
    inline_stat(cases)
    write_obs_artifact(args.obs_out, cases, args)


if __name__ == "__main__":
    main()
