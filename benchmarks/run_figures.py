#!/usr/bin/env python
"""Regenerate the paper's evaluation artefacts and print them as tables.

Usage::

    python benchmarks/run_figures.py [--sizes 500,1000,2000,4000] [--repeat 3]
                                     [--obs-out BENCH_obs.json]

Prints:

* Figure 2 — 'dbonerow' rewrite vs no-rewrite across document sizes;
* Figure 3 — 'avts', 'chart', 'metric', 'total' rewrite vs no-rewrite;
* the §5 inline statistic over all forty cases.

Every individual timed run is recorded through a
:class:`repro.obs.MetricsRegistry` (histograms keyed by figure, case and
strategy), and the full registry snapshot is written to ``--obs-out``
(default ``BENCH_obs.json``) so the numbers that land in EXPERIMENTS.md
carry their distribution, not just a mean.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from benchmarks.helpers import PreparedBenchmark
from repro.obs import MetricsRegistry
from repro.xsltmark.runner import inline_statistics


def timed(callable_, repeat, histogram=None):
    """Mean seconds per run; each run also lands in ``histogram``."""
    total = 0.0
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - start
        total += elapsed
        if histogram is not None:
            histogram.record(elapsed)
    return total / repeat


def figure2(sizes, repeat, registry):
    print("Figure 2 - dbonerow: rewrite vs no-rewrite (seconds per run)")
    print("%-10s %-12s %-12s %-8s" % ("rows", "rewrite", "no-rewrite", "ratio"))
    rows = []
    for size in sizes:
        bench = PreparedBenchmark("dbonerow", size)
        rewrite_time = timed(
            bench.execute_rewrite, repeat,
            registry.histogram("fig2.seconds", case="dbonerow",
                               strategy="rewrite", rows=size),
        )
        functional_time = timed(
            bench.execute_functional, repeat,
            registry.histogram("fig2.seconds", case="dbonerow",
                               strategy="no-rewrite", rows=size),
        )
        ratio = functional_time / rewrite_time
        registry.counter("bench.runs", figure="fig2").inc(2 * repeat)
        rows.append((size, rewrite_time, functional_time, ratio))
        print("%-10d %-12.5f %-12.5f %-8.1fx"
              % (size, rewrite_time, functional_time, ratio))
    return rows


def figure3(size, repeat, registry):
    print()
    print("Figure 3 - no-value-predicate cases at %d rows (seconds per run)"
          % size)
    print("%-10s %-12s %-12s %-8s" % ("case", "rewrite", "no-rewrite", "ratio"))
    rows = []
    for name in ("avts", "chart", "metric", "total"):
        bench = PreparedBenchmark(name, size)
        rewrite_time = timed(
            bench.execute_rewrite, repeat,
            registry.histogram("fig3.seconds", case=name,
                               strategy="rewrite", rows=size),
        )
        functional_time = timed(
            bench.execute_functional, repeat,
            registry.histogram("fig3.seconds", case=name,
                               strategy="no-rewrite", rows=size),
        )
        ratio = functional_time / rewrite_time
        registry.counter("bench.runs", figure="fig3").inc(2 * repeat)
        rows.append((name, rewrite_time, functional_time, ratio))
        print("%-10s %-12.5f %-12.5f %-8.1fx"
              % (name, rewrite_time, functional_time, ratio))
    return rows


def inline_stat(registry):
    print()
    print("Inline statistic (paper: 23 of 40 fully inline)")
    classifications, inline_count = inline_statistics()
    by_class = {}
    for name, (classification, sql_merged) in sorted(classifications.items()):
        by_class.setdefault(classification, []).append(
            name + ("" if sql_merged else "*")
        )
        registry.counter("bench.case_classification",
                         classification=classification).inc()
    for classification in ("inline", "non-inline", "fallback"):
        names = by_class.get(classification, [])
        print("%-11s %2d  %s" % (classification, len(names), ", ".join(names)))
    print("(* = XQuery generated but SQL merge unsupported)")
    print("inline: %d / 40" % inline_count)
    return inline_count


def write_obs_artifact(path, registry, args):
    artifact = {
        "benchmark": "run_figures",
        "sizes": args.sizes,
        "fig3_size": args.fig3_size,
        "repeat": args.repeat,
        "metrics": registry.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("observability artifact written to %s" % path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="500,1000,2000,4000")
    parser.add_argument("--fig3-size", type=int, default=1500)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--obs-out", default="BENCH_obs.json",
                        help="where to write the metrics snapshot")
    args = parser.parse_args()
    sizes = [int(part) for part in args.sizes.split(",")]
    registry = MetricsRegistry()
    figure2(sizes, args.repeat, registry)
    figure3(args.fig3_size, args.repeat, registry)
    inline_stat(registry)
    write_obs_artifact(args.obs_out, registry, args)


if __name__ == "__main__":
    main()
