"""Legacy setup shim so `pip install -e .` works without network access
(the environment's setuptools predates PEP 660 editable wheels)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
